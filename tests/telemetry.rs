//! Telemetry integration: the pipeline reports work into every layer's
//! counters, stage spans land in the histograms, and the whole subsystem
//! is inert when disabled.
//!
//! All tests share the process-global telemetry registry, so each takes
//! `GLOBAL_LOCK` and resets the recording before making assertions.

use nebula::nebula_obs;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

struct Stack {
    bundle: DatasetBundle,
    workload: Vec<nebula::nebula_workload::WorkloadSet>,
    nebula: Nebula,
}

fn stack(seed: u64) -> Stack {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    Stack { bundle, workload, nebula }
}

impl Stack {
    fn process_one(&mut self, i: usize) -> ProcessOutcome {
        let wa =
            self.workload.iter().flat_map(|s| &s.annotations).nth(i).expect("workload annotation");
        self.nebula
            .process_annotation(
                &self.bundle.db,
                &mut self.bundle.annotations,
                &wa.annotation,
                &[wa.ideal[0]],
            )
            .expect("pipeline runs")
    }
}

#[test]
fn counters_are_monotonic_and_cover_every_layer() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(7);
    st.process_one(0);
    let first = nebula_obs::snapshot();
    st.process_one(1);
    let second = nebula_obs::snapshot();
    nebula_obs::set_enabled(false);

    // Every layer reported work from the very first annotation.
    for name in [
        "core.annotations_processed",
        "core.queries_generated",
        "relstore.index_probes",
        "textsearch.configurations",
        "textsearch.compiled_queries",
        "annostore.annotations_registered",
        "annostore.edges_added",
    ] {
        assert!(
            first.counters.get(name).copied().unwrap_or(0) > 0,
            "counter {name} should be non-zero after one annotation: {:?}",
            first.counters
        );
    }

    // Counters only ever grow.
    for (name, before) in &first.counters {
        let after = second.counters.get(name).copied().unwrap_or(0);
        assert!(after >= *before, "counter {name} went backwards: {before} -> {after}");
    }
    assert_eq!(
        second.counters["core.annotations_processed"],
        first.counters["core.annotations_processed"] + 1
    );
}

#[test]
fn stage_spans_feed_the_histograms_and_events() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(9);
    let outcome = st.process_one(0);
    let snap = nebula_obs::snapshot();
    nebula_obs::set_enabled(false);

    for stage in [
        nebula_obs::names::STAGE0_REGISTER,
        nebula_obs::names::STAGE1_QUERYGEN,
        nebula_obs::names::STAGE2_EXECUTE,
        nebula_obs::names::STAGE3_ROUTE,
        nebula_obs::names::PIPELINE,
    ] {
        let hist =
            snap.histograms.get(stage).unwrap_or_else(|| panic!("missing histogram for {stage}"));
        assert_eq!(hist.count, 1, "{stage} recorded once");
    }
    assert!(
        snap.histograms[nebula_obs::names::PIPELINE].sum_ns > 0,
        "whole-pipeline wall time is non-zero"
    );

    // One structured event per stage plus the pipeline summary.
    let events = snap.events_for(outcome.annotation.0);
    assert_eq!(events.len(), 5, "events: {events:#?}");
    assert_eq!(events[0].stage, nebula_obs::names::STAGE0_REGISTER);
    assert_eq!(events[4].stage, nebula_obs::names::PIPELINE);

    // The snapshot renders deterministically in both formats.
    let text = snap.render_text();
    assert!(text.contains("core.annotations_processed"));
    let json = snap.render_json();
    assert!(json.contains("\"stage2.execute\""));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(false);
    nebula_obs::reset();

    let mut st = stack(11);
    st.process_one(0);
    let snap = nebula_obs::snapshot();

    assert!(snap.counters.is_empty(), "counters: {:?}", snap.counters);
    assert!(snap.histograms.is_empty());
    assert!(snap.events.is_empty());
}

#[test]
fn snapshot_diff_isolates_one_annotation() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(13);
    st.process_one(0);
    let base = nebula_obs::snapshot();
    st.process_one(1);
    let diff = nebula_obs::snapshot().diff(&base);
    nebula_obs::set_enabled(false);

    assert_eq!(diff.counters["core.annotations_processed"], 1);
    assert_eq!(diff.histograms[nebula_obs::names::PIPELINE].count, 1);
}

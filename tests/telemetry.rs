//! Telemetry integration: the pipeline reports work into every layer's
//! counters, stage spans land in the histograms, and the whole subsystem
//! is inert when disabled.
//!
//! All tests share the process-global telemetry registry, so each takes
//! `GLOBAL_LOCK` and resets the recording before making assertions.

use nebula::nebula_obs;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

struct Stack {
    bundle: DatasetBundle,
    workload: Vec<nebula::nebula_workload::WorkloadSet>,
    nebula: Nebula,
}

fn stack(seed: u64) -> Stack {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    Stack { bundle, workload, nebula }
}

impl Stack {
    fn process_one(&mut self, i: usize) -> ProcessOutcome {
        let wa =
            self.workload.iter().flat_map(|s| &s.annotations).nth(i).expect("workload annotation");
        self.nebula
            .process_annotation(
                &self.bundle.db,
                &mut self.bundle.annotations,
                &wa.annotation,
                &[wa.ideal[0]],
            )
            .expect("pipeline runs")
    }
}

#[test]
fn counters_are_monotonic_and_cover_every_layer() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(7);
    st.process_one(0);
    let first = nebula_obs::snapshot();
    st.process_one(1);
    let second = nebula_obs::snapshot();
    nebula_obs::set_enabled(false);

    // Every layer reported work from the very first annotation.
    for name in [
        "core.annotations_processed",
        "core.queries_generated",
        "relstore.index_probes",
        "textsearch.configurations",
        "textsearch.compiled_queries",
        "annostore.annotations_registered",
        "annostore.edges_added",
    ] {
        assert!(
            first.counters.get(name).copied().unwrap_or(0) > 0,
            "counter {name} should be non-zero after one annotation: {:?}",
            first.counters
        );
    }

    // Counters only ever grow.
    for (name, before) in &first.counters {
        let after = second.counters.get(name).copied().unwrap_or(0);
        assert!(after >= *before, "counter {name} went backwards: {before} -> {after}");
    }
    assert_eq!(
        second.counters["core.annotations_processed"],
        first.counters["core.annotations_processed"] + 1
    );
}

#[test]
fn stage_spans_feed_the_histograms_and_events() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(9);
    let outcome = st.process_one(0);
    let snap = nebula_obs::snapshot();
    nebula_obs::set_enabled(false);

    for stage in [
        nebula_obs::names::STAGE0_REGISTER,
        nebula_obs::names::STAGE1_QUERYGEN,
        nebula_obs::names::STAGE2_EXECUTE,
        nebula_obs::names::STAGE3_ROUTE,
        nebula_obs::names::PIPELINE,
    ] {
        let hist =
            snap.histograms.get(stage).unwrap_or_else(|| panic!("missing histogram for {stage}"));
        assert_eq!(hist.count, 1, "{stage} recorded once");
    }
    assert!(
        snap.histograms[nebula_obs::names::PIPELINE].sum_ns > 0,
        "whole-pipeline wall time is non-zero"
    );

    // One structured event per stage plus the pipeline summary.
    let events = snap.events_for(outcome.annotation.0);
    assert_eq!(events.len(), 5, "events: {events:#?}");
    assert_eq!(events[0].stage, nebula_obs::names::STAGE0_REGISTER);
    assert_eq!(events[4].stage, nebula_obs::names::PIPELINE);

    // The snapshot renders deterministically in both formats.
    let text = snap.render_text();
    assert!(text.contains("core.annotations_processed"));
    let json = snap.render_json();
    assert!(json.contains("\"stage2.execute\""));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(false);
    nebula_obs::reset();

    let mut st = stack(11);
    st.process_one(0);
    let snap = nebula_obs::snapshot();

    assert!(snap.counters.is_empty(), "counters: {:?}", snap.counters);
    assert!(snap.histograms.is_empty());
    assert!(snap.events.is_empty());
}

#[test]
fn snapshot_diff_isolates_one_annotation() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let mut st = stack(13);
    st.process_one(0);
    let base = nebula_obs::snapshot();
    st.process_one(1);
    let diff = nebula_obs::snapshot().diff(&base);
    nebula_obs::set_enabled(false);

    assert_eq!(diff.counters["core.annotations_processed"], 1);
    assert_eq!(diff.histograms[nebula_obs::names::PIPELINE].count, 1);
}

/// Every metric the engine writes — counters, gauges, histograms — is
/// listed in `nebula_obs::registry`. A counter that exists in code but not
/// in the registry is invisible to dashboards and to `SHOW METRICS`
/// consumers, so this test drives the full surface (pipeline, durability,
/// concurrent ingest with sheds, quarantines, breaker activity, deferred
/// checkpoints) and then refuses any unlisted name.
#[test]
fn every_written_metric_is_listed_in_the_registry() {
    let _guard = GLOBAL_LOCK.lock().unwrap();
    nebula_obs::set_enabled(true);
    nebula_obs::reset();

    let dir =
        std::env::temp_dir().join(format!("nebula-telemetry-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut st = stack(19);
    st.process_one(0);

    // Concurrent ingest with a WAL attached, faults, a tiny queue, and
    // deadlines: exercises ingest.*, durable.*, and the shed counters.
    let durability = Durability::begin(
        &dir,
        &st.bundle.db,
        &st.bundle.annotations,
        DurabilityOptions { checkpoint_every: Some(2), ..Default::default() },
    )
    .expect("fresh durability directory");
    st.nebula.set_mutation_sink(Some(Box::new(durability)));
    let items: Vec<IngestItem> = st
        .workload
        .iter()
        .flat_map(|s| &s.annotations)
        .filter(|wa| !wa.ideal.is_empty())
        .take(24)
        .enumerate()
        .map(|(i, wa)| {
            let item = IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]);
            if i % 4 == 0 {
                item.with_deadline(std::time::Duration::ZERO)
            } else {
                item
            }
        })
        .collect();
    nebula::nebula_govern::set_fault_plan(Some(FaultPlan::uniform(0x9E6, 0.3)));
    let report = ingest_batch(
        &mut st.nebula,
        &st.bundle.db,
        &mut st.bundle.annotations,
        &items,
        &IngestConfig { workers: 2, queue_capacity: 2, ..Default::default() },
    );
    nebula::nebula_govern::set_fault_plan(None);
    drop(st.nebula.take_mutation_sink());
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!report.sheds.is_empty(), "the tiny queue and deadlines shed: {report:?}");

    // Replication: a one-replica cluster as the sink, plus a failover,
    // exercises the repl.* counters and gauges.
    let rdir =
        std::env::temp_dir().join(format!("nebula-telemetry-registry-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&rdir);
    let cluster = Cluster::new(
        &rdir,
        &st.bundle.db,
        &st.bundle.annotations,
        1,
        Box::new(SimTransport::reliable(2)),
        ClusterConfig { rule: CommitRule::Quorum(1), ..ClusterConfig::default() },
    )
    .expect("fresh cluster directory");
    let sink = ClusterSink::new(cluster);
    let handle = sink.handle();
    st.nebula.set_mutation_sink(Some(Box::new(sink)));
    st.process_one(1);
    drop(st.nebula.take_mutation_sink());
    handle.lock().promote(1).expect("promotion");
    let _ = std::fs::remove_dir_all(&rdir);

    // Tracing: commit one traced annotation and fire a flight event and
    // post-mortem dump, so the trace.* counters and gauges are written.
    nebula_obs::trace::set_enabled(true);
    nebula_obs::trace::reset();
    st.process_one(2);
    nebula_obs::trace::flight_event("health", "healthy -> degraded".to_string());
    nebula_obs::trace::flight_dump("ingest.wedged");
    nebula_obs::trace::set_enabled(false);

    // Sharding: a three-shard cluster with a partition, heal, failover,
    // and scrub, so the shard.* counters and gauges are all written.
    let mut shards = ShardCluster::new(
        &st.bundle.db,
        &st.bundle.annotations,
        &st.bundle.meta,
        &NebulaConfig::default(),
        ShardConfig::new(3),
    )
    .expect("shard cluster boots");
    let shard_items: Vec<_> = st
        .workload
        .iter()
        .flat_map(|s| &s.annotations)
        .filter(|wa| !wa.ideal.is_empty())
        .take(10)
        .collect();
    let mut shard_iter = shard_items.iter();
    for wa in shard_iter.by_ref().take(2) {
        shards.ingest(&wa.annotation, &[wa.ideal[0]]).expect("sharded ingest");
    }
    shards.partition_shard(2);
    for wa in shard_iter.by_ref().take(4) {
        shards.ingest(&wa.annotation, &[wa.ideal[0]]).expect("degraded sharded ingest");
    }
    shards.heal_shard(2);
    shards.fail_shard(1);
    shards.promote_shard(1).expect("failover");
    shards.corrupt_shard(0).expect("bit-rot injection");
    shards.scrub().expect("scrub");

    // Disaster recovery: archive, capture, verify, restore, seeded rot,
    // scrub, and retention GC, so the backup.* counters are all written.
    let bdir = std::env::temp_dir()
        .join(format!("nebula-telemetry-registry-backup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bdir);
    {
        let mut db = nebula::relstore::Database::new();
        let mut store = AnnotationStore::new();
        let mut mgr =
            Durability::begin(&bdir.join("wal"), &db, &store, DurabilityOptions::default())
                .expect("fresh durability directory");
        mgr.set_archive(&bdir.join("archive"), 1).expect("arm archiving");
        for n in 0..4u64 {
            let op = nebula::nebula_durable::WalOp::AddAnnotation {
                expected: AnnotationId(n),
                text: format!("backup metric {n}"),
                author: None,
                kind: None,
            };
            mgr.append(&op).expect("append");
            nebula::nebula_durable::replay_op(&mut db, &mut store, &op).expect("replay");
            if n == 1 {
                mgr.checkpoint(&db, &store).expect("mid checkpoint");
            }
        }
        mgr.checkpoint(&db, &store).expect("sealing checkpoint");
        nebula::nebula_backup::create_bundle(&nebula::nebula_backup::BundleSpec {
            archive_dir: bdir.join("archive"),
            bundle_dir: bdir.join("bundle"),
            pages: None,
            created_seq: 1,
        })
        .expect("bundle capture");
        nebula::nebula_backup::verify_bundle(&bdir.join("bundle")).expect("verify");
        nebula::nebula_backup::restore(&bdir.join("bundle"), Some(3)).expect("restore");
        nebula::nebula_govern::set_fault_plan(Some(
            FaultPlan::new(0xB0B).with_archive_faults(0.0, 1.0, 0.0),
        ));
        nebula::nebula_backup::inject_rot(&bdir.join("bundle")).expect("rot injection");
        nebula::nebula_govern::set_fault_plan(None);
        let scrubbed = nebula::nebula_backup::scrub(&bdir.join("bundle")).expect("scrub");
        assert!(!scrubbed.corrupt.is_empty(), "the seeded rot is visible to the scrubber");
        assert!(nebula::nebula_backup::verify_bundle(&bdir.join("bundle")).is_err());
        nebula::nebula_backup::gc(&bdir.join("archive"), 1).expect("gc pass");
    }
    let _ = std::fs::remove_dir_all(&bdir);

    let snap = nebula_obs::snapshot();
    nebula_obs::set_enabled(false);

    for name in snap.counters.keys() {
        assert!(nebula_obs::registry::is_known(name), "counter `{name}` is not in the registry");
    }
    for name in snap.gauges.keys() {
        assert!(nebula_obs::registry::is_known(name), "gauge `{name}` is not in the registry");
    }
    for name in snap.histograms.keys() {
        assert!(nebula_obs::registry::is_known(name), "histogram `{name}` is not in the registry");
    }
    // The new PR-4 names actually got written, so the registry check above
    // had teeth.
    assert!(snap.counters.contains_key("ingest.shed"), "{:?}", snap.counters);
    assert!(snap.gauges.contains_key("ingest.health"), "{:?}", snap.gauges);
    // And the PR-5 replication names, via the ClusterSink and failover.
    assert!(snap.counters.contains_key("repl.records_shipped"), "{:?}", snap.counters);
    assert!(snap.counters.contains_key("repl.acks"), "{:?}", snap.counters);
    assert!(snap.counters.contains_key("repl.promotions"), "{:?}", snap.counters);
    assert!(snap.gauges.contains_key("repl.max_lag"), "{:?}", snap.gauges);
    // And the PR-6 tracing names, via the traced commit and the flight
    // recorder.
    assert!(snap.counters.contains_key("trace.spans"), "{:?}", snap.counters);
    assert!(snap.counters.contains_key("trace.traces"), "{:?}", snap.counters);
    assert!(snap.counters.contains_key("trace.flight_events"), "{:?}", snap.counters);
    assert!(snap.counters.contains_key("trace.flight_dumps"), "{:?}", snap.counters);
    assert!(snap.gauges.contains_key("trace.ring_occupancy"), "{:?}", snap.gauges);
    // And the sharding names, via the scatter-gather cluster above.
    for name in [
        "shard.annotations_routed",
        "shard.probes_sent",
        "shard.probes_answered",
        "shard.probes_timed_out",
        "shard.partial_results",
        "shard.applies_sent",
        "shard.apply_acks",
        "shard.batches_applied",
        "shard.failovers",
        "shard.digest_divergences",
        "shard.repairs",
    ] {
        assert!(snap.counters.contains_key(name), "missing {name}: {:?}", snap.counters);
    }
    assert!(snap.gauges.contains_key("shard.shards"), "{:?}", snap.gauges);
    assert!(snap.gauges.contains_key("shard.epoch"), "{:?}", snap.gauges);
    assert!(snap.gauges.contains_key("shard.lagging"), "{:?}", snap.gauges);
    // And the disaster-recovery names, via the backup round trip above.
    for name in [
        "backup.bases_archived",
        "backup.segments_archived",
        "backup.bytes_archived",
        "backup.bundles_created",
        "backup.bundle_bytes",
        "backup.restores",
        "backup.restore_records_replayed",
        "backup.scrubs",
        "backup.rot_injected",
        "backup.rot_detected",
        "backup.verify_failures",
        "backup.gc_removed",
    ] {
        assert!(snap.counters.contains_key(name), "missing {name}: {:?}", snap.counters);
    }
}

//! Overload soak: a seeded 1000-annotation burst against a small queue,
//! tight budgets, injected faults, and per-item deadlines.
//!
//! The invariant under test is full accounting under sustained overload:
//! every offered annotation ends in exactly one state — a terminal batch
//! status (accepted / pending / rejected / degraded / quarantined) or a
//! typed shed (queue-full / deadline / circuit-open) — the tallies add up
//! to the offered total, nothing panics, and the engine degrades or sheds
//! without ever declaring itself Wedged (only durability failures can do
//! that, and none are injected here).

use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::time::Duration;

#[test]
fn thousand_annotation_overload_soak_accounts_for_everything() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), 0x50AC);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 9);
    let source: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!source.is_empty());

    // 1000 items cycled from the workload; every fifth carries a deadline
    // tight enough that a backlog expires it, and priorities alternate so
    // all three admission classes see traffic.
    let items: Vec<IngestItem> = (0..1000)
        .map(|i| {
            let wa = source[i % source.len()];
            let mut item = IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]);
            item = match i % 3 {
                0 => item.with_priority(Priority::Interactive),
                1 => item.with_priority(Priority::Normal),
                _ => item.with_priority(Priority::Background),
            };
            if i % 5 == 0 {
                item = item.with_deadline(Duration::from_millis(50));
            }
            item
        })
        .collect();

    let mut bundle = bundle;
    let mut nebula = Nebula::new(
        NebulaConfig {
            budget: ExecutionBudget::unbounded()
                .with_max_tuples(200)
                .with_max_configurations(4)
                .with_max_candidates(4),
            ..Default::default()
        },
        bundle.meta.clone(),
    );
    nebula.bootstrap_acg(&bundle.annotations);

    // CI's thread-count matrix pins the pool size via NEBULA_WORKERS.
    let workers = std::env::var("NEBULA_WORKERS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|n| *n > 0)
        .unwrap_or(4);
    let config = IngestConfig {
        workers,
        queue_capacity: 16,
        admit_gap: Some(Duration::from_micros(100)),
        ..IngestConfig::default()
    };
    nebula::nebula_govern::set_fault_plan(Some(FaultPlan::uniform(0x50A, 0.2)));
    let report = ingest_batch(&mut nebula, &bundle.db, &mut bundle.annotations, &items, &config);
    nebula::nebula_govern::set_fault_plan(None);

    // Exactly-one-state accounting.
    assert_eq!(report.total(), 1000, "offered = accounted");
    assert_eq!(report.batch.total() + report.sheds.len(), 1000);
    let b = &report.batch;
    assert_eq!(
        b.accepted + b.pending + b.rejected + b.degraded + b.quarantined,
        b.total(),
        "every executed item has exactly one terminal status"
    );
    // Entry indices and shed indices partition the input exactly.
    let mut seen = vec![0u8; 1000];
    for e in &b.entries {
        seen[e.index] += 1;
    }
    for s in &report.sheds {
        seen[s.index] += 1;
    }
    assert!(seen.iter().all(|&n| n == 1), "each input index appears exactly once");

    // The overload actually happened and was survived.
    assert!(!report.sheds.is_empty(), "sustained overload sheds: {report:?}");
    assert!(b.total() > 0, "the writer still made progress");
    assert_ne!(report.health, HealthState::Wedged, "faults never wedge the engine");
    assert!(
        report.sheds.iter().all(|s| s.reason != ShedReason::Wedged),
        "no shed is attributed to a wedged engine"
    );
    assert!(report.queue_depth_peak <= 16, "the queue is bounded");
    assert!(report.p99_latency_ns() > 0, "latency was measured for executed items");
}

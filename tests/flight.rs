//! Flight-recorder post-mortems: the bounded event ring auto-dumps at
//! exactly the terminal conditions — an ingest engine declaring itself
//! Wedged, a primary fenced by a newer epoch, a detected divergence —
//! and each dump carries the preceding causal history (health
//! transitions, breaker trips, wedge events) in sequence order.

use nebula::nebula_durable::wal::WalOp;
use nebula::nebula_ingest::BreakerConfig;
use nebula::nebula_obs::trace;
use nebula::nebula_replica::{Frame, Primary, SimTransport};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The flight recorder is process-global; tests that arm it serialize
/// through this guard so each sees only its own dumps.
static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-flight-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("note {n}"),
        author: None,
        kind: None,
    }
}

/// Seeded WAL faults wedge the ingest engine — and the moment the health
/// machine crosses into Wedged (a sticky state, so the transition fires
/// once), exactly one post-mortem dumps with the full causal prelude:
/// the durable-layer wedge events, the WAL breaker trip, and the health
/// transitions, in strictly increasing sequence order.
#[test]
fn wedged_ingest_dumps_exactly_one_post_mortem() {
    let _serial = guard();
    let dir = temp_dir("wedged");
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), 53);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 53);
    let items: Vec<_> = workload
        .iter()
        .flat_map(|s| &s.annotations)
        .filter(|wa| !wa.ideal.is_empty())
        .take(12)
        .map(|wa| IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]))
        .collect();
    assert!(items.len() >= 6, "enough items to wedge mid-batch");
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    let durability =
        Durability::begin(&dir, &bundle.db, &bundle.annotations, DurabilityOptions::default())
            .expect("fresh durability directory");
    nebula.set_mutation_sink(Some(Box::new(durability)));

    trace::set_enabled(true);
    trace::reset();
    // Every fsync fails: two WAL quarantines trip the breaker
    // (threshold 2), and one trip wedges the engine.
    nebula::nebula_govern::set_fault_plan(Some(FaultPlan::new(0xF00D).with_fsync_failures(1.0)));
    let config = IngestConfig {
        workers: 2,
        breaker: BreakerConfig { failure_threshold: 2, open_shed_count: 8 },
        wedge_after_wal_trips: 1,
        ..IngestConfig::default()
    };
    let report = ingest_batch(&mut nebula, &bundle.db, &mut bundle.annotations, &items, &config);
    nebula::nebula_govern::set_fault_plan(None);
    let dumps = trace::flight_dumps();
    trace::set_enabled(false);
    drop(nebula.take_mutation_sink());
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.health, HealthState::Wedged, "the seeded faults wedge the engine");
    assert!(
        report.sheds.iter().any(|s| s.reason == ShedReason::Wedged),
        "a wedged engine refuses the rest of the batch: {report:?}"
    );

    // Exactly one dump, triggered by the Wedged transition.
    assert_eq!(dumps.len(), 1, "Wedged is sticky — one transition, one dump: {dumps:?}");
    let dump = &dumps[0];
    assert_eq!(dump.trigger, "ingest.wedged");
    // The causal prelude is all there, in strictly increasing seq order.
    assert!(dump.events.windows(2).all(|w| w[0].seq < w[1].seq), "{dump:?}");
    let kinds: Vec<&str> = dump.events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"wedge"), "durable-layer wedge events precede the dump: {dump:?}");
    assert!(
        dump.events.iter().any(|e| e.kind == "breaker.trip" && e.detail.contains("wal")),
        "the WAL breaker trip is on record: {dump:?}"
    );
    assert!(
        dump.events.iter().any(|e| e.kind == "health" && e.detail.ends_with("-> wedged")),
        "the terminal health transition is the last cause on record: {dump:?}"
    );
    // And the breaker trip comes before the wedged transition.
    let trip_seq = dump.events.iter().find(|e| e.kind == "breaker.trip").map(|e| e.seq).unwrap();
    let wedged_seq = dump
        .events
        .iter()
        .find(|e| e.kind == "health" && e.detail.ends_with("-> wedged"))
        .map(|e| e.seq)
        .unwrap();
    assert!(trip_seq < wedged_seq, "cause precedes effect: {dump:?}");

    // The dump renders to deterministic JSON (no wall-clock fields).
    let json = dump.render_json();
    assert!(json.contains("\"trigger\": \"ingest.wedged\""), "{json}");
}

/// A primary deposed by a newer epoch dumps exactly one post-mortem when
/// it first learns of its fencing — repeated fencing evidence does not
/// dump again.
#[test]
fn fenced_primary_dumps_exactly_one_post_mortem() {
    let _serial = guard();
    let dir = temp_dir("fenced");
    let db = nebula::relstore::Database::new();
    let store = AnnotationStore::new();
    let wal = Durability::begin(&dir, &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    let mut transport = SimTransport::reliable(2);
    let mut primary = Primary::new(0, 1, wal, &db, &store).expect("primary");
    primary.attach(1, &mut transport);

    trace::set_enabled(true);
    trace::reset();
    primary.record(&op(0), &mut transport).expect("record at epoch 1");

    // A forged nack from epoch 2 deposes the primary on its next write.
    transport.send(1, 0, Frame::Nack { epoch: 2, lsn: 1 }.encode());
    let err = primary.record(&op(1), &mut transport).unwrap_err();
    assert!(matches!(err, ReplicaError::Fenced { epoch: 1, newer: 2 }), "{err:?}");

    let dumps = trace::flight_dumps();
    assert_eq!(dumps.len(), 1, "{dumps:?}");
    assert_eq!(dumps[0].trigger, "repl.fenced");
    assert!(
        dumps[0].events.iter().any(|e| e.kind == "fence" && e.detail.contains("epoch 2")),
        "the fence event is in its own dump: {:?}",
        dumps[0]
    );

    // More fencing evidence: still exactly one dump.
    transport.send(1, 0, Frame::Nack { epoch: 3, lsn: 1 }.encode());
    let err = primary.record(&op(1), &mut transport).unwrap_err();
    assert!(matches!(err, ReplicaError::Fenced { .. }), "{err:?}");
    assert_eq!(trace::flight_dumps().len(), 1, "fencing dumps once");

    trace::set_enabled(false);
    drop(primary);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forged divergent acknowledgement (wrong digest at an LSN) triggers a
/// divergence post-mortem carrying the divergence event itself.
#[test]
fn divergence_dumps_a_post_mortem_with_the_report() {
    let _serial = guard();
    let dir = temp_dir("divergence");
    let db = nebula::relstore::Database::new();
    let store = AnnotationStore::new();
    let wal = Durability::begin(&dir, &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    let mut transport = SimTransport::reliable(2);
    let mut primary = Primary::new(0, 1, wal, &db, &store).expect("primary");
    primary.attach(1, &mut transport);

    trace::set_enabled(true);
    trace::reset();
    primary.record(&op(0), &mut transport).expect("record at epoch 1");

    // Forge an ack whose digest cannot match the shadow at lsn 1.
    transport.send(1, 0, Frame::Ack { epoch: 1, lsn: 1, digest: (1, 2) }.encode());
    primary.drain(&mut transport);
    assert_eq!(primary.divergences().len(), 1);

    let dumps = trace::flight_dumps();
    trace::set_enabled(false);
    assert_eq!(dumps.len(), 1, "{dumps:?}");
    assert_eq!(dumps[0].trigger, "repl.divergence");
    assert!(
        dumps[0].events.iter().any(|e| e.kind == "divergence"
            && e.detail.contains("replica=1")
            && e.detail.contains("lsn=1")),
        "the divergence report is in its own dump: {:?}",
        dumps[0]
    );

    drop(primary);
    let _ = std::fs::remove_dir_all(&dir);
}

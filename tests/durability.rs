//! Durability acceptance suite: the crash-point harness over a hostile
//! 500-operation batch, exact torn-tail accounting through the real
//! recovery path, end-to-end I/O fault scenarios driven by the seeded
//! fault plan, and format-drift protection for the checked-in sample
//! durability directory.

use nebula::nebula_durable::harness::{crash_points, state_digest};
use nebula::nebula_durable::{
    checkpoint, recover, recover_from_bytes, wal, Durability, DurabilityOptions, SyncPolicy, WalOp,
};
use nebula::nebula_govern as govern;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::path::{Path, PathBuf};

/// The fault seed: `NEBULA_FAULT_SEED` env (hex with `0x` prefix, or
/// decimal), default `0xF00D` — the CI crash-recovery matrix sweeps it.
fn fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh copy of the bundle's seed store (`AnnotationStore` is not
/// `Clone`; round-trip through the snapshot codec instead).
fn fresh_store(bundle: &DatasetBundle) -> AnnotationStore {
    let bytes = nebula::annostore::snapshot::save(&bundle.annotations);
    nebula::annostore::snapshot::load(&bytes).expect("snapshot round-trip")
}

/// Dataset + engine + a batch of `n` workload annotations (cycled).
fn batch_fixture(seed: u64, n: usize) -> (DatasetBundle, Nebula, Vec<(Annotation, Vec<TupleId>)>) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    nebula.acg_mut().set_stable(true);
    let base: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!base.is_empty());
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = base[i % base.len()];
            (wa.annotation.clone(), vec![wa.ideal[0]])
        })
        .collect();
    (bundle, nebula, items)
}

/// Run `f` with panic output suppressed (injected panics are expected).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The tentpole acceptance scenario: a hostile batch (transient query
/// faults and injected panics riding along) is logged until the WAL holds
/// at least 500 records, then the crash-point harness kills and recovers
/// at **every** record boundary — and tears the log mid-record at every
/// frame — asserting the recovered state equals the reference replay.
#[test]
fn a_500_operation_hostile_batch_survives_every_crash_point() {
    let dir = tmp("crash-points");
    let (bundle, mut nebula, items) = batch_fixture(5, 40);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: None },
    )
    .expect("fresh durability directory");
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(
        govern::FaultPlan::new(fault_seed()).with_query(0.1, true).with_panics(0.02),
    ));

    let mut rounds = 0;
    let records = loop {
        let report = with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
        assert_eq!(report.total(), items.len(), "the batch never aborts early");
        rounds += 1;
        assert!(rounds <= 30, "batch never produced 500 WAL records");
        let bytes = std::fs::read(dir.join(wal::WAL_FILE)).expect("wal exists");
        let (records, tail) = wal::read_wal(&bytes);
        assert!(tail.is_clean(), "pipeline faults must not corrupt the log: {tail:?}");
        if records.len() >= 500 {
            break records;
        }
    };
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());

    let report = crash_points(&dir).expect("harness runs over a clean directory");
    assert_eq!(report.records, records.len());
    assert_eq!(report.boundaries, records.len() + 1, "every record boundary is a crash point");
    assert_eq!(report.torn_cuts, records.len(), "every record survives a mid-frame tear");

    // And a straight recovery equals the live state byte for byte.
    let recovered = recover(&dir).expect("clean recovery");
    assert_eq!(
        state_digest(&recovered.db, &recovered.store),
        state_digest(&bundle.db, &store),
        "recovered state must equal the state the engine was left in"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-tail recovery is exact: cutting the log mid-record drops exactly
/// that record (reported as one dropped record with its byte count), the
/// valid prefix replays in full, and nothing partial is ever applied —
/// the recovered state equals a clean replay of the surviving prefix.
#[test]
fn torn_tail_recovery_reports_exactly_what_was_dropped() {
    let dir = tmp("torn-tail");
    let (bundle, mut nebula, items) = batch_fixture(7, 8);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None },
    )
    .unwrap();
    nebula.set_mutation_sink(Some(Box::new(durability)));
    nebula.process_batch(&bundle.db, &mut store, &items);
    drop(nebula.take_mutation_sink());

    let image = checkpoint::list_checkpoints(&dir)
        .ok()
        .and_then(|list| list.last().and_then(|(_, p)| std::fs::read(p).ok()))
        .expect("begin wrote a checkpoint");
    let bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap();
    let (records, tail) = wal::read_wal(&bytes);
    assert!(tail.is_clean() && records.len() >= 8, "need a log to tear, got {}", records.len());

    for k in [0, records.len() / 2, records.len() - 1] {
        let prev_end = if k == 0 { 0 } else { records[k - 1].end_offset };
        let cut = prev_end + (records[k].end_offset - prev_end) / 2;
        let torn = recover_from_bytes(Some(&image), &bytes[..cut]).expect("torn tail tolerated");
        assert_eq!(torn.tail.valid_records, k, "cut mid-record {k}");
        assert_eq!(torn.tail.dropped_records, 1, "exactly the torn record is dropped");
        assert_eq!(torn.tail.dropped_bytes, cut - prev_end);
        assert_eq!(torn.replayed, k);
        let clean = recover_from_bytes(Some(&image), &bytes[..prev_end]).unwrap();
        assert_eq!(
            state_digest(&torn.db, &torn.store),
            state_digest(&clean.db, &clean.store),
            "no partial application at cut {cut}"
        );
    }

    // A mid-log CRC hit through the full directory path: everything from
    // the corrupt record on is dropped, with exact counts.
    let dir2 = tmp("torn-tail-crc");
    std::fs::create_dir_all(&dir2).unwrap();
    std::fs::write(dir2.join(checkpoint::file_name(1)), &image).unwrap();
    let m = records.len() / 2;
    let frame_start = if m == 0 { 0 } else { records[m - 1].end_offset };
    let mut corrupted = bytes.clone();
    corrupted[frame_start + 4] ^= 0x01; // one bit of the stored CRC
    std::fs::write(dir2.join(wal::WAL_FILE), &corrupted).unwrap();
    let recovered = recover(&dir2).expect("corruption is reported, not fatal");
    assert_eq!(recovered.tail.valid_records, m);
    assert_eq!(recovered.tail.dropped_records, records.len() - m);
    assert_eq!(recovered.replayed, m);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// Seeded torn writes mid-batch: the batch never aborts, the engine never
/// applies a mutation it failed to log, and recovery reproduces exactly
/// the live state — the torn tail is dropped, nothing applied is lost.
#[test]
fn torn_writes_mid_batch_lose_nothing_applied() {
    let dir = tmp("torn-writes");
    let (bundle, mut nebula, items) = batch_fixture(9, 24);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: Some(16) },
    )
    .unwrap();
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(govern::FaultPlan::new(fault_seed()).with_torn_writes(0.1)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());

    assert_eq!(report.total(), items.len());
    assert!(stats.torn_writes >= 1, "the seeded plan never fired — scenario is vacuous");
    let recovered = recover(&dir).expect("a torn tail is repairable");
    assert_eq!(
        state_digest(&recovered.db, &recovered.store),
        state_digest(&bundle.db, &store),
        "recovery must reproduce the applied state exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded short writes self-repair: the failed append truncates its
/// partial bytes away, the log stays clean (no torn tail), and recovery
/// equals the live state.
#[test]
fn short_writes_self_repair_and_keep_the_log_clean() {
    let dir = tmp("short-writes");
    let (bundle, mut nebula, items) = batch_fixture(11, 24);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None },
    )
    .unwrap();
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(govern::FaultPlan::new(fault_seed()).with_short_writes(0.1)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());

    assert_eq!(report.total(), items.len());
    assert!(stats.short_writes >= 1, "the seeded plan never fired — scenario is vacuous");
    let bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap();
    let (_, tail) = wal::read_wal(&bytes);
    assert!(tail.is_clean(), "short writes must leave no partial bytes behind: {tail:?}");
    let recovered = recover(&dir).unwrap();
    assert_eq!(state_digest(&recovered.db, &recovered.store), state_digest(&bundle.db, &store),);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint bit flips are caught by the read-back verification before
/// the checkpoint is committed: every periodic checkpoint fails, the WAL
/// is never truncated, and recovery from the initial checkpoint plus the
/// full log still equals the live state — zero data loss.
#[test]
fn bit_flipped_checkpoints_fail_without_losing_data() {
    let dir = tmp("bit-flips");
    let (bundle, mut nebula, items) = batch_fixture(13, 24);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: Some(8) },
    )
    .unwrap();
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(govern::FaultPlan::new(fault_seed()).with_bit_flips(1.0)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());

    assert_eq!(report.total(), items.len());
    assert!(stats.bit_flips >= 1, "no checkpoint was attempted — scenario is vacuous");
    let ckpts = checkpoint::list_checkpoints(&dir).unwrap();
    assert_eq!(ckpts.len(), 1, "only the (pre-plan) initial checkpoint may exist");
    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.watermark, 0, "no checkpoint committed, watermark never moved");
    assert_eq!(state_digest(&recovered.db, &recovered.store), state_digest(&bundle.db, &store),);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fsync failure wedges the log with standard WAL semantics: the failed
/// record's bytes are in the file but were never applied, so recovery may
/// replay at most that one extra operation — and the log minus its last
/// record reproduces the live state exactly.
#[test]
fn fsync_failure_loses_at_most_the_unapplied_record() {
    let dir = tmp("fsync-fail");
    let (bundle, mut nebula, items) = batch_fixture(15, 24);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None },
    )
    .unwrap();
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(govern::FaultPlan::new(fault_seed()).with_fsync_failures(0.05)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());

    assert_eq!(report.total(), items.len());
    let image = checkpoint::list_checkpoints(&dir)
        .ok()
        .and_then(|list| list.last().and_then(|(_, p)| std::fs::read(p).ok()))
        .unwrap();
    let bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap();
    let (records, tail) = wal::read_wal(&bytes);
    assert!(tail.is_clean(), "fsync failure leaves whole records: {tail:?}");
    let live = state_digest(&bundle.db, &store);
    if stats.fsync_failures >= 1 {
        // The wedge froze the log after the unapplied record; dropping it
        // yields the applied state.
        let prefix_end = records[records.len() - 1].end_offset;
        let all_but_last =
            if records.len() >= 2 { records[records.len() - 2].end_offset } else { 0 };
        assert_eq!(prefix_end, bytes.len());
        let clean = recover_from_bytes(Some(&image), &bytes[..all_but_last]).unwrap();
        assert_eq!(state_digest(&clean.db, &clean.store), live);
        // Full recovery is still valid — it may include the logged-but-
        // unapplied record (standard WAL semantics), never less.
        let full = recover_from_bytes(Some(&image), &bytes).unwrap();
        assert_eq!(full.replayed, records.len());
    } else {
        let recovered = recover(&dir).unwrap();
        assert_eq!(state_digest(&recovered.db, &recovered.store), live);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Checked-in sample durability directory: format-drift protection.
// ---------------------------------------------------------------------------

fn sample_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("samples").join("durability")
}

/// The deterministic state the sample was generated from (no randomness,
/// no timestamps — regeneration is byte-reproducible).
fn sample_state() -> (Database, AnnotationStore, Vec<TupleId>) {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .primary_key("gid")
            .build()
            .unwrap(),
    )
    .unwrap();
    let tuples: Vec<TupleId> = [("JW0001", "thrA"), ("JW0002", "thrB"), ("JW0013", "grpC")]
        .iter()
        .map(|(gid, name)| db.insert("gene", vec![Value::text(*gid), Value::text(*name)]).unwrap())
        .collect();
    let mut store = AnnotationStore::new();
    let a = store.add_annotation(Annotation::new("seed note").by("sample"));
    store.attach(a, AttachmentTarget::tuple(tuples[0])).unwrap();
    (db, store, tuples)
}

/// The scripted WAL tail the sample carries past its checkpoint.
fn sample_ops(tuples: &[TupleId]) -> Vec<WalOp> {
    vec![
        WalOp::AddAnnotation {
            expected: AnnotationId(1),
            text: "curator remark".to_string(),
            author: Some("alice".to_string()),
            kind: Some("comment".to_string()),
        },
        WalOp::AttachTuple { annotation: AnnotationId(1), tuple: tuples[1] },
        WalOp::AttachPredicted { annotation: AnnotationId(1), tuple: tuples[2], confidence: 0.7 },
        WalOp::AcceptEdge { annotation: AnnotationId(1), tuple: tuples[2] },
        WalOp::AttachCell {
            annotation: AnnotationId(0),
            tuple: tuples[0],
            column: nebula::relstore::schema::ColumnId(1),
        },
    ]
}

/// Guards the on-disk format: the committed sample directory (written by
/// an earlier build) must keep recovering. If this fails after a codec
/// change, either restore compatibility or bump the magic and regenerate
/// the sample via `regenerate_sample_durability_directory`.
#[test]
fn checked_in_sample_durability_directory_recovers() {
    let recovered = recover(&sample_dir()).expect("committed sample must stay recoverable");
    assert!(recovered.had_checkpoint);
    assert!(recovered.tail.is_clean(), "{:?}", recovered.tail);
    assert_eq!(recovered.watermark, 0);
    assert_eq!(recovered.replayed, 5);
    assert_eq!(recovered.last_lsn, 5);
    assert_eq!(recovered.db.total_tuples(), 3);
    assert_eq!(recovered.store.annotation_count(), 2);
    // The replayed tail is live: the accepted edge is true, the cell
    // refinement resolved.
    let (db, store, tuples) = sample_state();
    let _ = (db, store);
    let edge = recovered.store.edge(AnnotationId(1), tuples[2]).expect("accepted edge");
    assert_eq!(edge.kind, nebula::annostore::EdgeKind::True);
    assert_eq!(
        recovered.store.cell_column(AnnotationId(0), tuples[0]),
        Some(nebula::relstore::schema::ColumnId(1))
    );
}

/// Regenerates `samples/durability/` deterministically. Ignored in normal
/// runs; invoke by hand after an intentional format change:
/// `cargo test --test durability regenerate_sample -- --ignored`.
#[test]
#[ignore = "rewrites the checked-in sample; run manually after intentional format changes"]
fn regenerate_sample_durability_directory() {
    let dir = sample_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let (db, store, tuples) = sample_state();
    let mut durability = Durability::begin(
        &dir,
        &db,
        &store,
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None },
    )
    .unwrap();
    for op in sample_ops(&tuples) {
        durability.append(&op).unwrap();
    }
    // Prove the freshly generated sample satisfies the drift test.
    drop(durability);
    checked_in_sample_durability_directory_recovers();
}

//! Replication soak and failover sweeps against the full stack.
//!
//! Two invariants from the replication tentpole are exercised end to end:
//!
//! - **Partition/heal soak** — 500 annotations pushed through the
//!   concurrent ingest pool while the cluster's simulated network drops,
//!   delays, reorders, duplicates, and flaps links, with one replica
//!   explicitly partitioned for the first half of the batch. Every offered
//!   annotation is accounted for exactly once, and after the partition
//!   heals the cluster converges: every replica's applied LSN, state
//!   digest, and checkpoint-image *bytes* match the primary's, with each
//!   LSN applied exactly once (replayed + checkpointed = applied).
//! - **Failover sweep** — promotion at *every* ack boundary of a fixed
//!   history. The promoted primary's state is always a prefix of the
//!   reference chain (never a fork), the deposed primary's post-promotion
//!   writes are rejected by epoch fencing, and the cluster reconverges on
//!   the new chain.
//!
//! Both sweeps honor the shared fault machinery's environment knobs:
//! `NEBULA_FAULT_SEED` picks the transport fault seed (hex or decimal,
//! default `0xF00D`) and `NEBULA_REPL_ACK` (`none` / `quorum`) narrows the
//! commit-rule sweep — CI runs the full seed × rule matrix.

use nebula::nebula_durable::wal::WalOp;
use nebula::nebula_durable::{checkpoint, replay_op, state_digest};
use nebula::nebula_govern::FaultPlan;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::path::PathBuf;

/// The transport fault seed: `NEBULA_FAULT_SEED` (hex with `0x` prefix or
/// decimal), defaulting to the seed the bench experiments use.
fn fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

/// The commit rules to sweep: `NEBULA_REPL_ACK=none|quorum` narrows the
/// matrix to one rule (CI pins each job to one); unset runs both.
fn ack_rules() -> Vec<CommitRule> {
    match std::env::var("NEBULA_REPL_ACK").ok().as_deref() {
        Some("none") => vec![CommitRule::Local],
        Some("quorum") => vec![CommitRule::Quorum(2)],
        _ => vec![CommitRule::Local, CommitRule::Quorum(2)],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-repl-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("note {n}"),
        author: None,
        kind: None,
    }
}

/// Canonical state bytes: the checkpoint image both checkpoint transfer
/// and recovery deserialize, at a fixed watermark so only state differs.
fn state_bytes(db: &nebula::relstore::Database, store: &AnnotationStore) -> Vec<u8> {
    checkpoint::encode(0, db, store)
}

/// Seeded partition/heal soak: 500 annotations through the concurrent
/// ingest pool writing into a 3-replica cluster over a flapping, faulty
/// transport, with replica 3 hard-partitioned for the first half. After
/// the heal the cluster must converge byte-for-byte, and the batch report
/// must account for every offered item exactly once.
#[test]
fn partition_heal_soak_converges_and_accounts_exactly_once() {
    let seed = fault_seed();
    for rule in ack_rules() {
        let bundle = generate_dataset(&DatasetSpec::tiny(), 0x5E_AC);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 21);
        let source: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .collect();
        assert!(!source.is_empty());
        let items: Vec<IngestItem> = (0..500)
            .map(|i| {
                let wa = source[i % source.len()];
                IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]])
            })
            .collect();

        let mut bundle = bundle;
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);

        let dir = temp_dir(&format!("soak-{rule}"));
        let plan = FaultPlan::new(seed).with_net(0.05, 0.1, 0.05, 0.05);
        let transport = SimTransport::new(4, plan).with_flap(64);
        let config = ClusterConfig { rule, ..ClusterConfig::default() };
        let cluster =
            Cluster::new(&dir, &bundle.db, &bundle.annotations, 3, Box::new(transport), config)
                .expect("fresh cluster directory");
        let sink = ClusterSink::new(cluster);
        let handle = sink.handle();
        nebula.set_mutation_sink(Some(Box::new(sink)));

        // CI's thread-count matrix pins the pool size via NEBULA_WORKERS.
        let workers = std::env::var("NEBULA_WORKERS")
            .ok()
            .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
            .filter(|n| *n > 0)
            .unwrap_or(4);
        let ingest = IngestConfig { workers, ..IngestConfig::default() };

        // First half with replica 3 hard-partitioned, second half healed:
        // the flap schedule keeps the other links churning throughout.
        handle.lock().set_partitioned(3, true);
        let first =
            ingest_batch(&mut nebula, &bundle.db, &mut bundle.annotations, &items[..250], &ingest);
        handle.lock().set_partitioned(3, false);
        let second =
            ingest_batch(&mut nebula, &bundle.db, &mut bundle.annotations, &items[250..], &ingest);
        drop(nebula.take_mutation_sink());

        // Exactly-once accounting per half: terminal statuses plus typed
        // sheds partition the offered items, index by index.
        for (report, offered) in [(&first, 250usize), (&second, 250usize)] {
            assert_eq!(report.total(), offered, "{rule}: offered = accounted");
            assert_eq!(report.batch.total() + report.sheds.len(), offered, "{rule}");
            let b = &report.batch;
            assert_eq!(
                b.accepted + b.pending + b.rejected + b.degraded + b.quarantined,
                b.total(),
                "{rule}: every executed item has exactly one terminal status"
            );
            let mut seen = vec![0u8; offered];
            for e in &b.entries {
                seen[e.index] += 1;
            }
            for s in &report.sheds {
                seen[s.index] += 1;
            }
            assert!(seen.iter().all(|&n| n == 1), "{rule}: each index exactly once");
        }

        // Heal and drain: the cluster converges within a bounded budget.
        let mut cluster = handle.lock();
        let last = cluster.primary().last_lsn();
        assert!(last > 0, "{rule}: the batch shipped records");
        let mut rounds = 0;
        while cluster.primary().min_acked() < last && rounds < 5_000 {
            cluster.pump(1);
            rounds += 1;
        }
        assert!(
            cluster.primary().min_acked() >= last,
            "{rule}: convergence within budget (stalled at {} / {last} after {rounds} rounds: {})",
            cluster.primary().min_acked(),
            cluster.describe_transport(),
        );

        // Byte-for-byte convergence and exactly-once replay accounting.
        let (pdb, pstore) = cluster.primary().shadow();
        let want_bytes = state_bytes(pdb, pstore);
        let want_digest = cluster.primary().shadow_digest();
        assert_eq!(pstore.annotation_count(), bundle.annotations.annotation_count(), "{rule}");
        for r in cluster.replicas() {
            assert!(!r.is_wedged(), "{rule}: replica {} wedged", r.id());
            assert_eq!(r.applied(), last, "{rule}: replica {}", r.id());
            assert_eq!(r.digest(), want_digest, "{rule}: replica {}", r.id());
            assert_eq!(state_bytes(r.db(), r.store()), want_bytes, "{rule}: replica {}", r.id());
            assert_eq!(
                r.records_replayed() + r.applied_via_checkpoint(),
                r.applied(),
                "{rule}: replica {} applied each LSN exactly once",
                r.id()
            );
        }
        assert!(cluster.primary().divergences().is_empty(), "{rule}");
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Failover at every ack boundary: for each prefix length `k` of a fixed
/// 10-op history, write `k` ops, promote the best candidate, and check
/// that the promoted state is a *prefix* of the reference chain (replayed
/// through the same `replay_op` path), that the deposed primary is fenced
/// on every later write, and that the cluster reconverges on the new
/// chain's final state.
#[test]
fn failover_at_every_ack_boundary_preserves_a_single_chain() {
    const N: u64 = 10;
    // Reference chain: digests and bytes after each LSN, via replay_op.
    let mut db = nebula::relstore::Database::new();
    let mut store = AnnotationStore::new();
    let mut ref_digest = vec![state_digest(&db, &store)];
    let mut ref_bytes = vec![state_bytes(&db, &store)];
    for i in 0..N {
        replay_op(&mut db, &mut store, &op(i)).expect("reference replay");
        ref_digest.push(state_digest(&db, &store));
        ref_bytes.push(state_bytes(&db, &store));
    }

    for rule in ack_rules() {
        for k in 1..=N {
            let dir = temp_dir(&format!("failover-{rule}-{k}"));
            let config = ClusterConfig { rule, ..ClusterConfig::default() };
            let mut cluster = Cluster::new(
                &dir,
                &nebula::relstore::Database::new(),
                &AnnotationStore::new(),
                2,
                Box::new(SimTransport::reliable(3)),
                config,
            )
            .expect("fresh cluster directory");
            for i in 0..k {
                cluster.record(&op(i)).expect("record on healthy cluster");
            }

            let target = cluster.best_failover_candidate().expect("a live candidate");
            cluster.promote(target).expect("promotion");
            assert_eq!(cluster.primary().epoch(), 2, "{rule}/{k}");
            assert_eq!(cluster.primary().node(), target, "{rule}/{k}");

            // The surviving history is a prefix of the reference chain,
            // never a fork: the promoted primary starts at some LSN a ≤ k
            // whose state bytes are exactly the reference state at a.
            let a = cluster.primary().last_lsn();
            assert!(a <= k, "{rule}/{k}: promoted at {a}");
            assert_eq!(cluster.primary().shadow_digest(), ref_digest[a as usize], "{rule}/{k}");
            let (pdb, pstore) = cluster.primary().shadow();
            assert_eq!(state_bytes(pdb, pstore), ref_bytes[a as usize], "{rule}/{k}");

            // Deposed writes are rejected by epoch fencing — at the
            // boundary and on every later attempt.
            let err = cluster.record_on_deposed(0, &op(a)).unwrap_err();
            assert!(
                matches!(err, ReplicaError::Fenced { epoch: 1, newer: 2 }),
                "{rule}/{k}: {err:?}"
            );
            let err = cluster.record_on_deposed(0, &op(a + 1)).unwrap_err();
            assert!(matches!(err, ReplicaError::Fenced { .. }), "{rule}/{k}: {err:?}");

            // The new chain continues to the full history and the
            // surviving replica converges onto it.
            for i in a..N {
                cluster.record(&op(i)).expect("record on the new primary");
            }
            cluster.pump(8);
            assert_eq!(cluster.primary().last_lsn(), N, "{rule}/{k}");
            assert_eq!(cluster.primary().shadow_digest(), ref_digest[N as usize], "{rule}/{k}");
            for r in cluster.replicas() {
                assert_eq!(r.applied(), N, "{rule}/{k}: replica {}", r.id());
                assert_eq!(r.digest(), ref_digest[N as usize], "{rule}/{k}: replica {}", r.id());
            }
            assert!(cluster.primary().divergences().is_empty(), "{rule}/{k}");
            drop(cluster);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// An op with the same expected id slot as [`op`] but different bytes —
/// the post-promotion chain records these so the epochs genuinely fork.
fn fork_op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("forked note {n}"),
        author: None,
        kind: None,
    }
}

/// The rejoin variant of the failover sweep: at every ack boundary `k`,
/// promote, fence the deposed primary's further writes, finish the
/// history on a *forked* new chain (different bytes past the promotion
/// point), then **rejoin** the deposed primary as a replica of the new
/// epoch. The rejoined node must locate the promotion point exactly,
/// rewind precisely its un-acked epoch-1 suffix (every fenced LSN
/// accounted once, none surviving, none double-applied), and reconverge
/// byte-for-byte with the new chain.
#[test]
fn rejoin_at_every_failover_boundary_reconverges_byte_for_byte() {
    const N: u64 = 10;
    for rule in ack_rules() {
        for k in 1..=N {
            let dir = temp_dir(&format!("rejoin-{rule}-{k}"));
            let config = ClusterConfig { rule, ..ClusterConfig::default() };
            let mut cluster = Cluster::new(
                &dir,
                &nebula::relstore::Database::new(),
                &AnnotationStore::new(),
                2,
                Box::new(SimTransport::reliable(3)),
                config,
            )
            .expect("fresh cluster directory");
            for i in 0..k {
                cluster.record(&op(i)).expect("record on healthy cluster");
            }
            let target = cluster.best_failover_candidate().expect("a live candidate");
            cluster.promote(target).expect("promotion");
            let a = cluster.primary().last_lsn();

            // The deposed primary keeps writing and is fenced every time.
            assert!(matches!(
                cluster.record_on_deposed(0, &op(a)).unwrap_err(),
                ReplicaError::Fenced { .. }
            ));
            // The new chain continues with *different* records, so the
            // deposed primary's suffix past `a` is a real fork.
            for i in a..N {
                cluster.record(&fork_op(i)).expect("record on the new primary");
            }
            cluster.pump(8);

            // Reference: the agreed prefix, then the forked suffix.
            let mut rdb = nebula::relstore::Database::new();
            let mut rstore = AnnotationStore::new();
            for i in 0..a {
                replay_op(&mut rdb, &mut rstore, &op(i)).expect("reference replay");
            }
            for i in a..N {
                replay_op(&mut rdb, &mut rstore, &fork_op(i)).expect("reference replay");
            }
            let want_digest = state_digest(&rdb, &rstore);
            let want_bytes = state_bytes(&rdb, &rstore);

            // Rejoin: the deposed primary demotes, rewinds its un-acked
            // epoch-1 suffix, and catches up under epoch 2.
            let deposed_last = cluster
                .deposed()
                .first()
                .map(nebula::nebula_replica::Primary::last_lsn)
                .expect("a deposed primary existed");
            let out = cluster.rejoin(0).expect("rejoin the deposed primary");
            assert_eq!(out.node, 0, "{rule}/{k}");
            assert_eq!(out.epoch, 2, "{rule}/{k}");
            assert!(out.converged, "{rule}/{k}: rejoin converged");
            // Exactly-once accounting: the ladder pins the promotion
            // point, and every fenced LSN past it is rewound exactly once
            // — none survive, and the agreed prefix is not re-wound.
            assert_eq!(out.agreed, a, "{rule}/{k}: rewind point is the promotion point");
            assert_eq!(out.rewound, deposed_last - a, "{rule}/{k}: exactly the fenced suffix");
            assert_eq!(cluster.deposed_nodes(), Vec::<usize>::new(), "{rule}/{k}");

            // Byte-for-byte reconvergence of the whole membership — the
            // rejoined node included — on the new chain.
            assert_eq!(cluster.primary().shadow_digest(), want_digest, "{rule}/{k}");
            assert_eq!(cluster.replicas().len(), 2, "{rule}/{k}: both replicas attached");
            for r in cluster.replicas() {
                assert!(!r.is_wedged(), "{rule}/{k}: replica {}", r.id());
                assert_eq!(r.applied(), N, "{rule}/{k}: replica {}", r.id());
                assert_eq!(r.digest(), want_digest, "{rule}/{k}: replica {}", r.id());
                assert_eq!(
                    state_bytes(r.db(), r.store()),
                    want_bytes,
                    "{rule}/{k}: replica {}",
                    r.id()
                );
            }
            assert_eq!(cluster.repair_status().rejoins, 1, "{rule}/{k}");
            drop(cluster);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The acceptance bar for ack-quorum: with a full quorum, *every* acked
/// LSN leaves every replica's state bytes identical to the primary's
/// shadow at that LSN — commit acknowledgements never run ahead of
/// replicated state.
#[test]
fn quorum_acked_lsns_match_primary_bytes_at_every_step() {
    let dir = temp_dir("lockstep");
    let config = ClusterConfig { rule: CommitRule::Quorum(2), ..ClusterConfig::default() };
    let mut cluster = Cluster::new(
        &dir,
        &nebula::relstore::Database::new(),
        &AnnotationStore::new(),
        2,
        Box::new(SimTransport::reliable(3)),
        config,
    )
    .expect("fresh cluster directory");
    for i in 0..12 {
        let lsn = cluster.record(&op(i)).expect("record");
        assert!(!cluster.lag_exceeded(), "quorum satisfied at lsn {lsn}");
        let (pdb, pstore) = cluster.primary().shadow();
        let want = state_bytes(pdb, pstore);
        for r in cluster.replicas() {
            assert_eq!(r.applied(), lsn, "replica {} acked lsn {lsn}", r.id());
            assert_eq!(
                state_bytes(r.db(), r.store()),
                want,
                "replica {} bytes at acked lsn {lsn}",
                r.id()
            );
        }
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

//! The deterministic chaos nemesis soak.
//!
//! [`nebula::nebula_replica::compose_schedule`] composes a seeded,
//! self-closing schedule that interleaves every fault dimension the stack
//! owns — ingest bursts (overload), network partitions, in-memory replica
//! corruption, on-disk bit-rot, failovers, and rejoins — and this driver
//! executes it against a live engine + ingest pool + replicated cluster.
//! The acceptance bar from the self-healing tentpole:
//!
//! - **≥ 500 annotations per seed**, every one accounted for exactly once
//!   (zero sheds, every offered item executed);
//! - **every injected bit-rot detected** by the very next scrub — before
//!   any checkpoint could paper over it — and healed from shadow state;
//! - **zero fenced-forever replicas** (every deposed primary rejoins) and
//!   **zero permanently-Wedged ingest** (no batch ends wedged);
//! - **byte-identical reconvergence**: after the schedule drains, the live
//!   engine state, the primary's shadow, every replica, and a cold
//!   recovery from the primary's durability directory all serialize to
//!   the same checkpoint image, with each LSN applied exactly once.
//!
//! Same seed, same schedule, same verdict — a red run replays exactly.
//! `NEBULA_WORKERS` pins the ingest pool size (CI sweeps 1 and 8).

use nebula::nebula_backup::{
    create_bundle, inject_rot as inject_archive_rot, restore as restore_bundle,
    scrub as scrub_bundle, verify_bundle, BundleSpec,
};
use nebula::nebula_durable::{checkpoint, inject_rot, Durability};
use nebula::nebula_govern::set_fault_plan;
use nebula::nebula_replica::{
    compose_schedule, compose_schedule_with_backup, compose_schedule_with_disk,
    compose_schedule_with_shards, NemesisEvent,
};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::path::{Path, PathBuf};

const REPLICAS: usize = 2;
const OPS: u64 = 500;
const SEEDS: [u64; 3] = [0xF00D, 0xBAD5EED, 12345];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// CI's thread-count matrix pins the pool size via `NEBULA_WORKERS`.
fn workers() -> usize {
    std::env::var("NEBULA_WORKERS")
        .ok()
        .and_then(|s| s.split(',').next().and_then(|t| t.trim().parse().ok()))
        .filter(|n| *n > 0)
        .unwrap_or(4)
}

/// Canonical state bytes: the checkpoint image at a fixed watermark, so
/// only state differences can distinguish two nodes.
fn state_bytes(db: &nebula::relstore::Database, store: &AnnotationStore) -> Vec<u8> {
    checkpoint::encode(0, db, store)
}

#[test]
fn nemesis_soak_reconverges_byte_identically_for_each_seed() {
    // Disruption totals across all seeds: the suite as a whole must
    // exercise every chaos dimension, even if one seed happens to skip one.
    let mut dims = (0usize, 0usize, 0usize, 0usize, 0usize);

    for seed in SEEDS {
        let plan = compose_schedule(seed, REPLICAS, OPS);
        let (p, c, r, f, b) = plan.disruption_counts();
        dims = (dims.0 + p, dims.1 + c, dims.2 + r, dims.3 + f, dims.4 + b);

        // The same workload shape as the replication soak: real annotations
        // from the generated dataset, cycled up to the schedule's total.
        let bundle = generate_dataset(&DatasetSpec::tiny(), 0x5E_AC);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 21);
        let source: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .collect();
        assert!(!source.is_empty());
        let items: Vec<IngestItem> = (0..OPS as usize)
            .map(|i| {
                let wa = source[i % source.len()];
                IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]])
            })
            .collect();

        let mut bundle = bundle;
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);

        let dir = temp_dir(&format!("soak-{seed:x}"));
        let cluster = Cluster::new(
            &dir,
            &bundle.db,
            &bundle.annotations,
            REPLICAS,
            Box::new(SimTransport::reliable(3)),
            ClusterConfig::default(),
        )
        .expect("fresh cluster directory");
        let sink = ClusterSink::new(cluster);
        let handle = sink.handle();
        nebula.set_mutation_sink(Some(Box::new(sink)));

        // A non-shedding pool: the nemesis supplies the chaos, so any shed
        // or wedge here is a real loss, not configured pressure.
        let ingest = IngestConfig::deterministic(workers(), OPS as usize);

        let mut next = 0usize; // cursor into `items`
        let mut executed = 0usize;
        let mut rot_injections = 0usize;
        let mut rot_detections = 0usize;
        let mut rot_pending = false;
        let mut partitioned: Option<usize> = None;

        for event in &plan.events {
            match *event {
                // Overload bursts ride the same path: the deterministic
                // pool's capacity covers the burst, so nothing sheds and
                // the pressure lands on the cluster underneath.
                NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => {
                    let n = n as usize;
                    let slice = &items[next..next + n];
                    next += n;
                    let report = ingest_batch(
                        &mut nebula,
                        &bundle.db,
                        &mut bundle.annotations,
                        slice,
                        &ingest,
                    );
                    assert!(
                        report.sheds.is_empty(),
                        "seed {seed:#x}: no annotation shed: {:?}",
                        report.sheds
                    );
                    assert_ne!(
                        report.health,
                        HealthState::Wedged,
                        "seed {seed:#x}: no batch ends permanently wedged"
                    );
                    assert_eq!(report.batch.total(), n, "seed {seed:#x}: every offered item ran");
                    executed += report.batch.total();
                }
                NemesisEvent::Partition { node } => {
                    handle.lock().set_partitioned(node, true);
                    partitioned = Some(node);
                }
                NemesisEvent::Heal { node } => {
                    handle.lock().set_partitioned(node, false);
                    partitioned = None;
                }
                // The target may currently be the primary or a deposed
                // node — corruption then has no replica surface to poison.
                NemesisEvent::Corrupt { replica } => {
                    let _ = handle.lock().chaos_corrupt_replica(replica);
                }
                NemesisEvent::BitRot => {
                    let wal_dir = handle.lock().primary().wal().dir().to_path_buf();
                    // The governor is thread-local: arming the plan here
                    // affects only this thread's inject_rot, never the
                    // pool's worker threads.
                    set_fault_plan(Some(
                        FaultPlan::new(seed.wrapping_add(rot_injections as u64))
                            .with_bit_rot(1.0, 1.0),
                    ));
                    let rot = inject_rot(&wal_dir).expect("rot injection");
                    set_fault_plan(None);
                    if rot.any() {
                        rot_injections += 1;
                        rot_pending = true;
                    }
                }
                NemesisEvent::Scrub => {
                    let mut cluster = handle.lock();
                    let summary = cluster.scrub();
                    if rot_pending {
                        // The composer schedules a scrub immediately after
                        // every rot — no checkpoint runs in between, so
                        // this is the "before the next checkpoint" gate.
                        assert!(
                            !summary.media.is_clean(),
                            "seed {seed:#x}: injected rot detected before the next checkpoint"
                        );
                        assert!(summary.media_healed, "seed {seed:#x}: rot healed from shadow");
                        rot_detections += 1;
                        rot_pending = false;
                    }
                    let mut targets = summary.wedged.clone();
                    for id in &summary.diverged {
                        if !targets.contains(id) {
                            targets.push(*id);
                        }
                    }
                    for id in targets {
                        let out = cluster.repair_replica(id).expect("repair");
                        if partitioned != Some(id) {
                            assert!(out.converged, "seed {seed:#x}: repair of replica {id}");
                        }
                    }
                }
                NemesisEvent::Failover => {
                    let mut cluster = handle.lock();
                    // Quiesce first: every live replica acks the full log,
                    // so promotion preserves the live engine's state and
                    // the engine never has to roll back.
                    let last = cluster.primary().last_lsn();
                    let mut rounds = 0;
                    while cluster.primary().min_acked() < last && rounds < 20_000 {
                        cluster.pump(1);
                        rounds += 1;
                    }
                    assert!(
                        cluster.primary().min_acked() >= last,
                        "seed {seed:#x}: quiesce before failover ({})",
                        cluster.describe_transport()
                    );
                    if let Some(target) = cluster.best_failover_candidate() {
                        cluster.promote(target).expect("promotion");
                    }
                }
                NemesisEvent::Rejoin => {
                    let mut cluster = handle.lock();
                    for node in cluster.deposed_nodes() {
                        let epoch = cluster.primary().epoch();
                        let out = cluster.rejoin(node).expect("rejoin");
                        assert_eq!(out.epoch, epoch, "seed {seed:#x}: rejoined the live epoch");
                        if partitioned != Some(node) {
                            assert!(out.converged, "seed {seed:#x}: rejoin of node {node}");
                        }
                    }
                }
                // Unsharded, disk-off, backup-off schedules compose no
                // shard, disk, or backup events.
                NemesisEvent::ShardPartition { .. }
                | NemesisEvent::ShardHeal { .. }
                | NemesisEvent::ShardBitRot { .. }
                | NemesisEvent::ShardFailover { .. }
                | NemesisEvent::PageRot
                | NemesisEvent::PageFsyncFail
                | NemesisEvent::EvictStorm
                | NemesisEvent::Backup
                | NemesisEvent::ArchiveRot
                | NemesisEvent::BackupScrub
                | NemesisEvent::RestoreCheck => {
                    unreachable!("seed {seed:#x}: shard/disk/backup event in a core schedule")
                }
            }
        }

        // Exactly-once offering: the schedule carried every annotation,
        // and every one executed (nothing shed, nothing double-offered).
        assert_eq!(next, OPS as usize, "seed {seed:#x}: the schedule offered all {OPS} items");
        assert_eq!(executed, OPS as usize, "seed {seed:#x}: all {OPS} items executed");
        // 100% scrub detection of whatever rot the schedule injected.
        assert_eq!(
            rot_detections, rot_injections,
            "seed {seed:#x}: the scrubber caught every injected rot"
        );

        // Drain and take stock: the final ingest may still be in flight to
        // the replicas; converge within a bounded pump budget.
        drop(nebula.take_mutation_sink());
        let mut cluster = handle.lock();
        let last = cluster.primary().last_lsn();
        let mut rounds = 0;
        while cluster.primary().min_acked() < last && rounds < 20_000 {
            cluster.pump(1);
            rounds += 1;
        }
        assert!(
            cluster.primary().min_acked() >= last,
            "seed {seed:#x}: final drain converged ({})",
            cluster.describe_transport()
        );

        // At rest everything is clean: media, ladders, membership.
        let final_scrub = cluster.scrub();
        assert!(final_scrub.media.is_clean(), "seed {seed:#x}: media clean at rest");
        assert!(
            final_scrub.diverged.is_empty() && final_scrub.wedged.is_empty(),
            "seed {seed:#x}: no divergence at rest"
        );
        assert!(cluster.pending_repairs().is_empty(), "seed {seed:#x}: nothing pending");
        assert_eq!(
            cluster.deposed_nodes(),
            Vec::<usize>::new(),
            "seed {seed:#x}: zero fenced-forever nodes"
        );
        assert_eq!(cluster.replicas().len(), REPLICAS, "seed {seed:#x}: full membership");

        // Byte-identical reconvergence: live engine == primary shadow ==
        // every replica, with each LSN applied exactly once.
        let want = state_bytes(&bundle.db, &bundle.annotations);
        let (pdb, pstore) = cluster.primary().shadow();
        assert_eq!(state_bytes(pdb, pstore), want, "seed {seed:#x}: primary == live engine");
        assert_eq!(
            pstore.annotation_count(),
            bundle.annotations.annotation_count(),
            "seed {seed:#x}: annotation census agrees"
        );
        let want_digest = cluster.primary().shadow_digest();
        for r in cluster.replicas() {
            assert!(!r.is_wedged(), "seed {seed:#x}: replica {}", r.id());
            assert_eq!(r.applied(), last, "seed {seed:#x}: replica {}", r.id());
            assert_eq!(r.digest(), want_digest, "seed {seed:#x}: replica {}", r.id());
            assert_eq!(
                state_bytes(r.db(), r.store()),
                want,
                "seed {seed:#x}: replica {} bytes",
                r.id()
            );
            // Lifetime replay accounting: a repaired replica legitimately
            // re-applies rewound LSNs (counted once as replay, once via
            // the resync checkpoint), so the lifetime counters bound
            // `applied` from above; the byte-identity asserts carry the
            // exactly-once-in-state claim.
            assert!(
                r.records_replayed() + r.applied_via_checkpoint() >= r.applied(),
                "seed {seed:#x}: replica {} lifetime counters cover every applied LSN",
                r.id()
            );
        }

        // And a cold restart agrees: recovery from the primary's healed
        // durability directory reproduces the same bytes.
        let wal_dir = cluster.primary().wal().dir().to_path_buf();
        drop(cluster);
        drop(handle);
        let (resumed, recovered) =
            Durability::resume(&wal_dir, DurabilityOptions::default()).expect("resume");
        assert_eq!(
            state_bytes(&recovered.db, &recovered.store),
            want,
            "seed {seed:#x}: cold recovery agrees byte-for-byte"
        );
        drop(resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The three seeds together exercised every chaos dimension.
    let (partitions, corruptions, rots, failovers, bursts) = dims;
    assert!(partitions > 0, "no partitions across the seed suite");
    assert!(corruptions > 0, "no corruptions across the seed suite");
    assert!(rots > 0, "no bit-rot across the seed suite");
    assert!(failovers > 0, "no failovers across the seed suite");
    assert!(bursts > 0, "no bursts across the seed suite");
}

/// `NEBULA_FAULT_SEED` pins the sharded soak's schedule seed (hex with a
/// `0x` prefix or decimal); CI sweeps 0xF00D and 0xBAD5EED.
fn fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let t = s.trim();
            match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => t.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

/// `NEBULA_SHARDS` pins the sharded soak's shard count; CI sweeps 1/2/4.
fn shard_count() -> usize {
    std::env::var("NEBULA_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(3)
}

/// The fixed-seed sharded soak: the same nemesis composer, pointed at the
/// scatter-gather cluster. Shard partitions degrade ingest to typed
/// partial results (never an error), heals replay the missed batches,
/// single-shard bit-rot is localized and repaired by the adjacent scrub,
/// and shard failovers rebuild under a bumped fencing epoch. At the end
/// the merged image is byte-identical to an unsharded twin replayed from
/// the cluster's own durable history.
#[test]
fn sharded_nemesis_soak_reconverges_byte_identically() {
    const SHARD_OPS: u64 = 240;
    let seed = fault_seed();
    let shards = shard_count();
    let plan = compose_schedule_with_shards(seed, 0, shards, SHARD_OPS);
    let (shard_partitions, shard_rots, shard_failovers) = plan.shard_disruption_counts();
    if matches!(seed, 0xF00D | 0xBAD5EED) && shards > 1 {
        // The CI seeds are known to disrupt the shard dimension at this
        // length (at shards > 1, where partitions compose); an arbitrary
        // seed — or a single-shard schedule — may come out calm.
        assert!(
            shard_partitions + shard_rots + shard_failovers > 0,
            "seed {seed:#x}: the schedule must disrupt the shard dimension"
        );
    }

    let bundle = generate_dataset(&DatasetSpec::tiny(), 0x5E_AC);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 21);
    let source: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!source.is_empty());

    let mut cluster = ShardCluster::new(
        &bundle.db,
        &bundle.annotations,
        &bundle.meta,
        &NebulaConfig { search_mode: SearchMode::Full, ..NebulaConfig::default() },
        ShardConfig::new(shards),
    )
    .expect("cluster boots");

    let mut next = 0usize;
    let mut dark: Option<usize> = None;
    // A healed shard keeps degrading (typed!) until its breaker re-arms
    // through the half-open probe; track it until the first clean result.
    let mut recovering: Option<usize> = None;
    let mut rot_pending: Option<usize> = None;
    let mut failovers_run = 0u64;
    for event in &plan.events {
        match *event {
            NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => {
                for _ in 0..n {
                    let wa = source[next % source.len()];
                    next += 1;
                    let outcome = cluster
                        .ingest(&wa.annotation, &[wa.ideal[0]])
                        .expect("seed {seed:#x}: ingest survives every disruption");
                    if let Some(d) = dark {
                        // A dark shard may only ever surface as a typed
                        // partial naming it — never a silent omission.
                        for deg in &outcome.degradations {
                            if let Degradation::PartialShards { missing, .. } = deg {
                                assert_eq!(
                                    missing,
                                    &vec![d],
                                    "seed {seed:#x}: partial names the dark shard"
                                );
                            }
                        }
                    } else if let Some(r) = recovering {
                        if cluster.breaker_state(r) == nebula::nebula_ingest::BreakerState::Closed
                            && outcome.degradations.is_empty()
                        {
                            recovering = None;
                        } else {
                            for deg in &outcome.degradations {
                                assert!(
                                    matches!(
                                        deg,
                                        Degradation::PartialShards { missing, .. }
                                            if missing == &vec![r]
                                    ),
                                    "seed {seed:#x}: re-arming shard {r}: {deg}"
                                );
                            }
                        }
                    } else {
                        assert!(
                            outcome.degradations.is_empty(),
                            "seed {seed:#x}: healthy cluster degraded: {:?}",
                            outcome.degradations
                        );
                    }
                }
            }
            NemesisEvent::ShardPartition { shard } => {
                cluster.partition_shard(shard);
                dark = Some(shard);
            }
            NemesisEvent::ShardHeal { shard } => {
                cluster.heal_shard(shard);
                dark = None;
                recovering = Some(shard);
                assert!(
                    cluster.lagging().is_empty(),
                    "seed {seed:#x}: healed shard {shard} caught up"
                );
            }
            NemesisEvent::ShardBitRot { shard } => {
                cluster.corrupt_shard(shard).expect("bit-rot injection");
                rot_pending = Some(shard);
            }
            NemesisEvent::Scrub => {
                let outcome = cluster.scrub().expect("scrub");
                if let Some(shard) = rot_pending.take() {
                    // The composer schedules the scrub adjacent to the
                    // rot: detection is before the rot can spread.
                    assert_eq!(
                        outcome.divergent,
                        vec![shard],
                        "seed {seed:#x}: scrub localizes the rot"
                    );
                    assert_eq!(
                        outcome.repaired,
                        vec![shard],
                        "seed {seed:#x}: scrub repairs the rot"
                    );
                } else {
                    assert!(
                        outcome.divergent.is_empty(),
                        "seed {seed:#x}: spontaneous divergence: {outcome:?}"
                    );
                }
            }
            NemesisEvent::ShardFailover { shard } => {
                cluster.fail_shard(shard);
                cluster.promote_shard(shard).expect("failover");
                if recovering == Some(shard) {
                    // The promoted replacement starts with a fresh breaker.
                    recovering = None;
                }
                failovers_run += 1;
                assert_eq!(cluster.epoch(), failovers_run, "seed {seed:#x}: epoch fences forward");
            }
            // Replica-, disk-, and backup-dimension events; a shard
            // cluster has no replica set, durability directory, page
            // file, or archive here, so these are calm stretches.
            NemesisEvent::Partition { .. }
            | NemesisEvent::Heal { .. }
            | NemesisEvent::Corrupt { .. }
            | NemesisEvent::BitRot
            | NemesisEvent::Failover
            | NemesisEvent::Rejoin
            | NemesisEvent::PageRot
            | NemesisEvent::PageFsyncFail
            | NemesisEvent::EvictStorm
            | NemesisEvent::Backup
            | NemesisEvent::ArchiveRot
            | NemesisEvent::BackupScrub
            | NemesisEvent::RestoreCheck => {}
        }
    }

    assert_eq!(next as u64, SHARD_OPS, "seed {seed:#x}: the schedule offered every item");
    assert!(cluster.lagging().is_empty(), "seed {seed:#x}: nothing lagging at rest");
    assert!(cluster.divergent().is_empty(), "seed {seed:#x}: nothing divergent at rest");
    let final_scrub = cluster.scrub().expect("final scrub");
    assert!(final_scrub.divergent.is_empty(), "seed {seed:#x}: clean at rest");
    for h in cluster.health() {
        assert!(h.healthy(), "seed {seed:#x}: unhealthy at rest: {h}");
        assert_eq!(h.epoch, failovers_run, "seed {seed:#x}: every shard on the final epoch");
    }

    // Byte-identical reconvergence with the unsharded twin replayed from
    // the cluster's own durable history.
    let twin = cluster.rebuild_twin().expect("twin");
    assert_eq!(
        cluster.merged_checkpoint().expect("merged image"),
        twin.checkpoint(),
        "seed {seed:#x}: merged shards == unsharded twin"
    );
}

/// The fixed-seed paged-storage soak: the same nemesis composer with the
/// disk dimension armed, pointed at a `Database` whose rows and postings
/// live in a checksummed page file behind a 4-frame buffer pool (far
/// smaller than the file, so the clock hand churns constantly). A RAM
/// twin replays the identical mutation stream; the acceptance bar:
///
/// - **every injected page rot detected** by the very next scrub, with
///   zero false positives, and **healed in place** (single-bit rot
///   corrects via CRC linearity — no data degrades);
/// - **fsync-failed shadow commits lose nothing**: the old image stays
///   intact and the retry after the plan clears lands every page;
/// - **eviction storms stay byte-correct**: sweeping every live row
///   through the tiny pool returns exactly the RAM twin's bytes;
/// - at rest the paged database fingerprints identically to the RAM
///   twin, the file scrubs clean, and a cold reopen scrubs clean too.
#[test]
fn paged_nemesis_soak_matches_ram_twin_byte_for_byte() {
    use nebula::relstore::{snapshot, DataType, Database, TableSchema, TupleId, Value};

    const PAGED_OPS: u64 = 600;
    let seed = fault_seed();
    let plan = compose_schedule_with_disk(seed, 0, 0, true, PAGED_OPS);
    assert!(plan.disk);
    let (page_rots, fsync_fails, evict_storms) = plan.disk_disruption_counts();
    assert!(page_rots > 0, "seed {seed:#x}: no page rot composed");
    assert!(fsync_fails > 0, "seed {seed:#x}: no fsync failures composed");
    assert!(evict_storms > 0, "seed {seed:#x}: no eviction storms composed");

    let dir = temp_dir(&format!("paged-soak-{seed:x}"));
    std::fs::create_dir_all(&dir).expect("soak directory");
    let store = PagedStorage::open(&dir, 4).expect("paged store");
    let mut paged = Database::with_storage(std::sync::Arc::new(store.clone()));
    let mut mem = Database::new();

    let schema = || {
        TableSchema::builder("notes")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key("id")
            .build()
            .expect("schema")
    };
    paged.create_table(schema()).expect("paged table");
    mem.create_table(schema()).expect("mem table");

    // xorshift64* — the composer's generator, reseeded for the mutation
    // stream so both databases replay the identical op sequence.
    let mut rng_state: u64 = seed ^ 0xA5A5_5A5A_F00D_BEEF;
    let mut next_rng = move || {
        let mut x = rng_state.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let mut live: Vec<TupleId> = Vec::new();
    let mut next_id = 0i64;
    let mut rot_pending = false;
    let mut rot_detections = 0usize;
    let mut rot_injections = 0usize;

    for event in &plan.events {
        match *event {
            NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => {
                for _ in 0..n {
                    let roll = next_rng();
                    match roll % 10 {
                        0 if !live.is_empty() => {
                            let tid = live.swap_remove((next_rng() % live.len() as u64) as usize);
                            assert!(paged.delete(tid), "seed {seed:#x}: paged delete {tid:?}");
                            assert!(mem.delete(tid), "seed {seed:#x}: mem delete {tid:?}");
                        }
                        1 | 2 if !live.is_empty() => {
                            let tid = live[(next_rng() % live.len() as u64) as usize];
                            let id = match paged.get(tid).and_then(|t| t.get_by_name("id").cloned())
                            {
                                Some(Value::Int(v)) => v,
                                other => panic!("seed {seed:#x}: lost id column: {other:?}"),
                            };
                            let body = Value::text(format!("rewritten {id} pass {roll}"));
                            paged
                                .update(tid, vec![Value::Int(id), body.clone()])
                                .expect("paged update");
                            mem.update(tid, vec![Value::Int(id), body]).expect("mem update");
                        }
                        _ => {
                            let id = next_id;
                            next_id += 1;
                            // Every 11th record overflows a page, driving
                            // the chain-spill path under eviction.
                            let body = if id % 11 == 0 {
                                format!("large zebra {id} {}", "x".repeat(6000))
                            } else {
                                format!("note body {id} zebra")
                            };
                            let a = paged
                                .insert("notes", vec![Value::Int(id), Value::text(body.clone())])
                                .expect("paged insert");
                            let b = mem
                                .insert("notes", vec![Value::Int(id), Value::text(body)])
                                .expect("mem insert");
                            assert_eq!(a, b, "seed {seed:#x}: tuple ids identical");
                            live.push(a);
                        }
                    }
                }
            }
            NemesisEvent::PageRot => {
                // Flush first so the rot lands on a durable page the next
                // flush cannot paper over.
                store.flush_pages().expect("flush before rot");
                if store.metrics().page_count > 1 {
                    store.set_fault_plan(Some(
                        FaultPlan::new(seed.wrapping_add(rot_injections as u64))
                            .with_pages(0.0, 0.0, 0.0, 1.0),
                    ));
                    let hit = store.inject_rot().expect("rot injection");
                    store.set_fault_plan(None);
                    if hit.is_some() {
                        rot_injections += 1;
                        rot_pending = true;
                    }
                }
            }
            NemesisEvent::Scrub => {
                let report = store.scrub().expect("scrub");
                if rot_pending {
                    assert!(
                        !report.is_clean(),
                        "seed {seed:#x}: injected page rot detected by the very next scrub"
                    );
                    let healed = store.repair().expect("repair");
                    assert!(
                        healed.unrecoverable.is_empty(),
                        "seed {seed:#x}: single-bit rot heals in place"
                    );
                    assert!(store.scrub().expect("re-scrub").is_clean());
                    rot_detections += 1;
                    rot_pending = false;
                } else {
                    assert!(
                        report.is_clean(),
                        "seed {seed:#x}: zero false positives: {:?}",
                        report.corrupt
                    );
                }
            }
            NemesisEvent::PageFsyncFail => {
                // Guarantee a dirty page so the commit actually reaches
                // the failing fsync.
                let id = next_id;
                next_id += 1;
                let body = Value::text(format!("fsync probe {id} zebra"));
                let a = paged
                    .insert("notes", vec![Value::Int(id), body.clone()])
                    .expect("paged insert");
                let b = mem.insert("notes", vec![Value::Int(id), body]).expect("mem insert");
                assert_eq!(a, b);
                live.push(a);
                store.set_fault_plan(Some(
                    FaultPlan::new(seed ^ next_id as u64).with_pages(0.0, 0.0, 1.0, 0.0),
                ));
                let denied = store.flush_pages();
                store.set_fault_plan(None);
                assert!(denied.is_err(), "seed {seed:#x}: armed fsync fault must surface");
                // The failed shadow commit left the old image intact...
                assert!(store.scrub().expect("post-failure scrub").is_clean());
                // ...and the retry lands every page.
                store.flush_pages().expect("retry after the plan clears");
                assert!(store.scrub().expect("post-retry scrub").is_clean());
            }
            NemesisEvent::EvictStorm => {
                for tid in &live {
                    assert_eq!(
                        paged.get(*tid),
                        mem.get(*tid),
                        "seed {seed:#x}: byte-correct under eviction churn at {tid:?}"
                    );
                }
            }
            // No replicas, shards, or archive in this soak: the composer
            // still emits core failover/rot beats, which have no surface
            // here.
            NemesisEvent::Partition { .. }
            | NemesisEvent::Heal { .. }
            | NemesisEvent::Corrupt { .. }
            | NemesisEvent::BitRot
            | NemesisEvent::Failover
            | NemesisEvent::Rejoin
            | NemesisEvent::ShardPartition { .. }
            | NemesisEvent::ShardHeal { .. }
            | NemesisEvent::ShardBitRot { .. }
            | NemesisEvent::ShardFailover { .. }
            | NemesisEvent::Backup
            | NemesisEvent::ArchiveRot
            | NemesisEvent::BackupScrub
            | NemesisEvent::RestoreCheck => {}
        }
    }

    assert_eq!(
        rot_detections, rot_injections,
        "seed {seed:#x}: the scrubber caught every injected page rot"
    );
    assert!(rot_injections > 0, "seed {seed:#x}: the soak injected real page rot");

    // At rest: paged == RAM twin, file clean, pool actually churned.
    assert_eq!(
        snapshot::fingerprint(&paged),
        snapshot::fingerprint(&mem),
        "seed {seed:#x}: paged database fingerprints identically to the RAM twin"
    );
    for token in ["zebra", "rewritten"] {
        assert_eq!(
            mem.inverted_index().lookup(token).to_vec(),
            paged.inverted_index().lookup(token).to_vec(),
            "seed {seed:#x}: postings identical for {token:?}"
        );
    }
    store.flush_pages().expect("final flush");
    assert!(store.scrub().expect("final scrub").is_clean());
    let m = store.metrics();
    assert!(
        m.pool.evictions > 0,
        "seed {seed:#x}: a 4-frame pool under {} pages must evict",
        m.page_count
    );
    assert!(m.page_count as usize > 4, "seed {seed:#x}: the file outgrew the pool");

    // A cold reopen of the same directory recovers and scrubs clean.
    drop(paged);
    drop(store);
    let reopened = PagedStorage::open(&dir, 4).expect("cold reopen");
    assert!(reopened.scrub().expect("reopen scrub").is_clean());
    assert!(reopened.metrics().page_count > 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shallow-copy a bundle directory (bundles are flat).
fn copy_bundle(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("scratch dir");
    for entry in std::fs::read_dir(src).expect("read bundle") {
        let entry = entry.expect("bundle entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy bundle file");
    }
}

/// The disaster-recovery soak: the composer's backup dimension armed
/// against a live replicated cluster with WAL archiving on. Every
/// `Backup` captures a verified bundle mid-chaos and remembers the
/// primary's shadow bytes at that LSN; every `ArchiveRot` flips real bits
/// in a sacrificial copy of the newest bundle; the following
/// `BackupScrub` must report exactly the files that were damaged (100%
/// detection) while the pristine bundle scrubs clean (zero false
/// positives); every `RestoreCheck` rebuilds a store from the pristine
/// bundle and proves it byte-identical to the shadow snapshot — verified
/// point-in-time recovery holding under partitions, replica corruption,
/// WAL bit-rot, and epoch-fenced failovers.
#[test]
fn backup_nemesis_soak_restores_byte_identically_mid_chaos() {
    // Per-seed schedules may skip a slot; the seed suite as a whole must
    // exercise every backup beat.
    let mut dims = (0usize, 0usize, 0usize, 0usize);

    for seed in [0xBAD5EEDu64, 0xDEAD] {
        let plan = compose_schedule_with_backup(seed, REPLICAS, 0, false, true, OPS);
        let (backups, arch_rots, bscrubs, checks) = plan.backup_disruption_counts();
        dims = (dims.0 + backups, dims.1 + arch_rots, dims.2 + bscrubs, dims.3 + checks);
        assert!(backups > 0, "seed {seed:#x}: the schedule captures a bundle");
        assert!(checks > 0, "seed {seed:#x}: the schedule proves a restore");

        let bundle = generate_dataset(&DatasetSpec::tiny(), 0x5E_AC);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 21);
        let source: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .collect();
        assert!(!source.is_empty());
        let items: Vec<IngestItem> = (0..OPS as usize)
            .map(|i| {
                let wa = source[i % source.len()];
                IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]])
            })
            .collect();

        let mut bundle = bundle;
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);

        let dir = temp_dir(&format!("dr-{seed:x}"));
        let archive = dir.join("archive");
        let mut cluster = Cluster::new(
            &dir.join("cluster"),
            &bundle.db,
            &bundle.annotations,
            REPLICAS,
            Box::new(SimTransport::reliable(3)),
            ClusterConfig::default(),
        )
        .expect("fresh cluster directory");
        cluster.set_archive(&archive).expect("arm WAL archiving");
        let sink = ClusterSink::new(cluster);
        let handle = sink.handle();
        nebula.set_mutation_sink(Some(Box::new(sink)));

        let ingest = IngestConfig::deterministic(workers(), OPS as usize);

        let mut next = 0usize;
        let mut rot_injections = 0usize;
        let mut rot_detections = 0usize;
        let mut rot_pending = false;
        let mut partitioned: Option<usize> = None;
        // Newest pristine bundle: (dir, head LSN, shadow bytes at capture).
        let mut captured: Option<(PathBuf, u64, Vec<u8>)> = None;
        let mut backups_taken = 0u64;
        // Sacrificial rotted copy awaiting its scrub: (dir, damaged files).
        let mut rotted_copy: Option<(PathBuf, Vec<PathBuf>)> = None;
        let mut restores_proven = 0usize;

        for event in &plan.events {
            match *event {
                NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => {
                    let n = n as usize;
                    let slice = &items[next..next + n];
                    next += n;
                    let report = ingest_batch(
                        &mut nebula,
                        &bundle.db,
                        &mut bundle.annotations,
                        slice,
                        &ingest,
                    );
                    assert!(report.sheds.is_empty(), "seed {seed:#x}: no shed");
                    assert_ne!(report.health, HealthState::Wedged, "seed {seed:#x}: not wedged");
                    assert_eq!(report.batch.total(), n, "seed {seed:#x}: every item ran");
                }
                NemesisEvent::Partition { node } => {
                    handle.lock().set_partitioned(node, true);
                    partitioned = Some(node);
                }
                NemesisEvent::Heal { node } => {
                    handle.lock().set_partitioned(node, false);
                    partitioned = None;
                }
                NemesisEvent::Corrupt { replica } => {
                    let _ = handle.lock().chaos_corrupt_replica(replica);
                }
                NemesisEvent::BitRot => {
                    let wal_dir = handle.lock().primary().wal().dir().to_path_buf();
                    set_fault_plan(Some(
                        FaultPlan::new(seed.wrapping_add(rot_injections as u64))
                            .with_bit_rot(1.0, 1.0),
                    ));
                    let rot = inject_rot(&wal_dir).expect("rot injection");
                    set_fault_plan(None);
                    if rot.any() {
                        rot_injections += 1;
                        rot_pending = true;
                    }
                }
                NemesisEvent::Scrub => {
                    let mut cluster = handle.lock();
                    let summary = cluster.scrub();
                    if rot_pending {
                        assert!(
                            !summary.media.is_clean(),
                            "seed {seed:#x}: injected rot detected before the next checkpoint"
                        );
                        assert!(summary.media_healed, "seed {seed:#x}: rot healed from shadow");
                        rot_detections += 1;
                        rot_pending = false;
                    }
                    let mut targets = summary.wedged.clone();
                    for id in &summary.diverged {
                        if !targets.contains(id) {
                            targets.push(*id);
                        }
                    }
                    for id in targets {
                        let out = cluster.repair_replica(id).expect("repair");
                        if partitioned != Some(id) && !out.converged {
                            let r = cluster.replicas().iter().find(|r| r.id() == id);
                            panic!(
                                "seed {seed:#x}: repair of replica {id}: {out:?}; replica applied={:?} wedged={:?}; primary last={} wm={} epoch={} transport={}",
                                r.map(|r| r.applied()),
                                r.map(|r| r.wedge_reason()),
                                cluster.primary().last_lsn(),
                                cluster.primary().wal().watermark(),
                                cluster.primary().epoch(),
                                cluster.describe_transport(),
                            );
                        }
                    }
                }
                NemesisEvent::Failover => {
                    let mut cluster = handle.lock();
                    let last = cluster.primary().last_lsn();
                    let mut rounds = 0;
                    while cluster.primary().min_acked() < last && rounds < 20_000 {
                        cluster.pump(1);
                        rounds += 1;
                    }
                    assert!(
                        cluster.primary().min_acked() >= last,
                        "seed {seed:#x}: quiesce before failover"
                    );
                    if let Some(target) = cluster.best_failover_candidate() {
                        cluster.promote(target).expect("promotion");
                        assert_eq!(
                            cluster.archive_dir().as_deref(),
                            Some(archive.as_path()),
                            "seed {seed:#x}: archiving survives the failover"
                        );
                    }
                }
                NemesisEvent::Rejoin => {
                    let mut cluster = handle.lock();
                    for node in cluster.deposed_nodes() {
                        let epoch = cluster.primary().epoch();
                        let out = cluster.rejoin(node).expect("rejoin");
                        assert_eq!(out.epoch, epoch, "seed {seed:#x}: rejoined the live epoch");
                        if partitioned != Some(node) {
                            assert!(out.converged, "seed {seed:#x}: rejoin of node {node}");
                        }
                    }
                }
                // A checkpoint seals the WAL into the archive, then the
                // bundle captures the archive plus a signed manifest.
                NemesisEvent::Backup => {
                    let mut cluster = handle.lock();
                    cluster
                        .checkpoint(&bundle.db, &bundle.annotations)
                        .expect("checkpoint before capture");
                    let bdir = dir.join(format!("bundle-{backups_taken}"));
                    let manifest = create_bundle(&BundleSpec {
                        archive_dir: archive.clone(),
                        bundle_dir: bdir.clone(),
                        pages: None,
                        created_seq: backups_taken,
                    })
                    .expect("bundle capture");
                    assert_eq!(
                        manifest.head_lsn,
                        cluster.primary().last_lsn(),
                        "seed {seed:#x}: the bundle covers the live head"
                    );
                    let (pdb, pstore) = cluster.primary().shadow();
                    if let Some((old, _, _)) =
                        captured.replace((bdir, manifest.head_lsn, state_bytes(pdb, pstore)))
                    {
                        let _ = std::fs::remove_dir_all(old);
                    }
                    backups_taken += 1;
                }
                // Rot lands in a sacrificial copy so the pristine bundle
                // stays a valid restore source for the next check.
                NemesisEvent::ArchiveRot => {
                    let (bdir, _, _) =
                        captured.as_ref().expect("the composer orders a Backup first");
                    let scratch = dir.join(format!("rotted-{backups_taken}"));
                    copy_bundle(bdir, &scratch);
                    set_fault_plan(Some(
                        FaultPlan::new(seed ^ 0xA5C1).with_archive_faults(0.0, 1.0, 0.0),
                    ));
                    let damaged = inject_archive_rot(&scratch).expect("archive rot injection");
                    set_fault_plan(None);
                    assert!(!damaged.is_empty(), "seed {seed:#x}: rate-1.0 rot must land");
                    rotted_copy = Some((scratch, damaged));
                }
                NemesisEvent::BackupScrub => {
                    if let Some((scratch, damaged)) = rotted_copy.take() {
                        let report = scrub_bundle(&scratch).expect("scrub the damaged copy");
                        let found: std::collections::BTreeSet<_> =
                            report.corrupt.iter().map(|c| c.path.clone()).collect();
                        let want: std::collections::BTreeSet<_> = damaged.into_iter().collect();
                        assert_eq!(
                            found, want,
                            "seed {seed:#x}: the scrubber finds exactly the injected rot"
                        );
                        assert!(
                            verify_bundle(&scratch).is_err(),
                            "seed {seed:#x}: a restore would refuse the damaged copy"
                        );
                        let _ = std::fs::remove_dir_all(&scratch);
                    }
                    let (bdir, _, _) =
                        captured.as_ref().expect("the composer orders a Backup first");
                    let clean = scrub_bundle(bdir).expect("scrub the pristine bundle");
                    assert!(
                        clean.corrupt.is_empty(),
                        "seed {seed:#x}: zero false positives on the pristine bundle: {:?}",
                        clean.corrupt
                    );
                }
                NemesisEvent::RestoreCheck => {
                    let (bdir, head, want) =
                        captured.as_ref().expect("the composer orders a Backup first");
                    verify_bundle(bdir).expect("manifest verification before restore");
                    let restored = restore_bundle(bdir, None).expect("verified restore");
                    assert_eq!(restored.applied, *head, "seed {seed:#x}: restored to the head");
                    assert_eq!(
                        &state_bytes(&restored.db, &restored.store),
                        want,
                        "seed {seed:#x}: restore is byte-identical to the shadow at lsn {head}"
                    );
                    restores_proven += 1;
                }
                NemesisEvent::ShardPartition { .. }
                | NemesisEvent::ShardHeal { .. }
                | NemesisEvent::ShardBitRot { .. }
                | NemesisEvent::ShardFailover { .. }
                | NemesisEvent::PageRot
                | NemesisEvent::PageFsyncFail
                | NemesisEvent::EvictStorm => {
                    unreachable!("seed {seed:#x}: shard/disk event in a backup schedule")
                }
            }
        }

        assert_eq!(next as u64, OPS, "seed {seed:#x}: the schedule offered every item");
        assert_eq!(
            rot_detections, rot_injections,
            "seed {seed:#x}: every injected WAL rot was caught"
        );
        assert!(backups_taken > 0, "seed {seed:#x}: bundles were captured");
        assert!(restores_proven > 0, "seed {seed:#x}: restores were proven");

        // At rest the cluster converges and the archive still restores.
        drop(nebula.take_mutation_sink());
        let mut cluster = handle.lock();
        let last = cluster.primary().last_lsn();
        let mut rounds = 0;
        while cluster.primary().min_acked() < last && rounds < 20_000 {
            cluster.pump(1);
            rounds += 1;
        }
        assert!(cluster.primary().min_acked() >= last, "seed {seed:#x}: final drain");
        let final_scrub = cluster.scrub();
        assert!(final_scrub.media.is_clean(), "seed {seed:#x}: media clean at rest");

        // One last capture at rest equals the live engine exactly.
        cluster.checkpoint(&bundle.db, &bundle.annotations).expect("final checkpoint");
        let final_dir = dir.join("bundle-final");
        create_bundle(&BundleSpec {
            archive_dir: archive.clone(),
            bundle_dir: final_dir.clone(),
            pages: None,
            created_seq: backups_taken,
        })
        .expect("final capture");
        let restored = restore_bundle(&final_dir, None).expect("final restore");
        assert_eq!(
            state_bytes(&restored.db, &restored.store),
            state_bytes(&bundle.db, &bundle.annotations),
            "seed {seed:#x}: the at-rest bundle restores the live engine byte-for-byte"
        );
        drop(cluster);
        drop(handle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let (backups, arch_rots, bscrubs, checks) = dims;
    assert!(backups > 1, "no bundle captures across the seed suite");
    assert!(arch_rots > 0, "no archive rot across the seed suite");
    assert!(bscrubs > 0, "no backup scrubs across the seed suite");
    assert!(checks > 1, "no restore checks across the seed suite");
}

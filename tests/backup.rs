//! Disaster-recovery acceptance suite: point-in-time restore is proven
//! at **every** record boundary of a hostile 500-record batch, a bundle
//! captured mid-batch under a fixed fault seed restores byte-identically,
//! injected archive rot is fully detected with zero false positives,
//! whole clusters (replicated and sharded) cold-start from one bundle,
//! retention GC never deletes the oldest restorable point, and the
//! checked-in sample bundle guards the on-disk format byte-for-byte.

use nebula::nebula_backup::{
    create_bundle, gc, inject_rot, restore, scrub, verify_bundle, BundleSpec,
};
use nebula::nebula_durable::{
    archive_stats, replay_op, state_digest, wal, Durability, DurabilityOptions, SyncPolicy, WalOp,
};
use nebula::nebula_govern as govern;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The fault seed: `NEBULA_FAULT_SEED` env (hex with `0x` prefix, or
/// decimal), default `0xF00D` — the CI recovery matrix sweeps it.
fn fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-backup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh copy of the bundle's seed store (`AnnotationStore` is not
/// `Clone`; round-trip through the snapshot codec instead).
fn fresh_store(bundle: &DatasetBundle) -> AnnotationStore {
    let bytes = nebula::annostore::snapshot::save(&bundle.annotations);
    nebula::annostore::snapshot::load(&bytes).expect("snapshot round-trip")
}

/// Dataset + engine + a batch of `n` workload annotations (cycled).
fn batch_fixture(seed: u64, n: usize) -> (DatasetBundle, Nebula, Vec<(Annotation, Vec<TupleId>)>) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    nebula.acg_mut().set_stable(true);
    let base: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!base.is_empty());
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = base[i % base.len()];
            (wa.annotation.clone(), vec![wa.ideal[0]])
        })
        .collect();
    (bundle, nebula, items)
}

/// Run `f` with panic output suppressed (injected panics are expected).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Drive the engine under the seeded fault plan (transient query faults
/// and injected panics) until the WAL holds at least `min` records, then
/// hand back the dataset and the exact operation sequence the hostile
/// batch committed.
fn hostile_ops(min: usize) -> (DatasetBundle, Vec<WalOp>) {
    let dir = tmp(&format!("hostile-{min}"));
    let (bundle, mut nebula, items) = batch_fixture(5, 40);
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(
        &dir,
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: None },
    )
    .expect("fresh durability directory");
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(
        govern::FaultPlan::new(fault_seed()).with_query(0.1, true).with_panics(0.02),
    ));
    let mut rounds = 0;
    let ops = loop {
        with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
        rounds += 1;
        assert!(rounds <= 30, "batch never produced {min} WAL records");
        let bytes = std::fs::read(dir.join(wal::WAL_FILE)).expect("wal exists");
        let (records, tail) = wal::read_wal(&bytes);
        assert!(tail.is_clean(), "pipeline faults must not corrupt the log: {tail:?}");
        if records.len() >= min {
            break records.into_iter().map(|r| r.op).collect::<Vec<_>>();
        }
    };
    govern::set_fault_plan(None);
    drop(nebula.take_mutation_sink());
    let _ = std::fs::remove_dir_all(&dir);
    (bundle, ops)
}

/// Replay `ops` through a WAL manager with archiving armed, checkpointing
/// every `ckpt_every` records plus a sealing checkpoint at the end (the
/// `BACKUP TO` discipline), and record the reference digest after every
/// LSN. Returns the digests (index = LSN) and the final replayed state.
fn archived_history(
    root: &Path,
    seed_db: Database,
    seed_store: AnnotationStore,
    ops: &[WalOp],
    ckpt_every: usize,
) -> (Vec<(u32, u32)>, Database, AnnotationStore) {
    let mut db = seed_db;
    let mut store = seed_store;
    let mut mgr = Durability::begin(
        &root.join("wal"),
        &db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: None },
    )
    .expect("fresh durability directory");
    mgr.set_archive(&root.join("archive"), 1).expect("arm archiving");
    let mut digests = vec![state_digest(&db, &store)];
    for (i, op) in ops.iter().enumerate() {
        mgr.append(op).expect("append");
        replay_op(&mut db, &mut store, op).expect("replay");
        digests.push(state_digest(&db, &store));
        if (i + 1) % ckpt_every == 0 {
            mgr.checkpoint(&db, &store).expect("checkpoint");
        }
    }
    mgr.checkpoint(&db, &store).expect("sealing checkpoint");
    (digests, db, store)
}

/// The tentpole acceptance sweep: for a 500-record hostile batch,
/// `RESTORE ... AS OF LSN n` must be byte-identical to a reference
/// engine stopped at `n` — at **every** record boundary the archive
/// covers, zero on up through the head — and one past the head must be
/// a typed refusal, not wrong data.
#[test]
fn restore_as_of_every_lsn_matches_a_stopped_reference() {
    let root = tmp("sweep");
    let (bundle, ops) = hostile_ops(500);
    let n = ops.len() as u64;
    assert!(n >= 500);
    let (digests, db, store) =
        archived_history(&root, Database::new(), fresh_store(&bundle), &ops, 64);

    let bundle_dir = root.join("bundle");
    let manifest = create_bundle(&BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: bundle_dir.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("bundle capture");
    assert_eq!(manifest.head_lsn, n, "the sealing checkpoint puts the head in the bundle");
    assert_eq!(manifest.oldest_lsn, 0, "nothing GC'd: restorable from genesis");

    for target in 0..=n {
        let r = restore(&bundle_dir, Some(target))
            .unwrap_or_else(|e| panic!("restore AS OF LSN {target} failed: {e}"));
        assert_eq!(r.applied, target);
        assert_eq!(
            state_digest(&r.db, &r.store),
            digests[target as usize],
            "restore AS OF LSN {target} diverges from the reference stopped at {target}"
        );
    }

    // No AS OF: the head, equal to the live engine.
    let full = restore(&bundle_dir, None).expect("restore to head");
    assert_eq!(full.applied, n);
    assert_eq!(state_digest(&full.db, &full.store), state_digest(&db, &store));

    // One past the head is a typed refusal.
    assert!(
        matches!(restore(&bundle_dir, Some(n + 1)), Err(BackupError::NotRestorable(_))),
        "an LSN the archive cannot rebuild must be refused"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Fixed fault seed, live engine in the loop: a bundle captured
/// *mid-batch* (checkpoint through the mutation sink, then capture —
/// exactly what `BACKUP TO` does) restores byte-identical to the engine's
/// digest at that moment, even though the batch keeps running and the
/// live state moves on. A second bundle at the end matches the final
/// state, and both bundles stay independently restorable.
#[test]
fn a_mid_batch_bundle_restores_byte_identical_under_a_fixed_fault_seed() {
    let root = tmp("midbatch");
    let (bundle, mut nebula, items) = batch_fixture(11, 60);
    let mut store = fresh_store(&bundle);
    let mut durability = Durability::begin(
        &root.join("wal"),
        &bundle.db,
        &store,
        DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: Some(32) },
    )
    .expect("fresh durability directory");
    durability.set_archive(&root.join("archive"), 1).expect("arm archiving");
    nebula.set_mutation_sink(Some(Box::new(durability)));
    govern::set_fault_plan(Some(
        govern::FaultPlan::new(fault_seed()).with_query(0.1, true).with_panics(0.02),
    ));

    with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items[..30]));
    let sink = nebula.mutation_sink_mut().expect("sink installed");
    let mid_head = sink.checkpoint(&bundle.db, &store).expect("mid-batch sealing checkpoint");
    let mid_digest = state_digest(&bundle.db, &store);
    let mid_bundle = root.join("bundle-mid");
    let manifest = create_bundle(&BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: mid_bundle.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("mid-batch capture");
    assert_eq!(manifest.head_lsn, mid_head);

    with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items[30..]));
    govern::set_fault_plan(None);
    let sink = nebula.mutation_sink_mut().expect("sink installed");
    let final_head = sink.checkpoint(&bundle.db, &store).expect("final sealing checkpoint");
    assert!(final_head > mid_head, "the second half of the batch committed records");
    let final_bundle = root.join("bundle-final");
    create_bundle(&BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: final_bundle.clone(),
        pages: None,
        created_seq: 2,
    })
    .expect("final capture");
    drop(nebula.take_mutation_sink());

    // The mid-batch bundle restores the engine as it was at capture
    // time, not as it is now.
    let mid = restore(&mid_bundle, None).expect("mid bundle restores");
    assert_eq!(mid.applied, mid_head);
    assert_eq!(state_digest(&mid.db, &mid.store), mid_digest, "mid-batch restore diverged");

    // The final bundle restores the live state — and can also rewind to
    // the mid-batch point (true PITR across the batch).
    let fin = restore(&final_bundle, None).expect("final bundle restores");
    assert_eq!(fin.applied, final_head);
    assert_eq!(state_digest(&fin.db, &fin.store), state_digest(&bundle.db, &store));
    let rewound = restore(&final_bundle, Some(mid_head)).expect("PITR to the mid-batch point");
    assert_eq!(state_digest(&rewound.db, &rewound.store), mid_digest);
    let _ = std::fs::remove_dir_all(&root);
}

fn copy_bundle(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("scratch dir");
    for entry in std::fs::read_dir(src).expect("bundle readable") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

/// Seeded at-rest rot across several seeds: the backup scrubber finds
/// **every** damaged file (100% detection), never flags a clean one
/// (zero false positives), verification refuses the rotten bundle before
/// a restore can touch it, and the pristine bundle keeps restoring.
#[test]
fn archive_rot_is_fully_detected_with_zero_false_positives() {
    let root = tmp("rot");
    let (bundle, ops) = hostile_ops(120);
    let (digests, _, _) =
        archived_history(&root, Database::new(), fresh_store(&bundle), &ops[..120], 24);
    let pristine = root.join("bundle");
    create_bundle(&BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: pristine.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("bundle capture");

    // A clean bundle scrubs clean: the detector has no false positives.
    let clean = scrub(&pristine).expect("scrub runs");
    assert!(clean.corrupt.is_empty(), "false positives on a pristine bundle: {:?}", clean.corrupt);
    assert!(clean.manifest_checked && clean.bases_ok > 0 && clean.segments_ok > 0);

    for round in 0..5u64 {
        let rotted = root.join(format!("rotted-{round}"));
        copy_bundle(&pristine, &rotted);
        govern::set_fault_plan(Some(
            govern::FaultPlan::new(fault_seed() ^ (round + 1)).with_archive_faults(0.0, 1.0, 0.0),
        ));
        let damaged = inject_rot(&rotted).expect("rot injection");
        govern::set_fault_plan(None);
        assert!(!damaged.is_empty(), "round {round}: the plan rots every archive file");

        let report = scrub(&rotted).expect("scrub survives rot");
        let found: BTreeSet<PathBuf> = report.corrupt.iter().map(|c| c.path.clone()).collect();
        let want: BTreeSet<PathBuf> = damaged.iter().cloned().collect();
        assert_eq!(found, want, "round {round}: scrub must find exactly the damaged set");
        assert!(
            verify_bundle(&rotted).is_err(),
            "round {round}: verification must refuse a rotten bundle"
        );
        assert!(
            restore(&rotted, None).is_err(),
            "round {round}: a restore must never run over undetected rot"
        );
    }

    // The pristine bundle was never the victim: it still restores.
    let restored = restore(&pristine, None).expect("pristine bundle restores");
    assert_eq!(
        state_digest(&restored.db, &restored.store),
        *digests.last().expect("digests"),
        "the pristine bundle restores the head"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// One bundle seeds everything: a replicated cluster cold-starts from it
/// with every replica byte-identical to the source, keeps replicating
/// past the bundle's head, and a shard cluster boots from the same
/// bundle with all shards converged (scrub finds no divergence).
#[test]
fn clusters_and_shards_seed_from_one_bundle_and_converge() {
    let root = tmp("seed");
    let (bundle, ops) = hostile_ops(80);
    let take = 80.min(ops.len());
    // The archived history covers the real dataset db (annotation ops
    // never mutate it), so the bundle seeds shards that can run the full
    // pipeline against real tables.
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 5);
    let meta = bundle.meta.clone();
    let seed_store = fresh_store(&bundle);
    let (digests, _, store) = archived_history(&root, bundle.db, seed_store, &ops[..take], 16);
    let head = take as u64;
    let bundle_dir = root.join("bundle");
    create_bundle(&BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: bundle_dir.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("bundle capture");

    // Replicated cluster: cold-start, byte-identical, still live.
    let mut cluster = Cluster::seed_from_bundle(
        &bundle_dir,
        &root.join("cluster"),
        2,
        Box::new(SimTransport::reliable(3)),
        ClusterConfig::default(),
    )
    .expect("cluster seeds from the bundle");
    assert_eq!(cluster.primary().last_lsn(), head);
    for r in cluster.replicas() {
        assert_eq!(r.applied(), head);
        assert_eq!(r.digest(), digests[take], "replica {} diverged from the bundle", r.id());
    }
    let next = WalOp::AddAnnotation {
        expected: AnnotationId(store.annotation_count() as u64),
        text: "post-seed annotation".to_string(),
        author: None,
        kind: None,
    };
    cluster.record(&next).expect("the seeded cluster accepts new records");
    cluster.pump(4);
    for r in cluster.replicas() {
        assert_eq!(r.applied(), head + 1, "replication continues past the bundle head");
        assert_eq!(r.digest(), cluster.primary().shadow_digest());
    }

    // Shard cluster: boot from the same bundle, then prove convergence.
    let mut shards = ShardCluster::seed_from_bundle(
        &bundle_dir,
        &meta,
        &NebulaConfig::default(),
        ShardConfig::new(3),
    )
    .expect("shard cluster seeds from the bundle");
    let wa = workload
        .iter()
        .flat_map(|s| &s.annotations)
        .find(|wa| !wa.ideal.is_empty())
        .expect("workload annotation");
    shards.ingest(&wa.annotation, &[wa.ideal[0]]).expect("seeded shards ingest");
    let outcome = shards.scrub().expect("scrub");
    assert_eq!(outcome.checked, 3);
    assert!(outcome.divergent.is_empty(), "seeded shards diverged: {outcome:?}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Retention GC frees superseded archive files but never deletes the
/// oldest restorable point: after a pass keeping two bases, everything
/// from the reported oldest LSN through the head still restores
/// byte-identically, and anything older is a typed refusal.
#[test]
fn retention_gc_never_deletes_the_oldest_restorable_point() {
    let root = tmp("gc");
    let (bundle, ops) = hostile_ops(96);
    let (digests, _, _) =
        archived_history(&root, Database::new(), fresh_store(&bundle), &ops[..96], 12);
    let archive = root.join("archive");
    let before = archive_stats(&archive).expect("stats");
    assert_eq!(before.oldest_restorable_lsn, 0);
    assert!(before.bases >= 8, "the cadence makes bases worth collecting: {before:?}");

    let report = gc(&archive, 2).expect("gc pass");
    assert!(report.removed_bases > 0 && report.bytes_reclaimed > 0, "{report:?}");
    let after = archive_stats(&archive).expect("stats");
    assert_eq!(after.oldest_restorable_lsn, report.oldest_restorable_lsn);
    assert!(after.oldest_restorable_lsn > 0, "GC moved the restorable floor forward");
    assert_eq!(after.newest_lsn, before.newest_lsn, "GC never touches the head");

    let bundle_dir = root.join("bundle");
    let manifest = create_bundle(&BundleSpec {
        archive_dir: archive.clone(),
        bundle_dir: bundle_dir.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("bundle of the GC'd archive");
    assert_eq!(manifest.oldest_lsn, report.oldest_restorable_lsn);

    // Every LSN from the floor through the head still restores exactly.
    for target in [report.oldest_restorable_lsn, report.oldest_restorable_lsn + 1, 96] {
        let r = restore(&bundle_dir, Some(target)).expect("still restorable");
        assert_eq!(r.applied, target);
        assert_eq!(state_digest(&r.db, &r.store), digests[target as usize]);
    }
    // Below the floor is refused, never silently wrong.
    assert!(matches!(
        restore(&bundle_dir, Some(report.oldest_restorable_lsn - 1)),
        Err(BackupError::NotRestorable(_))
    ));
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// The checked-in sample bundle: on-disk format drift guard.
// ---------------------------------------------------------------------------

fn sample_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("samples").join("backup")
}

/// The deterministic state the sample bundle was generated from (no
/// randomness, no timestamps — regeneration is byte-reproducible).
fn sample_state() -> (Database, AnnotationStore, Vec<TupleId>) {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .primary_key("gid")
            .build()
            .expect("schema"),
    )
    .expect("create table");
    let tuples: Vec<TupleId> = [("JW0001", "thrA"), ("JW0002", "thrB"), ("JW0013", "grpC")]
        .iter()
        .map(|(gid, name)| {
            db.insert("gene", vec![Value::text(*gid), Value::text(*name)]).expect("insert")
        })
        .collect();
    let mut store = AnnotationStore::new();
    let a = store.add_annotation(Annotation::new("seed note").by("sample"));
    store.attach(a, AttachmentTarget::tuple(tuples[0])).expect("attach");
    (db, store, tuples)
}

/// The scripted history the sample archives: six records across two
/// sealed segments (a checkpoint after the third record) plus the
/// sealing checkpoint `BACKUP TO` takes.
fn sample_ops(tuples: &[TupleId]) -> Vec<WalOp> {
    vec![
        WalOp::AddAnnotation {
            expected: AnnotationId(1),
            text: "curator remark".to_string(),
            author: Some("alice".to_string()),
            kind: Some("comment".to_string()),
        },
        WalOp::AttachTuple { annotation: AnnotationId(1), tuple: tuples[1] },
        WalOp::AttachPredicted { annotation: AnnotationId(1), tuple: tuples[2], confidence: 0.7 },
        WalOp::AcceptEdge { annotation: AnnotationId(1), tuple: tuples[2] },
        WalOp::AddAnnotation {
            expected: AnnotationId(2),
            text: "second pass".to_string(),
            author: None,
            kind: None,
        },
        WalOp::AttachTuple { annotation: AnnotationId(2), tuple: tuples[0] },
    ]
}

/// Build the sample bundle into `bundle_dir` (scratch WAL and archive in
/// `work`), returning the reference digest at the head.
fn build_sample_bundle(work: &Path, bundle_dir: &Path) -> (u32, u32) {
    let (mut db, mut store, tuples) = sample_state();
    let mut mgr = Durability::begin(
        &work.join("wal"),
        &db,
        &store,
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None },
    )
    .expect("fresh durability directory");
    mgr.set_archive(&work.join("archive"), 1).expect("arm archiving");
    for (i, op) in sample_ops(&tuples).iter().enumerate() {
        mgr.append(op).expect("append");
        replay_op(&mut db, &mut store, op).expect("replay");
        if i == 2 {
            mgr.checkpoint(&db, &store).expect("mid checkpoint");
        }
    }
    mgr.checkpoint(&db, &store).expect("sealing checkpoint");
    create_bundle(&BundleSpec {
        archive_dir: work.join("archive"),
        bundle_dir: bundle_dir.to_path_buf(),
        pages: None,
        created_seq: 1,
    })
    .expect("sample capture");
    state_digest(&db, &store)
}

/// Guards the bundle format: the committed sample (written by an earlier
/// build) must be reproduced **byte-for-byte** by the fixed sequence, and
/// must keep verifying, scrubbing clean, and restoring — at the head and
/// at an interior LSN. If this fails after a codec change, either restore
/// compatibility or bump the magic and regenerate via
/// `regenerate_sample_backup_bundle`.
#[test]
fn checked_in_sample_bundle_is_reproduced_byte_for_byte() {
    let work = tmp("sample-drift");
    let fresh = work.join("bundle");
    let head_digest = build_sample_bundle(&work, &fresh);

    let committed: BTreeSet<String> = std::fs::read_dir(sample_dir())
        .expect("committed sample bundle")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    let rebuilt: BTreeSet<String> = std::fs::read_dir(&fresh)
        .expect("fresh bundle")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(committed, rebuilt, "bundle file set drifted from samples/backup/");
    for name in &committed {
        let want = std::fs::read(sample_dir().join(name)).expect("committed file");
        let got = std::fs::read(fresh.join(name)).expect("fresh file");
        assert_eq!(got, want, "bundle format drifted: `{name}` no longer reproduces byte-for-byte");
    }

    // The committed bundle itself verifies, scrubs clean, and restores.
    verify_bundle(&sample_dir()).expect("committed sample verifies");
    let report = scrub(&sample_dir()).expect("scrub");
    assert!(report.corrupt.is_empty(), "{report:?}");
    let restored = restore(&sample_dir(), None).expect("committed sample restores");
    assert_eq!(restored.applied, 6);
    assert_eq!(state_digest(&restored.db, &restored.store), head_digest);
    // Interior PITR: records 4..6 come off, the curator remark stays.
    let rewound = restore(&sample_dir(), Some(3)).expect("interior restore");
    assert_eq!(rewound.applied, 3);
    assert_eq!(rewound.store.annotation_count(), 2);
    let _ = std::fs::remove_dir_all(&work);
}

/// Regenerates `samples/backup/` deterministically. Ignored in normal
/// runs; invoke by hand after an intentional format change:
/// `cargo test --test backup regenerate_sample -- --ignored`.
#[test]
#[ignore = "rewrites the checked-in sample; run manually after intentional format changes"]
fn regenerate_sample_backup_bundle() {
    let dir = sample_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let work = tmp("sample-regen");
    build_sample_bundle(&work, &dir);
    let _ = std::fs::remove_dir_all(&work);
    // Prove the freshly generated sample satisfies the drift test.
    checked_in_sample_bundle_is_reproduced_byte_for_byte();
}

//! Anti-entropy scrub against seeded bit-rot, end to end.
//!
//! The acceptance bar: the scrubber detects **100% of injected bit-rot
//! before the next checkpoint**. Rot is injected through the governor's
//! seeded `WalRot` / `CheckpointRot` fault sites, so every run is
//! replayable from its seed; detection is the read-only
//! [`nebula_durable::scrub`] CRC pass; and at the cluster level a dirty
//! scrub heals the media by re-checkpointing from the primary's shadow
//! state — after which recovery from the healed directory reproduces the
//! live state byte-for-byte.

use nebula::nebula_durable::wal::WalOp;
use nebula::nebula_durable::{checkpoint, inject_rot, scrub, Durability};
use nebula::nebula_govern::{set_fault_plan, FaultPlan};
use nebula::prelude::*;
use nebula::relstore::Database;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-repair-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("note {n}"),
        author: None,
        kind: None,
    }
}

/// Sweep 16 seeds: each injects one WAL bit-flip and one checkpoint
/// bit-flip at seeded positions, and the very next scrub — no checkpoint
/// in between — must flag both artifacts. 32 injections, 32 detections.
#[test]
fn scrub_detects_every_injected_bit_rot_before_the_next_checkpoint() {
    let mut injected = 0usize;
    let mut detected = 0usize;
    for seed in 0..16u64 {
        let dir = temp_dir(&format!("rot-{seed}"));
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut wal = Durability::begin(&dir, &db, &store, DurabilityOptions::default())
            .expect("fresh durability directory");
        for i in 0..32 {
            wal.append(&op(i)).expect("append");
        }
        assert!(scrub(&dir).expect("scrub").is_clean(), "seed {seed}: clean before injection");

        set_fault_plan(Some(FaultPlan::new(seed).with_bit_rot(1.0, 1.0)));
        let rot = inject_rot(&dir).expect("inject");
        set_fault_plan(None);
        assert!(rot.wal_bit.is_some(), "seed {seed}: WAL site fired at rate 1.0");
        assert!(rot.checkpoint_bit.is_some(), "seed {seed}: checkpoint site fired at rate 1.0");
        injected += 2;

        let report = scrub(&dir).expect("scrub");
        assert!(!report.is_clean(), "seed {seed}: rot went undetected: {report}");
        if report.wal_dropped > 0 || report.wal_reason.is_some() {
            detected += 1;
        }
        detected += report.corrupt_checkpoints.len().min(1);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(detected, injected, "every injected flip is found: {detected}/{injected}");
}

/// Rot that fires against an empty fault plan is a no-op, and a clean
/// directory stays clean under repeated scrubs — no false positives.
#[test]
fn scrub_has_no_false_positives() {
    let dir = temp_dir("clean");
    let db = Database::new();
    let store = AnnotationStore::new();
    let mut wal = Durability::begin(&dir, &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    for i in 0..16 {
        wal.append(&op(i)).expect("append");
    }
    let rot = inject_rot(&dir).expect("inject without a plan");
    assert!(!rot.any(), "no plan, no rot");
    for _ in 0..3 {
        let report = scrub(&dir).expect("scrub");
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.wal_records, 16);
    }
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-stack healing: a cluster whose primary's media catches rot heals
/// it on the next scrub by re-checkpointing from the shadow state, and
/// recovery from the healed directory reproduces the live state
/// byte-for-byte — corruption is caught and repaired *between*
/// checkpoints, never first discovered at recovery.
#[test]
fn cluster_scrub_heals_media_rot_and_recovery_agrees_byte_for_byte() {
    for seed in [0xF00Du64, 0xBAD5EED, 12345] {
        let dir = temp_dir(&format!("heal-{seed}"));
        let mut cluster = Cluster::new(
            &dir,
            &Database::new(),
            &AnnotationStore::new(),
            2,
            Box::new(SimTransport::reliable(3)),
            ClusterConfig::default(),
        )
        .expect("fresh cluster directory");
        for i in 0..24 {
            cluster.record(&op(i)).expect("record");
        }
        let wal_dir = cluster.primary().wal().dir().to_path_buf();

        set_fault_plan(Some(FaultPlan::new(seed).with_bit_rot(1.0, 1.0)));
        let rot = inject_rot(&wal_dir).expect("inject");
        set_fault_plan(None);
        assert!(rot.any(), "seed {seed:#x}: rot landed");

        let summary = cluster.scrub();
        assert!(!summary.media.is_clean(), "seed {seed:#x}: scrub saw the rot");
        assert!(summary.media_healed, "seed {seed:#x}: scrub healed from shadow");
        assert!(cluster.scrub().media.is_clean(), "seed {seed:#x}: healed media scrubs clean");

        // Recovery from the healed directory agrees with the live state.
        let (pdb, pstore) = cluster.primary().shadow();
        let want = checkpoint::encode(0, pdb, pstore);
        drop(cluster);
        let (resumed, recovered) =
            Durability::resume(&wal_dir, DurabilityOptions::default()).expect("resume");
        assert_eq!(
            checkpoint::encode(0, &recovered.db, &recovered.store),
            want,
            "seed {seed:#x}: recovered bytes match the live shadow"
        );
        drop(resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Workspace-level property tests: invariants of the full Stage-1
//! pipeline over arbitrary annotation text on a real (tiny) dataset.

use nebula::nebula_core::{generate_queries, QueryGenConfig};
use nebula::prelude::*;
use proptest::prelude::*;

fn dataset() -> DatasetBundle {
    generate_dataset(&DatasetSpec::tiny(), 99)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Query generation never panics on arbitrary text and always emits
    /// normalized weights with the maximum at exactly 1.0.
    #[test]
    fn querygen_weights_normalized(text in ".{0,300}") {
        let bundle = dataset();
        let queries =
            generate_queries(&bundle.db, &bundle.meta, &text, &QueryGenConfig::default());
        if let Some(max) = queries.iter().map(|q| q.weight).max_by(f64::total_cmp) {
            prop_assert!((max - 1.0).abs() < 1e-9, "max weight normalizes to 1, got {max}");
        }
        for q in &queries {
            prop_assert!(q.weight > 0.0 && q.weight <= 1.0 + 1e-9);
            prop_assert!(!q.keywords.is_empty());
            prop_assert!(q.positions.len() == q.keywords.len());
            prop_assert!((1..=3).contains(&q.match_type));
        }
    }

    /// Dedup: no two generated queries share the same keyword multiset.
    #[test]
    fn querygen_no_duplicates(text in "(gene|protein|JW[0-9]{4}| |[a-z]{2,6}){0,40}") {
        let bundle = dataset();
        let queries =
            generate_queries(&bundle.db, &bundle.meta, &text, &QueryGenConfig::default());
        let mut keys: Vec<Vec<String>> = queries
            .iter()
            .map(|q| {
                let mut k: Vec<String> = q.keywords.iter().map(|w| w.to_lowercase()).collect();
                k.sort();
                k
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(before, keys.len());
    }

    /// Tightening ε can only reduce the number of generated queries.
    #[test]
    fn epsilon_monotone(text in "(gene |JW[0-9]{4} |[a-z]{3,7} ){0,30}") {
        let bundle = dataset();
        let count = |eps: f64| {
            generate_queries(
                &bundle.db,
                &bundle.meta,
                &text,
                &QueryGenConfig { epsilon: eps, ..Default::default() },
            )
            .len()
        };
        let loose = count(0.4);
        let mid = count(0.6);
        let tight = count(0.8);
        prop_assert!(loose >= mid, "ε=0.4 ⊇ ε=0.6 ({loose} vs {mid})");
        prop_assert!(mid >= tight, "ε=0.6 ⊇ ε=0.8 ({mid} vs {tight})");
    }

    /// The shell rejects or executes arbitrary input without ever
    /// panicking, and stays usable afterwards.
    #[test]
    fn shell_never_panics(lines in proptest::collection::vec(".{0,80}", 1..6)) {
        let mut sh = nebula::Shell::with_dataset(&DatasetSpec::tiny(), 7);
        for line in &lines {
            let _ = sh.exec(line);
        }
        prop_assert!(sh.exec("TABLES").is_ok(), "shell still functional");
    }

    /// Shell SELECT grammar: any combination of valid clauses parses and
    /// executes.
    #[test]
    fn shell_select_grammar(
        limit in 1usize..50,
        with_where in any::<bool>(),
        with_order in any::<bool>(),
        desc in any::<bool>(),
    ) {
        let mut sh = nebula::Shell::with_dataset(&DatasetSpec::tiny(), 7);
        let mut cmd = String::from("SELECT gene COLUMNS gid,length");
        if with_where {
            cmd.push_str(" WHERE family = 'F1'");
        }
        if with_order {
            cmd.push_str(" ORDER BY length");
            cmd.push_str(if desc { " DESC" } else { " ASC" });
        }
        cmd.push_str(&format!(" LIMIT {limit}"));
        let out = sh.exec(&cmd).unwrap();
        prop_assert!(out.starts_with("gid | length"), "{out}");
        prop_assert!(out.lines().count() <= limit + 2);
    }

    /// Snapshot decoders are total over truncation: every proper prefix
    /// of a valid encoding returns `Err` — no panic, no partial state.
    #[test]
    fn snapshot_truncations_error_cleanly(cut_seed in 0usize..10_000, relational in any::<bool>()) {
        let bundle = dataset();
        if relational {
            let bytes = nebula::relstore::snapshot::save(&bundle.db);
            let cut = cut_seed % bytes.len();
            prop_assert!(nebula::relstore::snapshot::load(&bytes[..cut]).is_err(), "cut={cut}");
        } else {
            let bytes = nebula::annostore::snapshot::save(&bundle.annotations);
            let cut = cut_seed % bytes.len();
            prop_assert!(nebula::annostore::snapshot::load(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    /// Snapshot decoders never panic on bit-flipped encodings. A flip may
    /// land in string or float payload and still decode — the property is
    /// totality, not rejection — but length-carrying fields must fail
    /// cleanly rather than drive allocation or out-of-bounds reads.
    #[test]
    fn snapshot_bit_flips_never_panic(
        pos_seed in 0usize..100_000,
        bit in 0u32..8,
        relational in any::<bool>(),
    ) {
        let bundle = dataset();
        if relational {
            let mut bytes = nebula::relstore::snapshot::save(&bundle.db).to_vec();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= 1 << bit;
            let _ = nebula::relstore::snapshot::load(&bytes);
        } else {
            let mut bytes = nebula::annostore::snapshot::save(&bundle.annotations).to_vec();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= 1 << bit;
            let _ = nebula::annostore::snapshot::load(&bytes);
        }
    }

    /// The WAL reader is total over arbitrary bytes: it never panics, its
    /// valid/dropped accounting covers the buffer, and a garbage
    /// checkpoint image fails recovery cleanly.
    #[test]
    fn wal_reader_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (records, tail) = nebula::nebula_durable::wal::read_wal(&bytes);
        prop_assert_eq!(records.len(), tail.valid_records);
        prop_assert!(tail.valid_bytes <= bytes.len());
        prop_assert_eq!(tail.valid_bytes + tail.dropped_bytes, bytes.len());
        if !bytes.is_empty() {
            prop_assert!(nebula::nebula_durable::recover_from_bytes(Some(&bytes), &[]).is_err());
        }
    }

    /// The full process_annotation pipeline never panics on hostile text
    /// and its routing partitions the candidates.
    #[test]
    fn process_annotation_total(text in ".{0,200}") {
        let mut bundle = dataset();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        let focal = vec![bundle.gene_tuples[0]];
        let out = nebula
            .process_annotation(&bundle.db, &mut bundle.annotations, &Annotation::new(text), &focal)
            .unwrap();
        prop_assert_eq!(
            out.accepted.len() + out.pending.len() + out.rejected.len(),
            out.candidates.len()
        );
        for c in &out.candidates {
            prop_assert!(c.confidence > 0.0 && c.confidence <= 1.0);
            prop_assert!(!focal.contains(&c.tuple), "focal never re-predicted");
        }
    }

    /// Shard assignment is a pure function of (key, shard count): two
    /// routers built for the same count agree on every tuple, the result
    /// is within range, and it is insensitive to construction order.
    #[test]
    fn shard_routing_is_pure(
        table in 0u32..8,
        row in 0u64..100_000,
        shards in 1usize..=nebula::nebula_ingest::SLOTS,
    ) {
        use nebula::nebula_ingest::{slot_of, ShardRouter};
        let tuple = TupleId { table: relstore::TableId(table), row };
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        let shard = a.route_tuple(tuple);
        prop_assert!(shard < shards, "assignment in range");
        prop_assert_eq!(shard, b.route_tuple(tuple), "same (key, count) => same shard");
        prop_assert_eq!(shard, a.shard_of_slot(slot_of(tuple)), "routes through the slot map");
        // The focal router follows the first focal tuple.
        prop_assert_eq!(a.route(&[tuple]), shard);
        prop_assert_eq!(a.route(&[]), 0, "empty focal pins shard 0");
    }

    /// Rebalancing from N to M shards moves exactly the keys whose hash
    /// slot changed owner — every other tuple stays put.
    #[test]
    fn rebalancing_moves_only_remapped_slots(
        rows in proptest::collection::vec((0u32..8, 0u64..100_000), 1..64),
        from in 1usize..=16,
        to in 1usize..=16,
    ) {
        use nebula::nebula_ingest::{slot_of, ShardRouter};
        let old = ShardRouter::new(from);
        let (new, moved_slots) = old.rebalance(to);
        prop_assert_eq!(new.shards(), to.min(nebula::nebula_ingest::SLOTS));
        for (table, row) in rows {
            let tuple = TupleId { table: relstore::TableId(table), row };
            let slot = slot_of(tuple);
            let before = old.route_tuple(tuple);
            let after = new.route_tuple(tuple);
            if moved_slots.contains(&slot) {
                prop_assert_ne!(before, after, "a moved slot changed owner");
            } else {
                prop_assert_eq!(before, after, "an unmoved slot kept its owner");
            }
        }
    }
    /// The page-file header decoder is total over arbitrary page bytes:
    /// hostile images are rejected cleanly, a sealed legitimate header
    /// roundtrips, and reseal-after-tamper still trips the field checks.
    #[test]
    fn page_header_codec_total_on_hostile_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        page_count in any::<u32>(),
        watermark in any::<u64>(),
    ) {
        use nebula::nebula_pagestore::page;
        // Arbitrary prefix splatted over a zeroed page: decode must never
        // panic (the CRC gate rejects virtually everything).
        let mut hostile = [0u8; nebula::nebula_pagestore::PAGE_SIZE];
        hostile[..bytes.len()].copy_from_slice(&bytes);
        let _ = page::decode_header_page(&hostile);
        // A legitimate header roundtrips exactly.
        let good = page::encode_header_page(page_count, watermark);
        prop_assert_eq!(page::decode_header_page(&good).unwrap(), (page_count, watermark));
        // Resealing a tampered copy defeats the CRC but not the field
        // validation: a wrong magic byte still fails.
        let mut tampered = good.clone();
        tampered[page::HEADER_SIZE] ^= 0xFF;
        page::seal(&mut tampered);
        prop_assert!(page::decode_header_page(&tampered).is_err());
    }

    /// The slotted layout is total over arbitrary page bytes (reads,
    /// counts, and free-space accounting never panic) and on a real page
    /// every accepted insert reads back exactly, with `fits` and
    /// `free_bytes` agreeing on the next record.
    #[test]
    fn slotted_heap_total_and_roundtrips(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..24),
    ) {
        use nebula::nebula_pagestore::{slotted, PAGE_SIZE};
        // Hostile bytes: every read-only entry point is total.
        let mut hostile = [0u8; PAGE_SIZE];
        hostile[..garbage.len()].copy_from_slice(&garbage);
        let _ = slotted::slot_count(&hostile);
        let _ = slotted::free_bytes(&hostile);
        for slot in 0..slotted::slot_count(&hostile).min(64) {
            let _ = slotted::read(&hostile, slot);
        }
        // Real page: inserts roundtrip and the space accounting is exact.
        let mut page = [0u8; PAGE_SIZE];
        slotted::init(&mut page);
        let mut stored: Vec<(usize, Vec<u8>)> = Vec::new();
        for rec in &records {
            let fits = slotted::fits(&page, rec.len());
            prop_assert_eq!(
                fits,
                rec.len() <= slotted::free_bytes(&page),
                "fits() and free_bytes() must agree"
            );
            match slotted::insert(&mut page, rec) {
                Some(slot) => {
                    prop_assert!(fits, "insert succeeded where fits() said no");
                    stored.push((slot, rec.clone()));
                }
                None => prop_assert!(!fits, "insert failed where fits() said yes"),
            }
        }
        for (slot, rec) in &stored {
            prop_assert_eq!(slotted::read(&page, *slot), Some(rec.as_slice()));
        }
    }

    /// The delta-compressed posting-block codec roundtrips arbitrary
    /// postings exactly and is total over garbage bytes.
    #[test]
    fn posting_block_codec_roundtrips_and_rejects_garbage(
        rows in proptest::collection::vec((0u32..512, 0u32..128, any::<u64>()), 0..64),
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        use nebula::relstore::storage::{decode_posting_block, encode_posting_block};
        use nebula::relstore::{ColumnId, Posting, TableId};
        let postings: Vec<Posting> = rows
            .iter()
            .map(|&(t, c, row)| Posting {
                table: TableId(t),
                column: ColumnId(c),
                tuple: TupleId::new(TableId(t), row),
            })
            .collect();
        let block = encode_posting_block(&postings);
        prop_assert_eq!(decode_posting_block(&block).unwrap(), postings);
        let _ = decode_posting_block(&garbage); // total: never panics
    }

    /// The opaque row codec roundtrips every value shape and fails
    /// cleanly (never panics) on truncations and garbage.
    #[test]
    fn row_codec_roundtrips_and_rejects_garbage(
        ints in proptest::collection::vec(any::<i64>(), 0..6),
        text in ".{0,40}",
        garbage in proptest::collection::vec(any::<u8>(), 0..96),
        arity in 0usize..8,
    ) {
        use nebula::relstore::storage::{decode_row, encode_row};
        let mut row: Vec<Value> = ints.iter().map(|&i| Value::Int(i)).collect();
        row.push(Value::text(text));
        row.push(Value::Null);
        let bytes = encode_row(&row);
        prop_assert_eq!(decode_row(&bytes, row.len()).unwrap(), row.clone());
        // Wrong arity and truncation fail cleanly.
        prop_assert!(decode_row(&bytes, row.len() + 1).is_err());
        if bytes.len() > 1 {
            let _ = decode_row(&bytes[..bytes.len() - 1], row.len());
        }
        let _ = decode_row(&garbage, arity); // total: never panics
    }

}

//! Cross-crate integration: the full proactive pipeline over a synthetic
//! dataset, measured with the paper's own quality metrics.

use nebula::annostore::{EdgeSet, GraphQuality};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;

fn pipeline_setup() -> (DatasetBundle, Vec<nebula::nebula_workload::WorkloadSet>) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), 2024);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 2024);
    (bundle, workload)
}

/// Processing a workload of new annotations must reduce the database's
/// false-negative ratio (Equation 1) relative to leaving them with only
/// their focal attachment.
#[test]
fn nebula_reduces_database_false_negatives() {
    let (mut bundle, workload) = pipeline_setup();
    let mut nebula = Nebula::new(
        NebulaConfig { bounds: VerificationBounds::new(0.3, 0.8), ..Default::default() },
        bundle.meta.clone(),
    );
    nebula.bootstrap_acg(&bundle.annotations);

    // Ideal edges of the workload (what a complete database would have).
    let mut ideal = EdgeSet::new();
    let mut passive = EdgeSet::new();

    for wa in workload.iter().flat_map(|s| &s.annotations) {
        let focal = vec![wa.ideal[0]];
        let outcome = nebula
            .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &focal)
            .expect("pipeline runs");
        for t in &wa.ideal {
            ideal.insert(outcome.annotation, *t);
        }
        // The passive engine would only have the focal edge.
        passive.insert(outcome.annotation, focal[0]);
        // Simulated expert: resolve pending tasks with the ground truth.
        for vid in &outcome.pending {
            let task = nebula.queue().get(*vid).expect("queued").clone();
            nebula
                .resolve_task(&mut bundle.annotations, *vid, wa.ideal.contains(&task.tuple))
                .expect("resolvable");
        }
    }

    // Evaluate F_N of the final edge set against the workload's ideal
    // edges (edges of pre-existing dataset annotations are not in `ideal`
    // and cannot affect the false-negative ratio).
    let with_nebula = GraphQuality::evaluate(&bundle.annotations.true_edge_set(), &ideal);
    let without = GraphQuality::evaluate(&passive, &ideal);
    assert!(
        with_nebula.false_negative_ratio < without.false_negative_ratio,
        "Nebula must recover missing attachments: {} vs {}",
        with_nebula.false_negative_ratio,
        without.false_negative_ratio
    );
    assert!(with_nebula.false_negative_ratio < 0.5, "most references recovered");
}

/// Auto-accepted attachments appear as true edges; rejected predictions
/// leave no trace; pending ones stay predicted until resolved.
#[test]
fn edge_lifecycle_matches_routing() {
    let (mut bundle, workload) = pipeline_setup();
    let mut nebula = Nebula::new(
        NebulaConfig { bounds: VerificationBounds::new(0.4, 0.75), ..Default::default() },
        bundle.meta.clone(),
    );
    nebula.bootstrap_acg(&bundle.annotations);

    let wa = &workload[3].annotations[0]; // L^1000, richest text
    let focal = vec![wa.ideal[0]];
    let outcome = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &focal)
        .expect("pipeline runs");

    use nebula::annostore::EdgeKind;
    for (t, _) in &outcome.accepted {
        let e = bundle.annotations.edge(outcome.annotation, *t).expect("edge exists");
        assert_eq!(e.kind, EdgeKind::True);
        assert_eq!(e.weight, 1.0);
    }
    for vid in &outcome.pending {
        let task = nebula.queue().get(*vid).expect("queued");
        let e =
            bundle.annotations.edge(outcome.annotation, task.tuple).expect("predicted edge exists");
        assert_eq!(e.kind, EdgeKind::Predicted);
        assert!((e.weight - task.confidence).abs() < 1e-9);
    }
    for (t, _) in &outcome.rejected {
        assert!(
            bundle.annotations.edge(outcome.annotation, *t).is_none(),
            "auto-rejected predictions leave no edge"
        );
    }
}

/// Rejecting a pending task discards the predicted edge; accepting
/// promotes it and updates the ACG.
#[test]
fn expert_resolution_updates_state() {
    let (mut bundle, workload) = pipeline_setup();
    let mut nebula = Nebula::new(
        NebulaConfig {
            bounds: VerificationBounds::new(0.0, 1.0), // everything pending
            ..Default::default()
        },
        bundle.meta.clone(),
    );
    nebula.bootstrap_acg(&bundle.annotations);

    let wa = workload
        .iter()
        .flat_map(|s| &s.annotations)
        .find(|wa| wa.ideal.len() >= 3)
        .expect("a multi-reference annotation exists");
    let focal = vec![wa.ideal[0]];
    let outcome = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &focal)
        .expect("pipeline runs");
    assert!(outcome.pending.len() >= 2, "bounds (0,1) queue everything");

    let accept_vid = outcome.pending[0];
    let reject_vid = outcome.pending[1];
    let accepted =
        nebula.resolve_task(&mut bundle.annotations, accept_vid, true).expect("accept works");
    assert!(bundle.annotations.focal(outcome.annotation).contains(&accepted.tuple));
    assert!(
        nebula.acg().edge_weight(focal[0], accepted.tuple).is_some(),
        "ACG gains the edge between focal and the verified tuple"
    );

    let rejected =
        nebula.resolve_task(&mut bundle.annotations, reject_vid, false).expect("reject works");
    assert!(bundle.annotations.edge(outcome.annotation, rejected.tuple).is_none());
    assert!(nebula.queue().get(accept_vid).is_none(), "resolved tasks leave the queue");
}

/// The curator can drive resolution through the extended SQL command of
/// §7, including error cases.
#[test]
fn extended_sql_command_round_trip() {
    let (mut bundle, workload) = pipeline_setup();
    let mut nebula = Nebula::new(
        NebulaConfig { bounds: VerificationBounds::new(0.0, 1.0), ..Default::default() },
        bundle.meta.clone(),
    );
    let wa = &workload[2].annotations[0];
    let outcome = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &[wa.ideal[0]])
        .expect("pipeline runs");
    if let Some(vid) = outcome.pending.first() {
        nebula
            .execute_command(&mut bundle.annotations, &format!("VERIFY ATTACHMENT {vid}"))
            .expect("verify parses and applies");
        assert!(
            nebula
                .execute_command(&mut bundle.annotations, &format!("REJECT ATTACHMENT {vid}"))
                .is_err(),
            "double-resolving fails"
        );
    }
    assert!(nebula.execute_command(&mut bundle.annotations, "DROP TABLE gene").is_err());
}

//! Fault-injection integration suite: every injected fault site either
//! recovers (retry or scan fallback) or surfaces as a quarantined
//! annotation with matching telemetry — and batch ingest never aborts.
//!
//! The tests share one process, and telemetry counters are global, so
//! every test serializes on `GUARD` and asserts on counter *deltas*.

use nebula::nebula_govern as govern;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test (some tests exercise injected panics) must not
    // poison the suite.
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh copy of the bundle's seed store (`AnnotationStore` is not
/// `Clone`; round-trip through the snapshot codec instead).
fn fresh_store(bundle: &DatasetBundle) -> AnnotationStore {
    let bytes = nebula::annostore::snapshot::save(&bundle.annotations);
    nebula::annostore::snapshot::load(&bytes).expect("snapshot round-trip")
}

/// Dataset + engine + a batch of `n` workload annotations (cycled).
fn batch_fixture(
    seed: u64,
    n: usize,
    config: NebulaConfig,
) -> (DatasetBundle, Nebula, Vec<(Annotation, Vec<TupleId>)>) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(config, bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    nebula.acg_mut().set_stable(true);
    let base: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!base.is_empty());
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = base[i % base.len()];
            (wa.annotation.clone(), vec![wa.ideal[0]])
        })
        .collect();
    (bundle, nebula, items)
}

/// Run `f` with panic output suppressed (injected panics are expected).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The tentpole acceptance scenario: a 500-annotation batch under a tight
/// budget and a hostile seeded fault plan (panics on) completes without
/// aborting; every annotation lands in exactly one terminal state and the
/// telemetry counters agree with the report.
#[test]
fn hostile_500_batch_completes_with_full_accounting() {
    let _g = lock();
    let config = NebulaConfig {
        bounds: VerificationBounds::new(0.4, 0.85),
        budget: ExecutionBudget::unbounded()
            .with_max_tuples(300)
            .with_max_configurations(8)
            .with_max_candidates(8),
        ..Default::default()
    };
    let (bundle, mut nebula, items) = batch_fixture(41, 500, config);
    let mut store = fresh_store(&bundle);

    nebula::nebula_obs::set_enabled(true);
    let baseline = nebula::nebula_obs::snapshot();
    govern::set_fault_plan(Some(FaultPlan::hostile(0xF00D).with_panics(0.02)));
    let report = with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    let diff = nebula::nebula_obs::snapshot().diff(&baseline);
    nebula::nebula_obs::set_enabled(false);

    assert_eq!(report.total(), 500, "no annotation lost");
    assert_eq!(
        report.accepted + report.pending + report.rejected + report.degraded + report.quarantined,
        500,
        "every annotation ends in exactly one of the five states"
    );
    assert_eq!(
        report.entries.iter().filter(|e| e.quarantine.is_some()).count(),
        report.quarantined,
        "quarantine reasons present iff quarantined"
    );
    // Hostile query faults exhaust retries → quarantines, with retries
    // recorded both thread-locally and in the obs counters.
    assert!(report.quarantined > 0);
    assert!(stats.retries > 0);
    assert!(stats.query_errors > 0);
    assert_eq!(
        diff.counters.get("core.quarantined").copied().unwrap_or(0),
        report.quarantined as u64
    );
    assert_eq!(diff.counters.get("govern.retries").copied().unwrap_or(0), stats.retries);
    assert!(
        diff.counters.get("govern.faults_injected").copied().unwrap_or(0) >= stats.query_errors
    );
}

/// With a moderate transient fault rate, some annotations recover via
/// retry (succeeding after a failed attempt) and none abort the batch.
#[test]
fn transient_faults_recover_via_bounded_retry() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(42, 60, NebulaConfig::default());
    let mut store = fresh_store(&bundle);

    govern::set_fault_plan(Some(FaultPlan::new(7).with_query(0.3, true)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert_eq!(report.total(), 60);
    assert!(stats.query_errors > 0, "the plan fired");
    assert!(stats.retries > 0, "transient faults were retried");
    assert!(
        report.quarantined < report.total(),
        "retries recovered at least part of the batch: {report:?}"
    );
    for e in &report.entries {
        if let Some(QuarantineReason::Error(err)) = &e.quarantine {
            assert!(
                matches!(err, NebulaError::Fault { attempts, .. } if *attempts == 3),
                "quarantined only after exhausting all attempts: {err:?}"
            );
        }
    }
}

/// Index-probe failures are always absorbed: the executors fall back to a
/// scan and produce byte-identical candidates.
#[test]
fn index_probe_failures_degrade_to_identical_candidates() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(43, 10, NebulaConfig::default());

    let mut store_a = fresh_store(&bundle);
    let clean = nebula.process_batch(&bundle.db, &mut store_a, &items);

    let (_, mut nebula_b, _) = batch_fixture(43, 10, NebulaConfig::default());
    let mut store_b = fresh_store(&bundle);
    govern::set_fault_plan(Some(FaultPlan::new(11).with_index_probe(1.0)));
    let probed = nebula_b.process_batch(&bundle.db, &mut store_b, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert!(stats.index_probe_failures > 0, "the probe site fired");
    assert_eq!(stats.index_probe_failures, stats.recovered, "every probe failure was absorbed");
    assert_eq!(probed.quarantined, 0);
    for (a, b) in clean.entries.iter().zip(&probed.entries) {
        let ca: Vec<_> =
            a.outcome.as_ref().expect("clean").candidates.iter().map(|c| c.tuple).collect();
        let cb: Vec<_> =
            b.outcome.as_ref().expect("probed").candidates.iter().map(|c| c.tuple).collect();
        assert_eq!(ca, cb, "scan fallback must not change results");
    }
}

/// Injected panics at stage boundaries are contained per annotation: the
/// poisoned annotation is quarantined with the panic message and the rest
/// of the batch continues.
#[test]
fn injected_panics_are_contained_per_annotation() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(44, 8, NebulaConfig::default());
    let mut store = fresh_store(&bundle);

    govern::set_fault_plan(Some(FaultPlan::new(3).with_panics(1.0)));
    let report = with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert_eq!(report.total(), 8, "the batch never aborts");
    assert_eq!(report.quarantined, 8, "every annotation hit the injected panic");
    assert_eq!(stats.panics, 8);
    for e in &report.entries {
        match &e.quarantine {
            Some(QuarantineReason::Panic(msg)) => {
                assert!(msg.contains("injected panic"), "{msg}");
            }
            other => panic!("expected a panic quarantine, got {other:?}"),
        }
    }
    // The engine is still usable afterwards.
    let mut follow_up = fresh_store(&bundle);
    let clean = nebula.process_batch(&bundle.db, &mut follow_up, &items[..2]);
    assert_eq!(clean.quarantined, 0);
}

/// A budget trip on the full search degrades to focal-spreading (recorded
/// as a `FocalFallback`) rather than failing the annotation.
#[test]
fn budget_trips_degrade_to_focal_fallback() {
    let _g = lock();
    let config = NebulaConfig {
        budget: ExecutionBudget::unbounded().with_max_tuples(5),
        ..Default::default()
    };
    let (bundle, mut nebula, items) = batch_fixture(45, 20, config);
    let mut store = fresh_store(&bundle);
    let report = nebula.process_batch(&bundle.db, &mut store, &items);

    assert_eq!(report.quarantined, 0, "budget trips never quarantine");
    assert!(report.degraded > 0, "the tight budget forced degradations");
    let fallbacks = report
        .entries
        .iter()
        .filter_map(|e| e.outcome.as_ref())
        .flat_map(|o| &o.degradations)
        .filter(|d| matches!(d, Degradation::FocalFallback { .. }))
        .count();
    assert!(fallbacks > 0, "full-search trips fell back to focal mode");
}

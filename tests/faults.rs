//! Fault-injection integration suite: every injected fault site either
//! recovers (retry or scan fallback) or surfaces as a quarantined
//! annotation with matching telemetry — and batch ingest never aborts.
//!
//! The tests share one process, and telemetry counters are global, so
//! every test serializes on `GUARD` and asserts on counter *deltas*.

use nebula::nebula_backup::{create_bundle, restore, verify_bundle, BundleSpec};
use nebula::nebula_durable::{recover, replay_op, state_digest, DurableError, WalOp};
use nebula::nebula_govern as govern;
use nebula::nebula_pagestore::heap::RecordHeap;
use nebula::nebula_pagestore::PageStoreError;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test (some tests exercise injected panics) must not
    // poison the suite.
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh copy of the bundle's seed store (`AnnotationStore` is not
/// `Clone`; round-trip through the snapshot codec instead).
fn fresh_store(bundle: &DatasetBundle) -> AnnotationStore {
    let bytes = nebula::annostore::snapshot::save(&bundle.annotations);
    nebula::annostore::snapshot::load(&bytes).expect("snapshot round-trip")
}

/// Dataset + engine + a batch of `n` workload annotations (cycled).
fn batch_fixture(
    seed: u64,
    n: usize,
    config: NebulaConfig,
) -> (DatasetBundle, Nebula, Vec<(Annotation, Vec<TupleId>)>) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(config, bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    nebula.acg_mut().set_stable(true);
    let base: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!base.is_empty());
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = base[i % base.len()];
            (wa.annotation.clone(), vec![wa.ideal[0]])
        })
        .collect();
    (bundle, nebula, items)
}

/// Run `f` with panic output suppressed (injected panics are expected).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The tentpole acceptance scenario: a 500-annotation batch under a tight
/// budget and a hostile seeded fault plan (panics on) completes without
/// aborting; every annotation lands in exactly one terminal state and the
/// telemetry counters agree with the report.
#[test]
fn hostile_500_batch_completes_with_full_accounting() {
    let _g = lock();
    let config = NebulaConfig {
        bounds: VerificationBounds::new(0.4, 0.85),
        budget: ExecutionBudget::unbounded()
            .with_max_tuples(300)
            .with_max_configurations(8)
            .with_max_candidates(8),
        ..Default::default()
    };
    let (bundle, mut nebula, items) = batch_fixture(41, 500, config);
    let mut store = fresh_store(&bundle);

    nebula::nebula_obs::set_enabled(true);
    let baseline = nebula::nebula_obs::snapshot();
    govern::set_fault_plan(Some(FaultPlan::hostile(0xF00D).with_panics(0.02)));
    let report = with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);
    let diff = nebula::nebula_obs::snapshot().diff(&baseline);
    nebula::nebula_obs::set_enabled(false);

    assert_eq!(report.total(), 500, "no annotation lost");
    assert_eq!(
        report.accepted + report.pending + report.rejected + report.degraded + report.quarantined,
        500,
        "every annotation ends in exactly one of the five states"
    );
    assert_eq!(
        report.entries.iter().filter(|e| e.quarantine.is_some()).count(),
        report.quarantined,
        "quarantine reasons present iff quarantined"
    );
    // Hostile query faults exhaust retries → quarantines, with retries
    // recorded both thread-locally and in the obs counters.
    assert!(report.quarantined > 0);
    assert!(stats.retries > 0);
    assert!(stats.query_errors > 0);
    assert_eq!(
        diff.counters.get("core.quarantined").copied().unwrap_or(0),
        report.quarantined as u64
    );
    assert_eq!(diff.counters.get("govern.retries").copied().unwrap_or(0), stats.retries);
    assert!(
        diff.counters.get("govern.faults_injected").copied().unwrap_or(0) >= stats.query_errors
    );
}

/// With a moderate transient fault rate, some annotations recover via
/// retry (succeeding after a failed attempt) and none abort the batch.
#[test]
fn transient_faults_recover_via_bounded_retry() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(42, 60, NebulaConfig::default());
    let mut store = fresh_store(&bundle);

    govern::set_fault_plan(Some(FaultPlan::new(7).with_query(0.3, true)));
    let report = nebula.process_batch(&bundle.db, &mut store, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert_eq!(report.total(), 60);
    assert!(stats.query_errors > 0, "the plan fired");
    assert!(stats.retries > 0, "transient faults were retried");
    assert!(
        report.quarantined < report.total(),
        "retries recovered at least part of the batch: {report:?}"
    );
    for e in &report.entries {
        if let Some(QuarantineReason::Error(err)) = &e.quarantine {
            assert!(
                matches!(err, NebulaError::Fault { attempts, .. } if *attempts == 3),
                "quarantined only after exhausting all attempts: {err:?}"
            );
        }
    }
}

/// Index-probe failures are always absorbed: the executors fall back to a
/// scan and produce byte-identical candidates.
#[test]
fn index_probe_failures_degrade_to_identical_candidates() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(43, 10, NebulaConfig::default());

    let mut store_a = fresh_store(&bundle);
    let clean = nebula.process_batch(&bundle.db, &mut store_a, &items);

    let (_, mut nebula_b, _) = batch_fixture(43, 10, NebulaConfig::default());
    let mut store_b = fresh_store(&bundle);
    govern::set_fault_plan(Some(FaultPlan::new(11).with_index_probe(1.0)));
    let probed = nebula_b.process_batch(&bundle.db, &mut store_b, &items);
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert!(stats.index_probe_failures > 0, "the probe site fired");
    assert_eq!(stats.index_probe_failures, stats.recovered, "every probe failure was absorbed");
    assert_eq!(probed.quarantined, 0);
    for (a, b) in clean.entries.iter().zip(&probed.entries) {
        let ca: Vec<_> =
            a.outcome.as_ref().expect("clean").candidates.iter().map(|c| c.tuple).collect();
        let cb: Vec<_> =
            b.outcome.as_ref().expect("probed").candidates.iter().map(|c| c.tuple).collect();
        assert_eq!(ca, cb, "scan fallback must not change results");
    }
}

/// Injected panics at stage boundaries are contained per annotation: the
/// poisoned annotation is quarantined with the panic message and the rest
/// of the batch continues.
#[test]
fn injected_panics_are_contained_per_annotation() {
    let _g = lock();
    let (bundle, mut nebula, items) = batch_fixture(44, 8, NebulaConfig::default());
    let mut store = fresh_store(&bundle);

    govern::set_fault_plan(Some(FaultPlan::new(3).with_panics(1.0)));
    let report = with_quiet_panics(|| nebula.process_batch(&bundle.db, &mut store, &items));
    let stats = govern::fault_stats();
    govern::set_fault_plan(None);

    assert_eq!(report.total(), 8, "the batch never aborts");
    assert_eq!(report.quarantined, 8, "every annotation hit the injected panic");
    assert_eq!(stats.panics, 8);
    for e in &report.entries {
        match &e.quarantine {
            Some(QuarantineReason::Panic(msg)) => {
                assert!(msg.contains("injected panic"), "{msg}");
            }
            other => panic!("expected a panic quarantine, got {other:?}"),
        }
    }
    // The engine is still usable afterwards.
    let mut follow_up = fresh_store(&bundle);
    let clean = nebula.process_batch(&bundle.db, &mut follow_up, &items[..2]);
    assert_eq!(clean.quarantined, 0);
}

/// A budget trip on the full search degrades to focal-spreading (recorded
/// as a `FocalFallback`) rather than failing the annotation.
#[test]
fn budget_trips_degrade_to_focal_fallback() {
    let _g = lock();
    let config = NebulaConfig {
        budget: ExecutionBudget::unbounded().with_max_tuples(5),
        ..Default::default()
    };
    let (bundle, mut nebula, items) = batch_fixture(45, 20, config);
    let mut store = fresh_store(&bundle);
    let report = nebula.process_batch(&bundle.db, &mut store, &items);

    assert_eq!(report.quarantined, 0, "budget trips never quarantine");
    assert!(report.degraded > 0, "the tight budget forced degradations");
    let fallbacks = report
        .entries
        .iter()
        .filter_map(|e| e.outcome.as_ref())
        .flat_map(|o| &o.degradations)
        .filter(|d| matches!(d, Degradation::FocalFallback { .. }))
        .count();
    assert!(fallbacks > 0, "full-search trips fell back to focal mode");
}

// ---------------------------------------------------------------------------
// ENOSPC: a full disk degrades every persistence layer to a typed error.
// ---------------------------------------------------------------------------

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn note(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("enospc note {n}"),
        author: None,
        kind: None,
    }
}

/// A full disk surfaces from the WAL as `DurableError::NoSpace`, wedges
/// the log (no append can be trusted until space frees), and a
/// checkpoint — which truncates the log — unwedges it with nothing lost.
#[test]
fn enospc_wedges_the_wal_typed_and_a_checkpoint_unwedges_it() {
    let _g = lock();
    let dir = tmp("wal-enospc");
    let mut db = Database::new();
    let mut store = AnnotationStore::new();
    let mut mgr = Durability::begin(&dir, &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    mgr.append(&note(0)).expect("append before the disk fills");
    replay_op(&mut db, &mut store, &note(0)).expect("replay");

    govern::set_fault_plan(Some(FaultPlan::new(3).with_enospc(1.0)));
    assert!(
        matches!(mgr.append(&note(1)), Err(DurableError::NoSpace(_))),
        "a full disk is a typed error, not a panic"
    );
    assert!(mgr.is_wedged(), "nothing after ENOSPC can be trusted");
    govern::set_fault_plan(None);
    // The wedge is sticky — freeing space alone is not enough.
    assert!(matches!(mgr.append(&note(1)), Err(DurableError::Wedged(_))));

    // A checkpoint truncates the log and restores service.
    mgr.checkpoint(&db, &store).expect("checkpoint over freed space");
    assert!(!mgr.is_wedged());
    mgr.append(&note(1)).expect("appends flow again");
    replay_op(&mut db, &mut store, &note(1)).expect("replay");
    drop(mgr);
    let recovered = recover(&dir).expect("clean recovery");
    assert_eq!(recovered.tail.dropped_records, 0, "ENOSPC persisted no partial record");
    assert_eq!(state_digest(&recovered.db, &recovered.store), state_digest(&db, &store));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full disk aborts a page flush as `PageStoreError::NoSpace` before
/// any byte moves: the old durable image stays intact, the dirty pool
/// survives, and the same flush succeeds once space frees.
#[test]
fn enospc_aborts_a_page_flush_typed_with_the_old_image_intact() {
    let _g = lock();
    let dir = tmp("page-enospc");
    std::fs::create_dir_all(&dir).expect("heap dir");
    let mut heap = RecordHeap::open(&dir, 8).expect("heap");
    let first = heap.insert(b"committed before the disk filled").expect("insert");
    heap.flush(1).expect("flush state A");
    let second = heap.insert(b"caught by the full disk").expect("insert");

    // Page I/O rolls an owned plan (not the thread-local one).
    heap.set_fault_plan(Some(FaultPlan::new(5).with_page_enospc(1.0)));
    assert!(
        matches!(heap.flush(2), Err(PageStoreError::NoSpace)),
        "a full disk is a typed error, not a torn shadow"
    );
    heap.set_fault_plan(None);

    // Space freed: the retried flush commits everything that was dirty.
    heap.flush(2).expect("flush after space freed");
    drop(heap);
    let mut reopened = RecordHeap::open(&dir, 8).expect("reopen");
    assert_eq!(reopened.watermark(), 2);
    assert_eq!(
        reopened.get(first).expect("readable").as_deref(),
        Some(b"committed before the disk filled".as_slice())
    );
    assert_eq!(
        reopened.get(second).expect("readable").as_deref(),
        Some(b"caught by the full disk".as_slice())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full disk aborts a bundle capture as `BackupError::NoSpace` with no
/// manifest written — a half-copied bundle can never pass for a complete
/// one — and the same capture succeeds and restores once space frees.
#[test]
fn enospc_aborts_a_backup_capture_typed_with_no_partial_manifest() {
    let _g = lock();
    let root = tmp("backup-enospc");
    let mut db = Database::new();
    let mut store = AnnotationStore::new();
    let mut mgr = Durability::begin(&root.join("wal"), &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    mgr.set_archive(&root.join("archive"), 1).expect("arm archiving");
    for n in 0..6 {
        mgr.append(&note(n)).expect("append");
        replay_op(&mut db, &mut store, &note(n)).expect("replay");
        if n == 2 {
            mgr.checkpoint(&db, &store).expect("mid checkpoint");
        }
    }
    mgr.checkpoint(&db, &store).expect("sealing checkpoint");

    let spec = BundleSpec {
        archive_dir: root.join("archive"),
        bundle_dir: root.join("bundle"),
        pages: None,
        created_seq: 1,
    };
    govern::set_fault_plan(Some(FaultPlan::new(7).with_enospc(1.0)));
    assert!(
        matches!(create_bundle(&spec), Err(BackupError::NoSpace(_))),
        "a full disk is a typed error, not a silent half-bundle"
    );
    govern::set_fault_plan(None);
    assert!(
        !root.join("bundle").join(nebula::nebula_backup::MANIFEST_FILE).exists(),
        "the aborted capture must not claim completeness with a manifest"
    );
    assert!(verify_bundle(&root.join("bundle")).is_err(), "the half-bundle never verifies");

    // Space freed: the capture completes and restores byte-identically.
    create_bundle(&spec).expect("capture after space freed");
    let restored = restore(&root.join("bundle"), None).expect("restore");
    assert_eq!(restored.applied, 6);
    assert_eq!(state_digest(&restored.db, &restored.store), state_digest(&db, &store));
    let _ = std::fs::remove_dir_all(&root);
}

/// ENOSPC mid-batch through the whole engine: annotations whose commit
/// cannot be logged are quarantined — never half-applied, never aborting
/// the batch — and a checkpoint after space frees restores service.
#[test]
fn enospc_mid_batch_quarantines_and_a_checkpoint_restores_service() {
    let _g = lock();
    let dir = tmp("engine-enospc");
    let (bundle, mut nebula, items) = batch_fixture(44, 24, NebulaConfig::default());
    let mut store = fresh_store(&bundle);
    let durability = Durability::begin(&dir, &bundle.db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    nebula.set_mutation_sink(Some(Box::new(durability)));

    govern::set_fault_plan(Some(FaultPlan::new(11).with_enospc(1.0)));
    let starved = nebula.process_batch(&bundle.db, &mut store, &items[..12]);
    govern::set_fault_plan(None);
    assert_eq!(starved.total(), 12, "the full disk never aborts the batch");
    assert!(starved.quarantined > 0, "unloggable commits are quarantined: {starved:?}");

    // Space freed: a checkpoint unwedges the sink and ingest resumes.
    let sink = nebula.mutation_sink_mut().expect("sink installed");
    sink.checkpoint(&bundle.db, &store).expect("checkpoint over freed space");
    let healed = nebula.process_batch(&bundle.db, &mut store, &items[12..]);
    assert_eq!(healed.quarantined, 0, "service restored after the checkpoint: {healed:?}");
    drop(nebula.take_mutation_sink());

    // Recovery equals the live state: nothing was applied that was not
    // logged, even across the wedge.
    let recovered = recover(&dir).expect("clean recovery");
    assert_eq!(state_digest(&recovered.db, &recovered.store), state_digest(&bundle.db, &store));
    let _ = std::fs::remove_dir_all(&dir);
}

//! Crash-safe paged storage: the acceptance gates for the disk backend.
//!
//! - **Backend parity at any concurrency**: the full proactive pipeline,
//!   run over a database whose rows and postings live in the page file,
//!   produces checkpoint bytes identical to the RAM backend's at worker
//!   counts 1, 2, and 8.
//! - **Crash-point coverage**: a flush torn at every page boundary and
//!   mid-page — during the shadow write *and* during the in-place apply —
//!   recovers to exactly the old or exactly the new image. Never a blend,
//!   never a loss.
//! - **Scrub precision**: every seeded at-rest bit flip is detected with
//!   zero false positives and healed in place.
//! - **Eviction correctness**: a workload larger than the buffer pool
//!   completes under continuous clock-hand eviction with every byte
//!   intact and the `page.*` counters accounting for the churn.
//! - **Format stability**: the checked-in golden page file under
//!   `samples/pages/` must keep reading back, and regenerating it must
//!   reproduce it byte-for-byte (drift guard).

use nebula::nebula_durable::checkpoint;
use nebula::nebula_pagestore::file::CrashPoint;
use nebula::nebula_pagestore::heap::RecordHeap;
use nebula::nebula_pagestore::PAGE_SIZE;
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use nebula::relstore::snapshot;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-storage-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test directory");
    dir
}

/// Run the full proactive pipeline (generation, discovery, routing,
/// ingest pool) against `db` with a freshly regenerated (deterministic)
/// annotation store, and return the canonical checkpoint image.
fn run_pipeline(db: &nebula::relstore::Database, workers: usize) -> Vec<u8> {
    // The same seed regenerates the identical annotation store and
    // workload every call; only `db`'s backend varies between runs.
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), 0x5EED);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 7);
    let items: Vec<IngestItem> = workload
        .iter()
        .flat_map(|s| &s.annotations)
        .filter(|wa| !wa.ideal.is_empty())
        .take(40)
        .map(|wa| IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]))
        .collect();
    assert!(items.len() >= 20, "workload large enough to matter");

    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    let config = IngestConfig::deterministic(workers, items.len());
    let report = ingest_batch(&mut nebula, db, &mut bundle.annotations, &items, &config);
    assert!(report.sheds.is_empty(), "nothing shed under a covering pool");
    assert_eq!(report.batch.total(), items.len(), "every item executed");
    checkpoint::encode(0, db, &bundle.annotations)
}

#[test]
fn paged_pipeline_matches_mem_pipeline_at_every_worker_count() {
    // The RAM baseline, computed once.
    let base = generate_dataset(&DatasetSpec::tiny(), 0x5EED);
    let db_image = snapshot::save(&base.db);
    let mem_bytes = run_pipeline(&base.db, 1);

    for workers in [1usize, 2, 8] {
        let dir = temp_dir(&format!("parity-w{workers}"));
        let store = PagedStorage::open(&dir, 8).expect("paged store");
        // The same database, rehydrated onto the page file: every row and
        // every posting block now reads through the buffer pool.
        let paged_db = snapshot::load_with(&db_image, Some(Arc::new(store.clone())))
            .expect("rehydrate onto pages");
        assert!(paged_db.storage_label().contains("disk"), "rows actually live on disk");
        let paged_bytes = run_pipeline(&paged_db, workers);
        assert_eq!(
            paged_bytes, mem_bytes,
            "workers={workers}: paged checkpoint bytes == mem checkpoint bytes"
        );
        assert_eq!(
            snapshot::fingerprint(&paged_db),
            snapshot::fingerprint(&base.db),
            "workers={workers}: database fingerprints agree"
        );
        // The paged run actually exercised the pool, and the file is
        // durable and clean afterwards.
        let m = store.metrics();
        assert!(m.pool.hits + m.pool.misses > 0, "workers={workers}: reads hit the pool");
        store.flush_pages().expect("final flush");
        assert!(store.scrub().expect("scrub").is_clean(), "workers={workers}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministically build the committed state A (flushed at watermark 1)
/// and the in-pool state B (unflushed), returning both expected images.
type Expected = BTreeMap<u64, Option<Vec<u8>>>;

fn build_two_states(dir: &std::path::Path) -> (RecordHeap, Expected, Expected) {
    // A pool big enough to hold every dirty page: no eviction may force
    // an intermediate commit, so the torn flush is the ONLY commit that
    // could move the file from state A to state B.
    let mut heap = RecordHeap::open(dir, 64).expect("heap");
    let mut ids = Vec::new();
    for i in 0..40u32 {
        let body = if i % 13 == 0 {
            // Overflow chains cross the page boundary the harness tears at.
            format!("overflow {i} {}", "y".repeat(9000)).into_bytes()
        } else {
            format!("record {i} payload {}", "z".repeat((i as usize * 37) % 900)).into_bytes()
        };
        ids.push((heap.insert(&body).expect("insert"), body));
    }
    heap.flush(1).expect("flush state A");
    let state_a: Expected = ids.iter().map(|(id, body)| (*id, Some(body.clone()))).collect();

    // Mutate toward state B: rewrites, deletes, and fresh inserts.
    let mut state_b = state_a.clone();
    for (i, (id, _)) in ids.iter().enumerate().take(12) {
        if i % 3 == 0 {
            assert!(heap.delete(*id).expect("delete"));
            state_b.insert(*id, None);
        } else {
            let body = format!("rewritten {i} {}", "w".repeat(i * 211)).into_bytes();
            let new_id = heap.update(*id, &body).expect("update");
            state_b.insert(*id, None);
            state_b.insert(new_id, Some(body));
        }
    }
    for i in 0..6u32 {
        let body = format!("late insert {i} {}", "v".repeat(2000)).into_bytes();
        let id = heap.insert(&body).expect("late insert");
        state_b.insert(id, Some(body));
    }
    (heap, state_a, state_b)
}

fn assert_heap_matches(heap: &mut RecordHeap, want: &Expected, label: &str) {
    for (id, expect) in want {
        match expect {
            Some(body) => assert_eq!(
                heap.get(*id).expect("readable").as_deref(),
                Some(body.as_slice()),
                "{label}: record {id:#x}"
            ),
            // A deleted/relocated id must never resurrect its old bytes.
            None => {
                if let Some(bytes) = heap.get(*id).expect("readable") {
                    let old = want.values().flatten().any(|b| *b == bytes);
                    assert!(!old, "{label}: dead id {id:#x} resurrected old bytes");
                }
            }
        }
    }
}

#[test]
fn crash_at_every_page_boundary_and_mid_page_recovers_old_or_new_exactly() {
    // Enough cuts to cross every page the batch writes: boundaries,
    // mid-page tears, and the degenerate first bytes.
    let mut cuts: Vec<usize> = vec![0, 1, 7];
    for k in 0..12 {
        cuts.push(k * PAGE_SIZE); // every page boundary
        cuts.push(k * PAGE_SIZE + PAGE_SIZE / 2); // every mid-page tear
        cuts.push(k * PAGE_SIZE + 13); // just past a page header
    }
    cuts.sort_unstable();
    cuts.dedup();

    for &cut in &cuts {
        for phase in ["shadow", "apply"] {
            let dir = temp_dir(&format!("crash-{phase}-{cut}"));
            let (mut heap, state_a, state_b) = build_two_states(&dir);
            let crash = match phase {
                "shadow" => CrashPoint::Shadow(cut),
                _ => CrashPoint::Apply(cut),
            };
            heap.flush_crash(2, crash).expect_err("torn flush must surface");
            drop(heap);

            // "Reboot": open recovers (discarding a torn shadow, or
            // re-driving a committed one), and the file scrubs clean.
            let mut heap = RecordHeap::open(&dir, 64).expect("recovery after torn flush");
            assert!(
                heap.scrub().expect("scrub").is_clean(),
                "{phase} cut {cut}: clean after recovery"
            );
            match phase {
                // Torn before the rename: the commit never happened; the
                // old image survives untouched.
                "shadow" => {
                    assert_eq!(heap.watermark(), 1, "shadow cut {cut}: old watermark");
                    assert_heap_matches(&mut heap, &state_a, &format!("shadow cut {cut}"));
                }
                // Torn mid-apply: the committed shadow is re-driven on
                // open; the new image lands in full.
                _ => {
                    assert_eq!(heap.watermark(), 2, "apply cut {cut}: new watermark");
                    assert_heap_matches(&mut heap, &state_b, &format!("apply cut {cut}"));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn scrub_detects_every_seeded_rot_with_zero_false_positives_and_heals() {
    let dir = temp_dir("scrub-precision");
    let store = PagedStorage::open(&dir, 8).expect("store");
    let mut db = nebula::relstore::Database::with_storage(Arc::new(store.clone()));
    db.create_table(
        nebula::relstore::TableSchema::builder("t")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key("id")
            .build()
            .expect("schema"),
    )
    .expect("table");
    let mut tids = Vec::new();
    for i in 0..200i64 {
        tids.push(
            db.insert("t", vec![Value::Int(i), Value::text(format!("row {i} {}", "p".repeat(64)))])
                .expect("insert"),
        );
    }
    store.flush_pages().expect("flush");
    assert!(store.metrics().page_count > 4);

    for trial in 0..10u64 {
        // Zero false positives: a clean file scrubs clean every time.
        assert!(store.scrub().expect("scrub").is_clean(), "trial {trial}: false positive");
        store.set_fault_plan(Some(FaultPlan::new(0xBEEF ^ trial).with_pages(0.0, 0.0, 0.0, 1.0)));
        let (page, _bit) = store.inject_rot().expect("inject").expect("rate 1.0 fires");
        store.set_fault_plan(None);
        let report = store.scrub().expect("scrub");
        assert_eq!(report.corrupt, vec![page], "trial {trial}: exactly the rotted page");
        let healed = store.repair().expect("repair");
        assert_eq!(healed.repaired, vec![page], "trial {trial}: healed in place");
        assert!(healed.unrecoverable.is_empty(), "trial {trial}");
        assert!(store.scrub().expect("re-scrub").is_clean(), "trial {trial}: clean after heal");
    }
    // The healed store still serves every row byte-correct.
    for (i, tid) in tids.iter().enumerate() {
        let t = db.get(*tid).expect("row survives 10 rot/heal cycles");
        assert_eq!(t.get_by_name("id"), Some(&Value::Int(i as i64)));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workload_larger_than_the_pool_completes_under_eviction() {
    let dir = temp_dir("evict");
    // MIN_FRAMES-sized pool: every miss beyond two pages must evict.
    let store = PagedStorage::open(&dir, 2).expect("store");
    let mut heap_ids = Vec::new();
    let mut db = nebula::relstore::Database::with_storage(Arc::new(store.clone()));
    db.create_table(
        nebula::relstore::TableSchema::builder("wide")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key("id")
            .build()
            .expect("schema"),
    )
    .expect("table");
    for i in 0..300i64 {
        let body = format!("wide row {i} {}", "q".repeat((i as usize * 53) % 1200));
        heap_ids
            .push((db.insert("wide", vec![Value::Int(i), Value::text(body)]).expect("insert"), i));
    }
    // Read everything back twice (forward then reverse) through the
    // 2-frame pool: pure eviction churn, zero data loss.
    for (tid, i) in heap_ids.iter().chain(heap_ids.iter().rev()) {
        let t = db.get(*tid).expect("row readable under eviction");
        assert_eq!(t.get_by_name("id"), Some(&Value::Int(*i)));
    }
    let m = store.metrics();
    assert!(m.page_count > 2, "file outgrew the pool ({} pages)", m.page_count);
    assert!(m.pool.evictions > 0, "the clock hand actually ran");
    assert!(m.pool.misses > 0 && m.pool.hits > 0, "both pool paths exercised");
    store.flush_pages().expect("flush");
    assert!(store.scrub().expect("scrub").is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- golden page file: format drift guard -------------------------------

fn sample_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("samples").join("pages")
}

/// The fixed operation sequence behind the golden file. Every step is
/// deterministic (placement, eviction, flush order), so the bytes on
/// disk are a pure function of this code and the page format.
fn build_golden(dir: &std::path::Path) -> Vec<(u64, Option<Vec<u8>>)> {
    let mut heap = RecordHeap::open(dir, 4).expect("heap");
    let mut expect = Vec::new();
    let mut ids = Vec::new();
    for i in 0..25u32 {
        let body = if i % 7 == 0 {
            format!("golden overflow {i} {}", "g".repeat(5000)).into_bytes()
        } else {
            format!("golden record {i} {}", "n".repeat((i as usize * 91) % 700)).into_bytes()
        };
        ids.push((heap.insert(&body).expect("insert"), body));
    }
    for (i, (id, _)) in ids.iter().enumerate() {
        if i % 5 == 3 {
            assert!(heap.delete(*id).expect("delete"));
            expect.push((*id, None));
        } else if i % 5 == 4 {
            let body = format!("golden rewrite {i}").into_bytes();
            let new_id = heap.update(*id, &body).expect("update");
            expect.push((new_id, Some(body)));
        } else {
            expect.push((*id, Some(ids[i].1.clone())));
        }
    }
    heap.flush(42).expect("flush");
    expect
}

/// Guards the on-disk page format: the committed golden file (written by
/// an earlier build) must keep reading back, and re-running the fixed
/// sequence must reproduce it byte-for-byte. If this fails after a format
/// change, either restore compatibility or bump the page-format version
/// and regenerate via `regenerate_golden_page_file`.
#[test]
fn checked_in_golden_page_file_is_reproduced_byte_for_byte() {
    let golden_path = sample_dir().join(nebula::nebula_pagestore::file::FILE_NAME);
    let golden = std::fs::read(&golden_path).expect("committed golden page file");
    assert!(golden.len() >= 2 * PAGE_SIZE, "golden file holds real pages");

    // Drift guard: the same sequence must produce the same bytes.
    let dir = temp_dir("golden");
    let expect = build_golden(&dir);
    let fresh = std::fs::read(dir.join(nebula::nebula_pagestore::file::FILE_NAME))
        .expect("freshly built file");
    assert_eq!(
        fresh, golden,
        "page format drifted: the fixed sequence no longer reproduces samples/pages/"
    );

    // And the committed file itself still opens, scrubs clean, and
    // serves every record.
    let mut heap = RecordHeap::open(&sample_dir(), 4).expect("golden file opens");
    assert!(heap.scrub().expect("scrub").is_clean());
    assert_eq!(heap.watermark(), 42);
    for (id, want) in &expect {
        match want {
            Some(body) => assert_eq!(
                heap.get(*id).expect("readable").as_deref(),
                Some(body.as_slice()),
                "golden record {id:#x}"
            ),
            None => {
                // Deleted ids must not resurrect their original bytes.
                if let Some(bytes) = heap.get(*id).expect("readable") {
                    assert!(!bytes.starts_with(b"golden record"), "dead id {id:#x} resurrected");
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates `samples/pages/` deterministically. Ignored in normal
/// runs; invoke by hand after an intentional format change:
/// `cargo test --test storage regenerate_golden_page_file -- --ignored`.
#[test]
#[ignore = "rewrites the checked-in sample; run manually after intentional format changes"]
fn regenerate_golden_page_file() {
    let dir = sample_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("sample dir");
    build_golden(&dir);
    // Drop the shadow leftovers: only the page file itself is the format.
    checked_in_golden_page_file_is_reproduced_byte_for_byte();
}

//! Golden trace format: a scripted span tree rendered to structure-only
//! JSON must match the checked-in sample byte for byte.
//!
//! The sample (`samples/traces/pipeline.trace.json`) is what external
//! consumers of `reproduce --traces` and the shell's `TRACE ANNOTATION`
//! parse, so format drift is a compatibility break: either restore the
//! old rendering or regenerate the sample via the ignored test below and
//! call the change out in the PR.

use nebula::nebula_obs::names;
use nebula::nebula_obs::trace;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The trace ring is process-global; serialize the tests that script it.
static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn sample_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("samples/traces/pipeline.trace.json")
}

/// Script two commit traces with the exact label vocabulary the real
/// commit path emits — admission root, queue/turn waits, pipeline and
/// stage spans, WAL append/fsync, replication ship — using fixed
/// annotation ids, epochs, and LSNs so every span ID is a deterministic
/// function of its inputs.
fn build_sample_traces() -> Vec<trace::Trace> {
    trace::set_enabled(true);
    trace::reset();
    for (annotation, lsn) in [(7u64, 3u64), (8, 4)] {
        assert!(trace::start("ingest.item"));
        trace::root_detail("class=Normal");
        trace::wait("ingest.queue_wait", String::new(), 1_500);
        trace::wait("ingest.turn_wait", String::new(), 500);
        {
            let pipeline = trace::span(names::PIPELINE);
            trace::bind(annotation);
            trace::note_epoch(1);
            {
                let s = trace::span(names::STAGE0_REGISTER);
                s.detail("focal=1");
            }
            {
                let s = trace::span(names::STAGE1_QUERYGEN);
                s.detail("queries=4");
            }
            {
                let s = trace::span(names::STAGE2_EXECUTE);
                trace::note_lsn(lsn);
                {
                    let d = trace::span("durable.append");
                    d.detail(format!("lsn={lsn}"));
                }
                drop(trace::span("durable.fsync"));
                {
                    let ship = trace::span("repl.ship");
                    ship.detail("peer=1 records=1");
                }
                s.detail("candidates=5");
            }
            {
                let s = trace::span(names::STAGE3_ROUTE);
                s.detail("accepted=1 pending=0 rejected=4");
            }
            pipeline.detail("accepted=1 pending=0 rejected=4");
        }
        drop(trace::span("durable.checkpoint"));
        trace::finish().expect("scripted trace commits");
    }
    let traces = trace::traces();
    trace::set_enabled(false);
    traces
}

/// Guards the sidecar format: the structure-only rendering of the
/// scripted traces must match the committed sample byte for byte.
#[test]
fn checked_in_golden_trace_matches_the_renderer() {
    let _serial = guard();
    let rendered = trace::render_traces_json(&build_sample_traces(), false);
    let want = std::fs::read_to_string(sample_path())
        .expect("samples/traces/pipeline.trace.json must be checked in");
    assert_eq!(
        rendered, want,
        "trace JSON drifted from the checked-in sample; regenerate via \
         `cargo test --test traces regenerate -- --ignored` if intentional"
    );
}

/// The scripted trees carry the whole commit path and a critical path
/// that starts at the admission root.
#[test]
fn golden_traces_are_rooted_and_analyzable() {
    let _serial = guard();
    let traces = build_sample_traces();
    assert_eq!(traces.len(), 2);
    for t in &traces {
        assert_eq!(t.root().label, "ingest.item");
        let path = t.critical_path();
        assert_eq!(path[0].label, "ingest.item", "critical path starts at the root");
        assert!(path.len() > 1, "the path descends into the tree");
        let tree = t.render_tree();
        for label in
            ["ingest.item", names::PIPELINE, "durable.append", "repl.ship", "critical path ends"]
        {
            assert!(tree.contains(label), "render_tree missing {label}:\n{tree}");
        }
    }
    // Aggregate attribution sees both traces and keeps label order stable.
    let attr = trace::attribution(&traces);
    assert_eq!(attr.traces, 2);
    assert!(attr.dominant().is_some());
}

/// Regenerates `samples/traces/pipeline.trace.json`. Ignored in normal
/// runs; invoke by hand after an intentional format change:
/// `cargo test --test traces regenerate -- --ignored`.
#[test]
#[ignore = "rewrites the checked-in sample; run manually after intentional format changes"]
fn regenerate_golden_trace_sample() {
    let _serial = guard();
    let rendered = trace::render_traces_json(&build_sample_traces(), false);
    let path = sample_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, rendered).unwrap();
    drop(_serial);
    // Prove the freshly generated sample satisfies the drift test.
    checked_in_golden_trace_matches_the_renderer();
}

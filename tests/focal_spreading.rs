//! Integration tests for the focal-based spreading search (§6.3) and the
//! ACG machinery across crates.

use nebula::nebula_core::{
    build_minidb, distort, generate_queries, identify_related_tuples, translate_candidates,
    ExecutionConfig, QueryGenConfig, StabilityConfig,
};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use nebula::textsearch::{ExecutionMode, SearchOptions};

fn setup() -> (DatasetBundle, Vec<nebula::nebula_workload::WorkloadSet>, Acg) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), 77);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 77);
    let mut acg = Acg::build_from_store(&bundle.annotations);
    acg.set_stable(true);
    (bundle, workload, acg)
}

fn engine_for(bundle: &DatasetBundle, db: &Database) -> KeywordSearch {
    KeywordSearch::new(SearchOptions { vocab: bundle.meta.to_vocabulary(db), ..Default::default() })
}

/// Every candidate a focal-spread search finds must also be findable by
/// the full search (the miniDB is a strict subset of the database).
#[test]
fn spread_candidates_subset_of_full_search() {
    let (bundle, workload, acg) = setup();
    let config = QueryGenConfig::default();
    let exec = ExecutionConfig {
        mode: ExecutionMode::Shared,
        acg_adjustment: false,
        ..Default::default()
    };
    for wa in workload.iter().flat_map(|s| &s.annotations).take(12) {
        let (focal, _) = distort(&wa.ideal, 2);
        let queries = generate_queries(&bundle.db, &bundle.meta, &wa.annotation.text, &config);

        let engine = engine_for(&bundle, &bundle.db);
        let (full, _) = identify_related_tuples(&bundle.db, &engine, &queries, &focal, None, &exec)
            .expect("ungoverned search cannot fail");
        let full_set: std::collections::HashSet<TupleId> = full.iter().map(|c| c.tuple).collect();

        let (mini, back) = build_minidb(&bundle.db, &acg, &focal, 3);
        let mini_engine = engine_for(&bundle, &mini);
        let (spread, _) = identify_related_tuples(&mini, &mini_engine, &queries, &[], None, &exec)
            .expect("ungoverned search cannot fail");
        let spread = translate_candidates(spread, &back);
        for c in spread {
            if focal.contains(&c.tuple) {
                continue;
            }
            assert!(
                full_set.contains(&c.tuple),
                "focal-spread found {} that full search missed",
                c.tuple
            );
        }
    }
}

/// Growing K can only grow the miniDB and its candidate set.
#[test]
fn minidb_monotone_in_k() {
    let (bundle, workload, acg) = setup();
    let wa = workload
        .iter()
        .flat_map(|s| &s.annotations)
        .find(|wa| wa.ideal.len() >= 2)
        .expect("multi-link annotation");
    let (focal, _) = distort(&wa.ideal, 1);
    let mut prev = 0usize;
    for k in 0..5 {
        let (mini, _) = build_minidb(&bundle.db, &acg, &focal, k);
        assert!(mini.total_tuples() >= prev, "K={k} shrank the miniDB");
        prev = mini.total_tuples();
    }
}

/// The stability gate of Definition 6.1: a fresh ACG is unstable; replaying
/// the same co-citations long enough stabilizes it, and a burst of novel
/// structure destabilizes it again.
#[test]
fn stability_lifecycle() {
    use nebula::annostore::{AnnotationStore, AttachmentTarget};
    let bundle = generate_dataset(&DatasetSpec::tiny(), 5);
    let mut store = AnnotationStore::new();
    let mut acg = Acg::new(StabilityConfig { batch_size: 4, mu: 0.3 });
    assert!(!acg.is_stable());

    // Repeatedly annotate the same pair: after the first batch every
    // attachment hits an existing edge.
    let (a, b) = (bundle.gene_tuples[0], bundle.gene_tuples[1]);
    for i in 0..8 {
        let aid = store.add_annotation(Annotation::new(format!("note {i}")));
        for t in [a, b] {
            store.attach(aid, AttachmentTarget::tuple(t)).expect("live");
            acg.add_attachment(&store, aid, t);
        }
        acg.record_annotation();
    }
    assert!(acg.is_stable(), "repeated co-citation stabilizes the graph");

    // Novel structure: link previously unconnected tuples.
    for i in 0..4 {
        let aid = store.add_annotation(Annotation::new(format!("novel {i}")));
        let (x, y) = (bundle.gene_tuples[10 + 2 * i], bundle.gene_tuples[11 + 2 * i]);
        for t in [x, y] {
            store.attach(aid, AttachmentTarget::tuple(t)).expect("live");
            acg.add_attachment(&store, aid, t);
        }
        acg.record_annotation();
    }
    assert!(!acg.is_stable(), "novel edges destabilize the graph");
}

/// The engine only engages focal spreading once the ACG is stable (when
/// `require_stable` is on), and records hop distances for accepted
/// attachments so `FocalSpreadAuto` can pick K.
#[test]
fn engine_gates_spreading_on_stability() {
    let (mut bundle, workload, acg) = setup();
    let mut nebula = Nebula::new(
        NebulaConfig {
            search_mode: SearchMode::FocalSpread { k: 2 },
            require_stable: true,
            bounds: VerificationBounds::new(0.0, 0.0), // accept everything
            ..Default::default()
        },
        bundle.meta.clone(),
    );
    // Fresh (unstable) ACG → full search.
    let wa = &workload[1].annotations[0];
    let out = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &[wa.ideal[0]])
        .expect("runs");
    assert!(!out.used_focal_spread);

    // Mature ACG → spreading engages.
    *nebula.acg_mut() = acg;
    nebula.acg_mut().set_stable(true);
    let wa2 = &workload[1].annotations[1];
    let out2 = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &wa2.annotation, &[wa2.ideal[0]])
        .expect("runs");
    assert!(out2.used_focal_spread);
    if !out2.accepted.is_empty() {
        assert!(nebula.profile().total() > 0, "accepted attachments feed the profile");
    }
}

/// Hop-profile coverage is monotone and `select_k` honors it.
#[test]
fn profile_guides_k() {
    let (bundle, workload, acg) = setup();
    let mut profile = HopProfile::new();
    for wa in workload.iter().flat_map(|s| &s.annotations) {
        if wa.ideal.len() < 2 {
            continue;
        }
        let (focal, rest) = distort(&wa.ideal, 1);
        for t in rest {
            if let Some(h) = acg.shortest_hops(t, &focal, 16) {
                profile.record(h);
            }
        }
    }
    assert!(profile.total() > 0);
    let mut prev = 0.0;
    for k in 0..10 {
        let c = profile.coverage(k);
        assert!(c >= prev, "coverage must be monotone");
        assert!((0.0..=1.0).contains(&c));
        prev = c;
    }
    if let Some(k) = profile.select_k(0.9) {
        assert!(profile.coverage(k) >= 0.9);
        if k > 0 {
            assert!(profile.coverage(k - 1) < 0.9, "select_k returns the smallest K");
        }
    }
    let _ = bundle;
}

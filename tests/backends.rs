//! The search technique is a pluggable black box (§6.1): Stage 2 runs
//! unchanged over either the metadata-approach engine or the simpler
//! tf-idf ranker.

use nebula::nebula_core::{
    distort, generate_queries, identify_related_tuples, ExecutionConfig, QueryGenConfig,
};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use nebula::textsearch::{SearchBackend, SearchOptions, TfIdfSearch};

#[test]
fn stage2_works_with_either_backend() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), 13);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), 13);
    let acg = Acg::build_from_store(&bundle.annotations);

    let metadata = KeywordSearch::new(SearchOptions {
        vocab: bundle.meta.to_vocabulary(&bundle.db),
        ..Default::default()
    });
    let tfidf = TfIdfSearch::default();
    let backends: [&dyn SearchBackend; 2] = [&metadata, &tfidf];

    let mut recovered = [0usize; 2];
    let mut total = 0usize;
    for wa in workload.iter().flat_map(|s| &s.annotations).take(20) {
        let (focal, missing) = distort(&wa.ideal, 1);
        total += missing.len();
        let queries = generate_queries(
            &bundle.db,
            &bundle.meta,
            &wa.annotation.text,
            &QueryGenConfig::default(),
        );
        for (i, backend) in backends.iter().enumerate() {
            let (cands, _) = identify_related_tuples(
                &bundle.db,
                *backend,
                &queries,
                &focal,
                Some(&acg),
                &ExecutionConfig::default(),
            )
            .expect("ungoverned search cannot fail");
            recovered[i] += missing.iter().filter(|m| cands.iter().any(|c| c.tuple == **m)).count();
        }
    }
    assert!(total > 0);
    // Both backends recover a solid majority of the missing references;
    // the metadata approach (schema-aware) is at least as good as the
    // schema-free ranker.
    assert!(
        recovered[0] * 2 > total,
        "metadata backend recovers most references: {}/{total}",
        recovered[0]
    );
    assert!(
        recovered[1] * 2 > total,
        "tfidf backend recovers most references: {}/{total}",
        recovered[1]
    );
    assert!(recovered[0] >= recovered[1], "schema awareness should not hurt");
}

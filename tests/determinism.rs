//! Determinism: the entire pipeline — generation, discovery, routing — is
//! reproducible bit-for-bit from the seeds.

use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Telemetry is process-global; tests in this binary that enable it (or
/// run the pipeline while another test might have it enabled) serialize
/// through this guard so counter diffs stay attributable.
static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run the pipeline under `config` and render every outcome to its full
/// Debug form, so comparisons catch any divergence, not just the headline
/// counts.
fn run_pipeline_debug_with(seed: u64, config: NebulaConfig) -> Vec<String> {
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(config, bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    workload
        .iter()
        .flat_map(|s| &s.annotations)
        .take(10)
        .map(|wa| {
            let out = nebula
                .process_annotation(
                    &bundle.db,
                    &mut bundle.annotations,
                    &wa.annotation,
                    &[wa.ideal[0]],
                )
                .expect("pipeline runs");
            format!("{out:?}")
        })
        .collect()
}

fn run_pipeline_debug(seed: u64) -> Vec<String> {
    run_pipeline_debug_with(seed, NebulaConfig::default())
}

#[test]
fn telemetry_on_and_off_produce_identical_outcomes() {
    let _serial = guard();
    // Telemetry observes the pipeline; it must never steer it. The full
    // Debug rendering of every outcome has to match byte for byte.
    nebula::nebula_obs::set_enabled(false);
    let disabled = run_pipeline_debug(17);
    nebula::nebula_obs::set_enabled(true);
    let enabled = run_pipeline_debug(17);
    nebula::nebula_obs::set_enabled(false);
    assert_eq!(disabled, enabled);
}

fn run_pipeline(seed: u64) -> Vec<(usize, usize, usize, usize)> {
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    workload
        .iter()
        .flat_map(|s| &s.annotations)
        .take(10)
        .map(|wa| {
            let out = nebula
                .process_annotation(
                    &bundle.db,
                    &mut bundle.annotations,
                    &wa.annotation,
                    &[wa.ideal[0]],
                )
                .expect("pipeline runs");
            (out.queries.len(), out.accepted.len(), out.pending.len(), out.rejected.len())
        })
        .collect()
}

#[test]
fn same_seed_same_outcomes() {
    let _serial = guard();
    assert_eq!(run_pipeline(11), run_pipeline(11));
}

#[test]
fn different_seeds_differ() {
    let _serial = guard();
    // Not a hard guarantee per annotation, but across 10 annotations two
    // different datasets should not produce identical traces.
    assert_ne!(run_pipeline(11), run_pipeline(12));
}

/// An explicit `usize::MAX` budget with no deadline is recognized as
/// unbounded and leaves the pipeline byte-identical to the ungoverned
/// default.
#[test]
fn unbounded_budget_is_byte_identical_to_ungoverned() {
    let _serial = guard();
    let ungoverned = run_pipeline_debug(17);
    let governed = run_pipeline_debug_with(
        17,
        NebulaConfig { budget: ExecutionBudget::unbounded(), ..Default::default() },
    );
    assert_eq!(ungoverned, governed);
}

/// A generous-but-finite budget installs the governor (every hot loop
/// charges against it) yet never trips — so the full Debug rendering of
/// every outcome must still match the ungoverned run byte for byte.
#[test]
fn untripped_governor_is_byte_identical_to_ungoverned() {
    let _serial = guard();
    let ungoverned = run_pipeline_debug(17);
    let governed = run_pipeline_debug_with(
        17,
        NebulaConfig {
            budget: ExecutionBudget::unbounded()
                .with_deadline(std::time::Duration::from_secs(3600))
                .with_max_tuples(1 << 40)
                .with_max_configurations(1 << 40)
                .with_max_candidates(1 << 40),
            ..Default::default()
        },
    );
    assert_eq!(ungoverned, governed);
}

/// Degraded runs stay sound: when a tight tuple budget forces the
/// focal-fallback ladder, every candidate the degraded engine proposes is
/// one the unbounded full search would also have proposed (or a focal
/// tuple itself) — degradation loses recall, never invents results.
#[test]
fn degraded_focal_candidates_are_subset_of_full_search() {
    let _serial = guard();
    // Reject everything so neither engine mutates the attachment graph and
    // the two runs stay state-identical annotation by annotation.
    let bounds = VerificationBounds::new(1.1, 1.1);
    let run = |budget: ExecutionBudget| -> Vec<(TupleId, ProcessOutcome)> {
        let mut bundle = generate_dataset(&DatasetSpec::tiny(), 21);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 21);
        let mut nebula =
            Nebula::new(NebulaConfig { bounds, budget, ..Default::default() }, bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        nebula.acg_mut().set_stable(true);
        workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(10)
            .map(|wa| {
                let out = nebula
                    .process_annotation(
                        &bundle.db,
                        &mut bundle.annotations,
                        &wa.annotation,
                        &[wa.ideal[0]],
                    )
                    .expect("budget trips degrade, they do not fail");
                (wa.ideal[0], out)
            })
            .collect()
    };

    let full = run(ExecutionBudget::unbounded());
    let tight = run(ExecutionBudget::unbounded().with_max_tuples(5));

    assert_eq!(full.len(), tight.len());
    let mut fallbacks = 0;
    for ((_, f), (focal, t)) in full.iter().zip(&tight) {
        if t.degradations.iter().any(|d| matches!(d, Degradation::FocalFallback { .. })) {
            fallbacks += 1;
        }
        let full_set: std::collections::HashSet<TupleId> =
            f.candidates.iter().map(|c| c.tuple).collect();
        for c in &t.candidates {
            assert!(
                full_set.contains(&c.tuple) || c.tuple == *focal,
                "degraded search proposed {} that the full search never saw",
                c.tuple
            );
        }
    }
    assert!(fallbacks > 0, "the tight budget never tripped — test is vacuous");
}

/// Durability observes the pipeline and must never steer it: the same
/// batch with the WAL on and off produces a byte-identical batch report,
/// and identical pipeline metrics modulo the `durable.*` keys the sink
/// itself emits.
#[test]
fn durability_on_and_off_produce_identical_outcomes() {
    let _serial = guard();
    let dir =
        std::env::temp_dir().join(format!("nebula-determinism-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = |wal_dir: Option<&std::path::Path>| {
        let mut bundle = generate_dataset(&DatasetSpec::tiny(), 29);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 29);
        let items: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(12)
            .map(|wa| (wa.annotation.clone(), vec![wa.ideal[0]]))
            .collect();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        if let Some(d) = wal_dir {
            let durability =
                Durability::begin(d, &bundle.db, &bundle.annotations, DurabilityOptions::default())
                    .expect("fresh durability directory");
            nebula.set_mutation_sink(Some(Box::new(durability)));
        }
        nebula::nebula_obs::reset();
        nebula::nebula_obs::set_enabled(true);
        let report = nebula.process_batch(&bundle.db, &mut bundle.annotations, &items);
        nebula::nebula_obs::set_enabled(false);
        let snap = nebula::nebula_obs::snapshot();
        drop(nebula.take_mutation_sink());
        (format!("{report:?}"), snap)
    };

    let (off_report, off_snap) = run(None);
    let (on_report, on_snap) = run(Some(&dir));
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(off_report, on_report, "the WAL must not change what the batch produces");

    // Counters match exactly once the sink's own `durable.*` keys are set
    // aside; histogram keys and observation counts likewise (latencies
    // themselves are wall-clock and not comparable).
    let counters = |snap: &nebula::nebula_obs::TelemetrySnapshot| -> Vec<(String, u64)> {
        snap.counters
            .iter()
            .filter(|(k, _)| !k.starts_with("durable."))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    };
    assert_eq!(counters(&off_snap), counters(&on_snap));
    let spans = |snap: &nebula::nebula_obs::TelemetrySnapshot| -> Vec<(String, u64)> {
        snap.histograms
            .iter()
            .filter(|(k, _)| !k.starts_with("durable."))
            .map(|(k, h)| (k.clone(), h.count))
            .collect()
    };
    assert_eq!(spans(&off_snap), spans(&on_snap));

    // And the durable keys exist exactly when the sink is attached.
    assert!(on_snap.counters.keys().any(|k| k.starts_with("durable.")));
    assert!(!off_snap.counters.keys().any(|k| k.starts_with("durable.")));
}

/// Worker counts exercised by the concurrency-equivalence tests:
/// `NEBULA_WORKERS` (comma-separated), default `1,2,8`. CI's thread-count
/// matrix pins one value per job.
fn worker_counts() -> Vec<usize> {
    std::env::var("NEBULA_WORKERS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|n| *n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 8])
}

/// The worker pool is a concurrency construct, not a semantics one: for a
/// fixed fault seed and a non-shedding configuration, the concurrent batch
/// report renders byte-identically to `process_batch` at every worker
/// count — faults, retries, quarantines and all.
#[test]
fn concurrent_ingest_matches_sequential_at_any_worker_count() {
    let _serial = guard();
    let plan = || Some(FaultPlan::uniform(0xBEEF, 0.2));

    let prepared = || {
        let bundle = generate_dataset(&DatasetSpec::tiny(), 37);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 37);
        let items: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(12)
            .map(|wa| (wa.annotation.clone(), vec![wa.ideal[0]]))
            .collect();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        (bundle, nebula, items)
    };

    let sequential = {
        let (mut bundle, mut nebula, items) = prepared();
        nebula::nebula_govern::set_fault_plan(plan());
        let report = nebula.process_batch(&bundle.db, &mut bundle.annotations, &items);
        nebula::nebula_govern::set_fault_plan(None);
        format!("{report:?}")
    };

    for workers in worker_counts() {
        let (mut bundle, mut nebula, items) = prepared();
        let ingest_items: Vec<_> =
            items.iter().map(|(a, focal)| IngestItem::new(a.clone(), focal.clone())).collect();
        nebula::nebula_govern::set_fault_plan(plan());
        let report = ingest_batch(
            &mut nebula,
            &bundle.db,
            &mut bundle.annotations,
            &ingest_items,
            &IngestConfig::deterministic(workers, ingest_items.len()),
        );
        nebula::nebula_govern::set_fault_plan(None);
        assert!(report.sheds.is_empty(), "deterministic config never sheds");
        assert_eq!(
            sequential,
            format!("{:?}", report.batch),
            "workers={workers} diverged from the sequential batch"
        );
    }
}

/// The single-writer pool preserves PR 3's ordering guarantee end to end:
/// with the WAL attached (including mid-batch checkpoints), the recovered
/// on-disk state after a concurrent ingest is byte-identical to the
/// sequential run's, at every worker count.
#[test]
fn concurrent_ingest_recovers_to_the_same_bytes_as_sequential() {
    let _serial = guard();
    let plan = || Some(FaultPlan::uniform(0xD1CE, 0.2));

    // Run 12 annotations through a WAL-backed engine (checkpoint every 5
    // records so the periodic checkpoint path runs mid-batch), then
    // recover from disk and digest the recovered annotation store.
    let run = |workers: Option<usize>| -> (String, Vec<u8>) {
        let dir = std::env::temp_dir().join(format!(
            "nebula-determinism-pool-{}-{}",
            std::process::id(),
            workers.map_or("seq".to_string(), |w| w.to_string())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut bundle = generate_dataset(&DatasetSpec::tiny(), 41);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 41);
        let items: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(12)
            .map(|wa| (wa.annotation.clone(), vec![wa.ideal[0]]))
            .collect();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        let options = DurabilityOptions { checkpoint_every: Some(5), ..Default::default() };
        let durability = Durability::begin(&dir, &bundle.db, &bundle.annotations, options)
            .expect("fresh durability directory");
        nebula.set_mutation_sink(Some(Box::new(durability)));

        nebula::nebula_govern::set_fault_plan(plan());
        let rendered = match workers {
            None => {
                let report = nebula.process_batch(&bundle.db, &mut bundle.annotations, &items);
                format!("{report:?}")
            }
            Some(w) => {
                let ingest_items: Vec<_> = items
                    .iter()
                    .map(|(a, focal)| IngestItem::new(a.clone(), focal.clone()))
                    .collect();
                let report = ingest_batch(
                    &mut nebula,
                    &bundle.db,
                    &mut bundle.annotations,
                    &ingest_items,
                    &IngestConfig::deterministic(w, ingest_items.len()),
                );
                format!("{:?}", report.batch)
            }
        };
        nebula::nebula_govern::set_fault_plan(None);
        drop(nebula.take_mutation_sink());

        let (resumed, recovered) = Durability::resume(&dir, DurabilityOptions::default())
            .expect("recovery from a cleanly closed log");
        drop(resumed);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            recovered.store.annotation_count(),
            bundle.annotations.annotation_count(),
            "recovery restores every annotation"
        );
        (rendered, nebula::annostore::snapshot::save(&recovered.store).to_vec())
    };

    let (seq_report, seq_bytes) = run(None);
    for workers in worker_counts() {
        let (report, bytes) = run(Some(workers));
        assert_eq!(seq_report, report, "workers={workers}: batch report diverged");
        assert_eq!(seq_bytes, bytes, "workers={workers}: recovered store bytes diverged");
    }
}

/// The fault seed honored by the trace-determinism tests:
/// `NEBULA_FAULT_SEED` (hex with `0x` prefix or decimal), default
/// `0xF00D` — the same knob the bench grids and the replication soak
/// share. CI's tracing matrix pins seeds here.
fn trace_fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

/// The tentpole tracing claim: span-tree *structure* — IDs, parent links,
/// labels, details, the whole causal shape — is a pure function of the
/// committed work. For a fixed fault seed, a WAL-backed concurrent ingest
/// renders byte-identical structure-only trace JSON at every worker
/// count (durations are wall-clock and excluded from that rendering).
#[test]
fn trace_structure_is_byte_identical_at_any_worker_count() {
    let _serial = guard();
    let seed = trace_fault_seed();

    let run = |workers: usize| -> String {
        let dir = std::env::temp_dir()
            .join(format!("nebula-determinism-trace-{}-{workers}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut bundle = generate_dataset(&DatasetSpec::tiny(), 43);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 43);
        let items: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(12)
            .map(|wa| IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]))
            .collect();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        let options = DurabilityOptions { checkpoint_every: Some(5), ..Default::default() };
        let durability = Durability::begin(&dir, &bundle.db, &bundle.annotations, options)
            .expect("fresh durability directory");
        nebula.set_mutation_sink(Some(Box::new(durability)));

        nebula::nebula_obs::trace::set_enabled(true);
        nebula::nebula_obs::trace::reset();
        nebula::nebula_govern::set_fault_plan(Some(FaultPlan::uniform(seed, 0.2)));
        let report = ingest_batch(
            &mut nebula,
            &bundle.db,
            &mut bundle.annotations,
            &items,
            &IngestConfig::deterministic(workers, items.len()),
        );
        nebula::nebula_govern::set_fault_plan(None);
        let traces = nebula::nebula_obs::trace::traces();
        nebula::nebula_obs::trace::set_enabled(false);
        drop(nebula.take_mutation_sink());
        let _ = std::fs::remove_dir_all(&dir);

        assert!(report.sheds.is_empty(), "deterministic config never sheds");
        assert!(!traces.is_empty(), "committed annotations leave traces");
        nebula::nebula_obs::trace::render_traces_json(&traces, false)
    };

    let reference = run(1);
    // Shape sanity: every layer of the commit path shows up in the trees.
    for label in ["ingest.item", "ingest.queue_wait", "core.process_annotation", "durable.append"] {
        assert!(reference.contains(label), "reference traces missing {label}");
    }
    for workers in worker_counts().into_iter().filter(|w| *w != 1) {
        assert_eq!(reference, run(workers), "workers={workers}: trace structure diverged");
    }
}

/// Tracing observes the commit path; it must never steer it. The same
/// WAL-backed concurrent batch with tracing off and on produces a
/// byte-identical batch report and byte-identical recovered store bytes.
#[test]
fn tracing_on_and_off_produce_identical_outcomes() {
    let _serial = guard();
    let seed = trace_fault_seed();

    let run = |tracing_on: bool| -> (String, Vec<u8>) {
        let dir = std::env::temp_dir()
            .join(format!("nebula-determinism-traceonoff-{}-{tracing_on}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut bundle = generate_dataset(&DatasetSpec::tiny(), 47);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), 47);
        let items: Vec<_> = workload
            .iter()
            .flat_map(|s| &s.annotations)
            .filter(|wa| !wa.ideal.is_empty())
            .take(12)
            .map(|wa| IngestItem::new(wa.annotation.clone(), vec![wa.ideal[0]]))
            .collect();
        let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
        nebula.bootstrap_acg(&bundle.annotations);
        let options = DurabilityOptions { checkpoint_every: Some(5), ..Default::default() };
        let durability = Durability::begin(&dir, &bundle.db, &bundle.annotations, options)
            .expect("fresh durability directory");
        nebula.set_mutation_sink(Some(Box::new(durability)));

        nebula::nebula_obs::trace::set_enabled(tracing_on);
        nebula::nebula_obs::trace::reset();
        nebula::nebula_govern::set_fault_plan(Some(FaultPlan::uniform(seed, 0.2)));
        let report = ingest_batch(
            &mut nebula,
            &bundle.db,
            &mut bundle.annotations,
            &items,
            &IngestConfig::deterministic(2, items.len()),
        );
        nebula::nebula_govern::set_fault_plan(None);
        nebula::nebula_obs::trace::set_enabled(false);
        drop(nebula.take_mutation_sink());

        let (resumed, recovered) = Durability::resume(&dir, DurabilityOptions::default())
            .expect("recovery from a cleanly closed log");
        drop(resumed);
        let _ = std::fs::remove_dir_all(&dir);
        (
            format!("{:?}", report.batch),
            nebula::annostore::snapshot::save(&recovered.store).to_vec(),
        )
    };

    let (off_report, off_bytes) = run(false);
    let (on_report, on_bytes) = run(true);
    assert_eq!(off_report, on_report, "tracing must not change what the batch produces");
    assert_eq!(off_bytes, on_bytes, "tracing must not change the recovered store bytes");
}

#[test]
fn dataset_generation_is_pure() {
    let _serial = guard();
    let a = generate_dataset(&DatasetSpec::tiny(), 33);
    let b = generate_dataset(&DatasetSpec::tiny(), 33);
    assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    for (x, y) in a.gene_tuples.iter().zip(&b.gene_tuples) {
        assert_eq!(a.db.get(*x).expect("live").values, b.db.get(*y).expect("live").values);
    }
    assert_eq!(a.annotations.annotation_count(), b.annotations.annotation_count());
    for (ia, ib) in a.annotations.iter_annotations().zip(b.annotations.iter_annotations()) {
        assert_eq!(ia.1.text, ib.1.text);
    }
}

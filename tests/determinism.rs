//! Determinism: the entire pipeline — generation, discovery, routing — is
//! reproducible bit-for-bit from the seeds.

use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;

/// Run the pipeline and render every outcome to its full Debug form, so
/// comparisons catch any divergence, not just the headline counts.
fn run_pipeline_debug(seed: u64) -> Vec<String> {
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    workload
        .iter()
        .flat_map(|s| &s.annotations)
        .take(10)
        .map(|wa| {
            let out = nebula
                .process_annotation(
                    &bundle.db,
                    &mut bundle.annotations,
                    &wa.annotation,
                    &[wa.ideal[0]],
                )
                .expect("pipeline runs");
            format!("{out:?}")
        })
        .collect()
}

#[test]
fn telemetry_on_and_off_produce_identical_outcomes() {
    // Telemetry observes the pipeline; it must never steer it. The full
    // Debug rendering of every outcome has to match byte for byte.
    nebula::nebula_obs::set_enabled(false);
    let disabled = run_pipeline_debug(17);
    nebula::nebula_obs::set_enabled(true);
    let enabled = run_pipeline_debug(17);
    nebula::nebula_obs::set_enabled(false);
    assert_eq!(disabled, enabled);
}

fn run_pipeline(seed: u64) -> Vec<(usize, usize, usize, usize)> {
    let mut bundle = generate_dataset(&DatasetSpec::tiny(), seed);
    let workload = build_workload(&bundle, &WorkloadSpec::default(), seed);
    let mut nebula = Nebula::new(NebulaConfig::default(), bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    workload
        .iter()
        .flat_map(|s| &s.annotations)
        .take(10)
        .map(|wa| {
            let out = nebula
                .process_annotation(
                    &bundle.db,
                    &mut bundle.annotations,
                    &wa.annotation,
                    &[wa.ideal[0]],
                )
                .expect("pipeline runs");
            (out.queries.len(), out.accepted.len(), out.pending.len(), out.rejected.len())
        })
        .collect()
}

#[test]
fn same_seed_same_outcomes() {
    assert_eq!(run_pipeline(11), run_pipeline(11));
}

#[test]
fn different_seeds_differ() {
    // Not a hard guarantee per annotation, but across 10 annotations two
    // different datasets should not produce identical traces.
    assert_ne!(run_pipeline(11), run_pipeline(12));
}

#[test]
fn dataset_generation_is_pure() {
    let a = generate_dataset(&DatasetSpec::tiny(), 33);
    let b = generate_dataset(&DatasetSpec::tiny(), 33);
    assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    for (x, y) in a.gene_tuples.iter().zip(&b.gene_tuples) {
        assert_eq!(a.db.get(*x).expect("live").values, b.db.get(*y).expect("live").values);
    }
    assert_eq!(a.annotations.annotation_count(), b.annotations.annotation_count());
    for (ia, ib) in a.annotations.iter_annotations().zip(b.annotations.iter_annotations()) {
        assert_eq!(ia.1.text, ib.1.text);
    }
}

//! Sharded-engine invariants from the partition-tolerance tentpole.
//!
//! - **Keystone: shard-count independence.** For the same workload, the
//!   merged per-shard digest slices reassemble to a checkpoint image
//!   byte-identical to the unsharded engine's, at every shard count, and
//!   every per-annotation outcome (accepted / pending / rejected) is
//!   identical too.
//! - **Typed partial results.** A partitioned shard past its
//!   governed-clock deadline yields a `Degradation::PartialShards` note
//!   naming it — never a hang, panic, or silently complete answer — and
//!   trips only its own breaker. After heal + catch-up + scrub the
//!   cluster is byte-identical with an unsharded twin replayed from its
//!   own durable history.
//! - **Per-shard fault domains.** A wedged shard (tiny serving budget)
//!   degrades and trips its breaker while its siblings stay green, and
//!   the breaker re-arms once the shard recovers.
//! - **Failover and scrub.** An epoch-fenced promote rebuilds a failed
//!   shard from the durable history; anti-entropy scrub detects and
//!   repairs injected bit-rot before it can spread.

use nebula::nebula_core::{Nebula, NebulaConfig, ProcessOutcome, SearchMode};
use nebula::nebula_durable::checkpoint;
use nebula::nebula_govern::{Degradation, ExecutionBudget};
use nebula::nebula_ingest::BreakerState;
use nebula::nebula_shard::{ShardCluster, ShardConfig};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;

const DATASET_SEED: u64 = 0x5E_AC;
const WORKLOAD_SEED: u64 = 21;

/// Deterministic workload: real annotations with their first ideal tuple
/// as the focal attachment, cycled to `n` items.
fn workload_items(bundle: &DatasetBundle, n: usize) -> Vec<(Annotation, Vec<TupleId>)> {
    let workload = build_workload(bundle, &WorkloadSpec::default(), WORKLOAD_SEED);
    let source: Vec<_> =
        workload.iter().flat_map(|s| &s.annotations).filter(|wa| !wa.ideal.is_empty()).collect();
    assert!(!source.is_empty());
    (0..n)
        .map(|i| {
            let wa = source[i % source.len()];
            (wa.annotation.clone(), vec![wa.ideal[0]])
        })
        .collect()
}

/// Engine config pinned to full search so stage 2 exercises the
/// scatter-gather path (focal spreading is home-local by design).
fn engine_config() -> NebulaConfig {
    NebulaConfig { search_mode: SearchMode::Full, ..NebulaConfig::default() }
}

/// A fresh copy of the bundle's initial state (Database/AnnotationStore
/// are not Clone; the canonical checkpoint codec is the copy machine).
fn initial_state(bundle: &DatasetBundle) -> (Database, AnnotationStore) {
    let image = checkpoint::encode(0, &bundle.db, &bundle.annotations);
    let (_, db, store) = checkpoint::decode(&image).expect("genesis image decodes");
    (db, store)
}

/// The per-annotation decisions that must match across shard counts.
type Decisions = (Vec<(TupleId, f64)>, Vec<u64>, Vec<(TupleId, f64)>);

fn decisions(o: &ProcessOutcome) -> Decisions {
    (o.accepted.clone(), o.pending.clone(), o.rejected.clone())
}

#[test]
fn merged_digest_matches_unsharded_at_every_shard_count() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), DATASET_SEED);
    let items = workload_items(&bundle, 32);

    // Unsharded reference run.
    let (db, mut store) = initial_state(&bundle);
    let mut engine = Nebula::new(engine_config(), bundle.meta.clone());
    engine.bootstrap_acg(&store);
    let mut reference_outcomes = Vec::new();
    for (annotation, focal) in &items {
        let outcome = engine
            .process_annotation(&db, &mut store, annotation, focal)
            .expect("reference pipeline");
        reference_outcomes.push(decisions(&outcome));
    }
    let reference_bytes = checkpoint::encode(0, &db, &store);

    for shards in [1usize, 2, 4] {
        let mut cluster = ShardCluster::new(
            &bundle.db,
            &bundle.annotations,
            &bundle.meta,
            &engine_config(),
            ShardConfig::new(shards),
        )
        .expect("cluster boots");
        let mut homes_used = std::collections::BTreeSet::new();
        let router = cluster.router();
        for ((annotation, focal), expected) in items.iter().zip(&reference_outcomes) {
            homes_used.insert(router.route(focal));
            let outcome = cluster.ingest(annotation, focal).expect("sharded pipeline");
            assert!(
                outcome.degradations.is_empty(),
                "clean run must not degrade: {:?}",
                outcome.degradations
            );
            assert_eq!(&decisions(&outcome), expected, "decision drift at {shards} shards");
        }
        if shards > 1 {
            assert!(
                homes_used.len() > 1,
                "workload must actually spread over shards, got {homes_used:?}"
            );
        }
        assert!(cluster.lagging().is_empty(), "reliable fabric leaves no lagging shard");
        assert!(cluster.divergent().is_empty());
        let merged = cluster.merged_checkpoint().expect("merged image");
        assert_eq!(
            merged, reference_bytes,
            "merged digest diverges from unsharded at {shards} shards"
        );
        // Per-shard slices are a real partition: every shard that served
        // as home contributes a distinct slice.
        let digests = cluster.slice_digests().expect("slice digests");
        assert_eq!(digests.len(), shards);
        // Scrub of a healthy cluster finds nothing to repair.
        let scrub = cluster.scrub().expect("scrub");
        assert_eq!(scrub.checked, shards);
        assert!(scrub.divergent.is_empty(), "healthy cluster must scrub clean");
    }
}

#[test]
fn partitioned_shard_degrades_typed_then_heals_byte_identically() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), DATASET_SEED);
    let items = workload_items(&bundle, 40);
    let shards = 3usize;
    let mut cluster = ShardCluster::new(
        &bundle.db,
        &bundle.annotations,
        &bundle.meta,
        &engine_config(),
        ShardConfig::new(shards),
    )
    .expect("cluster boots");
    let router = cluster.router();
    let victim = 2usize;

    // Warm up with a few clean annotations.
    let mut cursor = items.iter();
    for (annotation, focal) in cursor.by_ref().take(6) {
        let o = cluster.ingest(annotation, focal).expect("warmup");
        assert!(o.degradations.is_empty());
    }

    cluster.partition_shard(victim);

    // Annotations homed on a *healthy* shard must complete with a typed
    // partial result naming exactly the dark shard.
    let mut partials = 0usize;
    let mut processed = 0usize;
    let mut fell_back = false;
    for (annotation, focal) in cursor.by_ref().take(12) {
        let home = router.route(focal);
        let o = cluster.ingest(annotation, focal).expect("partitioned ingest never errors");
        processed += 1;
        if home == victim {
            // The router's choice was dark: a healthy shard took over.
            fell_back = true;
        }
        let partial = o.degradations.iter().find_map(|d| match d {
            Degradation::PartialShards { answered, total, missing } => {
                Some((*answered, *total, missing.clone()))
            }
            _ => None,
        });
        match partial {
            Some((answered, total, missing)) => {
                partials += 1;
                assert_eq!(total, shards);
                assert_eq!(missing, vec![victim], "only the dark shard may be missing");
                assert_eq!(answered, shards - missing.len());
            }
            None => {
                // Once the victim's breaker opens, probes are skipped but
                // the degradation note must still name it.
                panic!("partitioned shard produced a silently-full result: {o:?}");
            }
        }
    }
    assert!(processed > 0 && partials == processed);
    assert!(fell_back, "some annotation should have routed to the dark shard");

    // Fault domains: the victim's breaker tripped (it cycles between
    // Open and a shed-gated HalfOpen re-probe while the partition
    // persists); siblings stayed green.
    assert_ne!(cluster.breaker_state(victim), BreakerState::Closed);
    for s in (0..shards).filter(|&s| s != victim) {
        assert_eq!(cluster.breaker_state(s), BreakerState::Closed, "sibling {s} breaker moved");
    }
    assert_eq!(cluster.lagging(), vec![victim]);

    // Heal: catch-up replays every missed batch, scrub finds nothing.
    cluster.heal_shard(victim);
    assert!(cluster.lagging().is_empty(), "healed shard must catch up");
    let scrub = cluster.scrub().expect("scrub");
    assert!(scrub.divergent.is_empty(), "catch-up must reconverge without repair");

    // Byte-identity with the unsharded twin replayed from the cluster's
    // own durable history — and the next annotation decides identically
    // on both.
    let mut twin = cluster.rebuild_twin().expect("twin");
    assert_eq!(cluster.merged_checkpoint().expect("merged"), twin.checkpoint());
    let (annotation, focal) = cursor.next().expect("workload remains");
    let cluster_outcome = cluster.ingest(annotation, focal).expect("post-heal ingest");
    assert!(cluster_outcome.degradations.is_empty(), "healed cluster must not degrade");
    let twin_outcome = twin.process(annotation, focal).expect("twin ingest");
    assert_eq!(decisions(&cluster_outcome), decisions(&twin_outcome));
    assert_eq!(cluster.merged_checkpoint().expect("merged"), twin.checkpoint());
}

#[test]
fn wedged_shard_trips_its_own_breaker_and_rearms() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), DATASET_SEED);
    let items = workload_items(&bundle, 40);
    let shards = 2usize;
    let mut config = ShardConfig::new(shards);
    // Trip fast, re-arm fast: 2 consecutive misses open, 2 sheds re-probe.
    config.breaker =
        nebula::nebula_ingest::BreakerConfig { failure_threshold: 2, open_shed_count: 2 };
    let mut cluster =
        ShardCluster::new(&bundle.db, &bundle.annotations, &bundle.meta, &engine_config(), config)
            .expect("cluster boots");
    let router = cluster.router();
    let victim = 1usize;

    // Wedge the victim's probe serving: a budget so tight every search
    // trips it. The budget is the shard's own fault domain — the home's
    // pipeline budget is untouched.
    cluster.set_serve_budget(victim, ExecutionBudget::unbounded().with_max_tuples(1));

    let mut cursor = items.iter().filter(|(_, focal)| router.route(focal) != victim);
    let mut saw_partial = false;
    for (annotation, focal) in cursor.by_ref().take(6) {
        let o = cluster.ingest(annotation, focal).expect("wedged sibling never wedges home");
        let named = o.degradations.iter().any(
            |d| matches!(d, Degradation::PartialShards { missing, .. } if missing == &vec![victim]),
        );
        assert!(named, "wedged shard must be a typed partial miss: {:?}", o.degradations);
        saw_partial = true;
    }
    assert!(saw_partial);
    assert_eq!(cluster.breaker_state(victim), BreakerState::Open);
    for s in (0..shards).filter(|&s| s != victim) {
        assert_eq!(cluster.breaker_state(s), BreakerState::Closed);
    }

    // Recover the shard; the open breaker sheds a couple of probes, goes
    // half-open, and the first served probe closes it again.
    cluster.set_serve_budget(victim, ShardConfig::new(shards).serve_budget);
    let mut recovered = false;
    for (annotation, focal) in cursor.by_ref().take(8) {
        let o = cluster.ingest(annotation, focal).expect("recovery ingest");
        if o.degradations.is_empty() {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "breaker must re-arm after the shard recovers");
    assert_eq!(cluster.breaker_state(victim), BreakerState::Closed);

    // Replication kept flowing the whole time (applies are not probes):
    // the wedged phase must not have forked the replicas.
    let scrub = cluster.scrub().expect("scrub");
    assert!(scrub.divergent.is_empty());
    let twin = cluster.rebuild_twin().expect("twin");
    assert_eq!(cluster.merged_checkpoint().expect("merged"), twin.checkpoint());
}

#[test]
fn failover_rebuilds_under_new_epoch_and_bitrot_is_scrubbed() {
    let bundle = generate_dataset(&DatasetSpec::tiny(), DATASET_SEED);
    let items = workload_items(&bundle, 40);
    let shards = 4usize;
    let mut cluster = ShardCluster::new(
        &bundle.db,
        &bundle.annotations,
        &bundle.meta,
        &engine_config(),
        ShardConfig::new(shards),
    )
    .expect("cluster boots");
    let mut cursor = items.iter();
    for (annotation, focal) in cursor.by_ref().take(8) {
        cluster.ingest(annotation, focal).expect("warmup");
    }

    // Crash shard 1, keep ingesting (typed partials while it is dark),
    // then promote: the replacement replays the durable history under a
    // bumped fencing epoch.
    cluster.fail_shard(1);
    for (annotation, focal) in cursor.by_ref().take(4) {
        let o = cluster.ingest(annotation, focal).expect("ingest with failed shard");
        assert!(
            o.degradations.iter().any(|d| matches!(
                d,
                Degradation::PartialShards { missing, .. } if missing.contains(&1)
            )),
            "failed shard must surface as a typed partial"
        );
    }
    assert_eq!(cluster.epoch(), 0);
    cluster.promote_shard(1).expect("promote");
    assert_eq!(cluster.epoch(), 1);
    let health = cluster.health();
    assert!(health.iter().all(|h| h.epoch == 1), "promote re-fences every shard: {health:?}");
    assert!(health.iter().all(|h| !h.failed));
    assert!(
        health.iter().all(|h| h.applied_seq == cluster.log_len() as u64),
        "promoted shard must replay the full history: {health:?}"
    );

    // Back to full answers, still byte-identical with the twin.
    let (annotation, focal) = cursor.next().expect("workload remains");
    let o = cluster.ingest(annotation, focal).expect("post-promote ingest");
    assert!(o.degradations.is_empty(), "rebuilt shard must serve probes: {:?}", o.degradations);
    let twin = cluster.rebuild_twin().expect("twin");
    assert_eq!(cluster.merged_checkpoint().expect("merged"), twin.checkpoint());

    // Silent single-shard bit-rot: detected by the next scrub, repaired
    // from the durable history, and invisible afterwards.
    cluster.corrupt_shard(2).expect("corrupt");
    let scrub = cluster.scrub().expect("scrub");
    assert_eq!(scrub.divergent, vec![2], "scrub must localize the rot");
    assert_eq!(scrub.repaired, vec![2]);
    let scrub2 = cluster.scrub().expect("second scrub");
    assert!(scrub2.divergent.is_empty(), "repair must stick");
    assert_eq!(cluster.merged_checkpoint().expect("merged"), twin.checkpoint());
}

//! An extended-SQL shell over an annotated database.
//!
//! The `[18]` engine Nebula builds on exposes annotation management
//! through SQL extensions; this module provides that interface for the
//! whole stack — querying, annotating (which triggers the proactive
//! pipeline), working the verification queue, and snapshotting state.
//!
//! ```text
//! TABLES;
//! SELECT gene WHERE family = 'F1' LIMIT 5;
//! SELECT gene WHERE name CONTAINS 'grpc';
//! ANNOTATE gene 'JW0013' 'related to yaaB under heat shock';
//! ANNOTATIONS gene 'JW0013';
//! PENDING;
//! VERIFY ATTACHMENT 3;    REJECT ATTACHMENT 4;
//! ACG;    PROFILE;
//! SAVE 'dump';            LOAD 'dump';
//! ```
//!
//! Commands are case-insensitive; the trailing semicolon is optional.
//! [`Shell::exec`] returns the rendered response, so the REPL example is a
//! thin stdin loop and tests drive the shell directly.

use crate::prelude::*;
use nebula_core::{CommitRule, MutationSink, StabilityConfig};
use nebula_replica::{Cluster, ClusterConfig, ClusterSink, SimTransport};
use relstore::{ConjunctiveQuery, Predicate};
use std::fmt;

/// Errors surfaced to the shell user.
#[derive(Debug)]
pub struct ShellError(pub String);

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ShellError {}

fn err(msg: impl Into<String>) -> ShellError {
    ShellError(msg.into())
}

/// The shell: owns the database, the annotation store, and the engine.
pub struct Shell {
    /// The relational database.
    pub db: Database,
    /// The annotation store.
    pub store: AnnotationStore,
    /// The proactive engine.
    pub nebula: Nebula,
    /// Worker-pool configuration used by ANNOTATE (see `SET WORKERS`).
    ingest: IngestConfig,
    /// The most recent ingest report, backing `SHOW HEALTH`.
    last_ingest: Option<IngestReport>,
    /// A second handle on the replication cluster while `SET REPLICAS`
    /// has one installed as the mutation sink (backs PROMOTE and
    /// SHOW REPLICATION / SHOW REPLICA).
    repl: Option<ClusterSink>,
    /// The sharded scatter-gather cluster while `SET SHARDS` is active
    /// (ANNOTATE routes through it; backs SHOW SHARDS).
    shards: Option<ShardCluster>,
    /// The paged storage backend while `SET STORAGE DISK` is active
    /// (rows and posting blocks page to disk; backs SHOW STORAGE).
    storage: Option<nebula_pagestore::PagedStorage>,
    /// Bundles captured by BACKUP this session (backs SHOW BACKUPS).
    backups: Vec<BackupRecord>,
    /// When the most recent BACKUP completed (backs the last-backup age
    /// in SHOW DURABILITY).
    last_backup: Option<std::time::Instant>,
}

/// One bundle captured by `BACKUP TO`, as `SHOW BACKUPS` reports it.
#[derive(Debug, Clone)]
struct BackupRecord {
    seq: u64,
    dir: String,
    oldest_lsn: u64,
    head_lsn: u64,
    files: usize,
    bytes: u64,
}

impl Shell {
    /// Shell over an existing stack. Turns on global telemetry so
    /// `SHOW METRICS` and `EXPLAIN ANNOTATION` have data to report.
    pub fn new(db: Database, store: AnnotationStore, nebula: Nebula) -> Shell {
        nebula_obs::set_enabled(true);
        nebula_obs::trace::set_enabled(true);
        // One worker by default: the shell is interactive, and `SET
        // WORKERS <n>` raises the pool when a session wants concurrency.
        let ingest = IngestConfig { workers: 1, ..IngestConfig::default() };
        Shell {
            db,
            store,
            nebula,
            ingest,
            last_ingest: None,
            repl: None,
            shards: None,
            storage: None,
            backups: Vec::new(),
            last_backup: None,
        }
    }

    /// Shell over a freshly generated synthetic dataset.
    pub fn with_dataset(spec: &DatasetSpec, seed: u64) -> Shell {
        let bundle = generate_dataset(spec, seed);
        let mut nebula = Nebula::new(
            NebulaConfig {
                bounds: VerificationBounds::new(0.4, 0.85),
                stability: StabilityConfig::default(),
                ..Default::default()
            },
            bundle.meta.clone(),
        );
        nebula.bootstrap_acg(&bundle.annotations);
        Shell::new(bundle.db, bundle.annotations, nebula)
    }

    /// Execute one command line, returning the rendered response.
    pub fn exec(&mut self, line: &str) -> Result<String, ShellError> {
        let cleaned = line.trim().trim_end_matches(';').trim();
        if cleaned.is_empty() {
            return Ok(String::new());
        }
        let tokens = lex(cleaned)?;
        let verb = tokens.first().ok_or_else(|| err("empty command"))?.to_uppercase();
        match verb.as_str() {
            "HELP" => Ok(HELP.to_string()),
            "TABLES" => self.tables(),
            "SELECT" => self.select(&tokens[1..]),
            "DELETE" => self.delete(&tokens[1..]),
            "ANNOTATE" => self.annotate(&tokens[1..]),
            "ANNOTATIONS" => self.annotations(&tokens[1..]),
            "PENDING" => self.pending(),
            "VERIFY" | "REJECT" => self.resolve(cleaned),
            "ACG" => Ok(format!(
                "ACG: {} nodes, {} edges, stable = {}",
                self.nebula.acg().node_count(),
                self.nebula.acg().edge_count(),
                self.nebula.acg().is_stable()
            )),
            "PROFILE" => {
                let p = self.nebula.profile();
                let rows: Vec<String> = p
                    .iter()
                    .map(|(h, c)| format!("  {h} hops: {c} ({:.0}%)", p.coverage(h) * 100.0))
                    .collect();
                Ok(if rows.is_empty() {
                    "profile: empty".into()
                } else {
                    format!("profile ({} points):\n{}", p.total(), rows.join("\n"))
                })
            }
            "SAVE" => self.save(&tokens[1..]),
            "LOAD" => self.load(&tokens[1..]),
            "CHECKPOINT" => self.checkpoint(),
            "RECOVER" => self.recover(&tokens[1..]),
            "BACKUP" => self.backup(&tokens[1..]),
            "RESTORE" => self.restore(&tokens[1..]),
            "PROMOTE" => self.promote(&tokens[1..]),
            "SCRUB" => self.scrub(&tokens[1..]),
            "REJOIN" => self.rejoin(&tokens[1..]),
            "SET" => self.set(&tokens[1..]),
            "SHOW" => self.show(&tokens[1..]),
            "EXPLAIN" => self.explain(&tokens[1..]),
            "TRACE" => self.trace(&tokens[1..]),
            other => Err(err(format!("unknown command `{other}` — try HELP"))),
        }
    }

    fn tables(&self) -> Result<String, ShellError> {
        let mut out = Vec::new();
        for (tid, name) in self.db.catalog().iter() {
            let table = self.db.table(tid).expect("catalog consistent");
            let cols: Vec<&str> =
                table.schema().iter_columns().map(|(_, d)| d.name.as_str()).collect();
            out.push(format!("{name} ({} rows): {}", table.len(), cols.join(", ")));
        }
        Ok(out.join("\n"))
    }

    /// `SELECT <table> [COLUMNS a,b,...] [WHERE <col> (=|CONTAINS) <val>]*
    /// [ORDER BY <col> [ASC|DESC]] [LIMIT n]`
    fn select(&self, args: &[String]) -> Result<String, ShellError> {
        use relstore::{Order, SelectStatement};
        let table_name = args.first().ok_or_else(|| err("SELECT needs a table"))?;
        let tid = self
            .db
            .catalog()
            .resolve(table_name)
            .ok_or_else(|| err(format!("unknown table `{table_name}`")))?;
        let schema = self.db.table(tid).expect("resolved").schema().clone();
        let column = |name: &str| {
            schema.column_id(name).ok_or_else(|| err(format!("unknown column `{name}`")))
        };

        let mut stmt = SelectStatement::new(ConjunctiveQuery::scan(tid)).limit(20);
        let mut i = 1;
        while i < args.len() {
            match args[i].to_uppercase().as_str() {
                "COLUMNS" => {
                    let list = args.get(i + 1).ok_or_else(|| err("COLUMNS needs a list"))?;
                    let cols =
                        list.split(',').map(|c| column(c.trim())).collect::<Result<Vec<_>, _>>()?;
                    stmt = stmt.project(cols);
                    i += 2;
                }
                "WHERE" | "AND" => {
                    let col = args.get(i + 1).ok_or_else(|| err("WHERE needs a column"))?;
                    let op = args.get(i + 2).ok_or_else(|| err("WHERE needs an operator"))?;
                    let val = args.get(i + 3).ok_or_else(|| err("WHERE needs a value"))?;
                    let cid = column(col)?;
                    let ty = schema.column(cid).expect("resolved").data_type;
                    let pred = match op.to_uppercase().as_str() {
                        "=" => {
                            let value = relstore::Value::parse_as(val, ty)
                                .ok_or_else(|| err(format!("`{val}` is not a {ty}")))?;
                            Predicate::Eq(cid, value)
                        }
                        "CONTAINS" => Predicate::ContainsToken(cid, val.to_lowercase()),
                        other => return Err(err(format!("unknown operator `{other}`"))),
                    };
                    stmt.query = stmt.query.clone().with_predicate(pred);
                    i += 4;
                }
                "ORDER" => {
                    if args.get(i + 1).map(|s| s.to_uppercase()) != Some("BY".into()) {
                        return Err(err("expected ORDER BY <col>"));
                    }
                    let col = args.get(i + 2).ok_or_else(|| err("ORDER BY needs a column"))?;
                    let cid = column(col)?;
                    let (order, skip) = match args.get(i + 3).map(|s| s.to_uppercase()) {
                        Some(s) if s == "DESC" => (Order::Desc, 4),
                        Some(s) if s == "ASC" => (Order::Asc, 4),
                        _ => (Order::Asc, 3),
                    };
                    stmt = stmt.order_by(cid, order);
                    i += skip;
                }
                "LIMIT" => {
                    let n = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("LIMIT needs a number"))?;
                    stmt = stmt.limit(n);
                    i += 2;
                }
                other => return Err(err(format!("unexpected token `{other}`"))),
            }
        }
        let result = stmt.execute(&self.db).map_err(|e| err(e.to_string()))?;
        let mut out = vec![result.columns.join(" | ")];
        for row in &result.rows {
            // Cell-level annotations respect the projection, exactly as
            // query-time propagation does.
            let notes =
                annostore::propagate(&self.store, &[row.tuple], result.projection.as_deref())
                    .pop()
                    .map(|p| p.annotations.len())
                    .unwrap_or(0);
            let cells: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            out.push(format!("{}  [{notes} annotations]", cells.join(" | ")));
        }
        out.push(format!("({} rows)", result.rows.len()));
        Ok(out.join("\n"))
    }

    /// `DELETE <table> '<pk>'` — delete the row and clean every annotation
    /// layer (edges, ACG, pending tasks).
    fn delete(&mut self, args: &[String]) -> Result<String, ShellError> {
        let [table, key] = args else {
            return Err(err("usage: DELETE <table> '<pk>'"));
        };
        if self.shards.is_some() {
            return Err(err(
                "DELETE is unavailable while SET SHARDS is active — SET SHARDS OFF first",
            ));
        }
        let tuple = self.resolve_key(table, key)?;
        // Log before apply: the deletion reaches the WAL (when durability
        // is on) before either store mutates.
        let affected =
            self.nebula.on_tuple_deleted(&mut self.store, tuple).map_err(|e| err(e.to_string()))?;
        self.db.delete(tuple);
        Ok(format!("deleted {table} '{key}'; {} annotation(s) lost an attachment", affected.len()))
    }

    /// Resolve `<table> '<pk>'` to a live tuple id.
    fn resolve_key(&self, table: &str, key: &str) -> Result<relstore::TupleId, ShellError> {
        let tid = self
            .db
            .catalog()
            .resolve(table)
            .ok_or_else(|| err(format!("unknown table `{table}`")))?;
        let t = self.db.table(tid).expect("resolved");
        let pk_type = t
            .schema()
            .primary_key
            .and_then(|pk| t.schema().column(pk))
            .map(|d| d.data_type)
            .ok_or_else(|| err(format!("table `{table}` has no primary key")))?;
        let key_value = relstore::Value::parse_as(key, pk_type)
            .ok_or_else(|| err(format!("`{key}` is not a valid key")))?;
        t.lookup_key(&key_value).ok_or_else(|| err(format!("no `{table}` row with key `{key}`")))
    }

    /// `ANNOTATE <table> '<pk>' '<text>'` — attach a new annotation and run
    /// the proactive pipeline through the ingest worker pool (sized by
    /// `SET WORKERS`; `SHOW HEALTH` reports on the run afterwards).
    fn annotate(&mut self, args: &[String]) -> Result<String, ShellError> {
        let [table, key, text] = args else {
            return Err(err("usage: ANNOTATE <table> '<pk>' '<text>'"));
        };
        let focal = self.resolve_key(table, key)?;

        if let Some(cluster) = &mut self.shards {
            let annotation = Annotation::new(text.clone());
            let outcome = cluster.ingest(&annotation, &[focal]).map_err(|e| err(e.to_string()))?;
            // Mirror the merged shard state back into the shell's store so
            // ANNOTATIONS / SELECT keep reading the single source of truth.
            self.store = cluster.merged_store().map_err(|e| err(e.to_string()))?;
            let mut out = vec![format!(
                "annotation {} attached to {table} '{key}' via shard {}; {} queries generated",
                outcome.annotation,
                cluster.router().route(&[focal]),
                outcome.queries.len()
            )];
            for (t, conf) in &outcome.accepted {
                out.push(format!(
                    "  auto-accepted (conf {conf:.2}): {}",
                    self.db.get(*t).expect("live").render()
                ));
            }
            if !outcome.pending.is_empty() {
                out.push(format!(
                    "  {} candidates pending expert verification on their home shard",
                    outcome.pending.len()
                ));
            }
            if !outcome.rejected.is_empty() {
                out.push(format!(
                    "  {} low-confidence candidates auto-rejected",
                    outcome.rejected.len()
                ));
            }
            for d in &outcome.degradations {
                out.push(format!("  degraded: {d}"));
            }
            return Ok(out.join("\n"));
        }

        let item = IngestItem::new(Annotation::new(text.clone()), vec![focal]);
        let report =
            ingest_batch(&mut self.nebula, &self.db, &mut self.store, &[item], &self.ingest);
        let result = self.render_annotate(&report, table, key);
        self.last_ingest = Some(report);
        result
    }

    /// Render the single-item ingest report behind ANNOTATE. Sheds and
    /// quarantines surface as shell errors (the session survives either
    /// way); clean commits render the familiar outcome summary.
    fn render_annotate(
        &self,
        report: &IngestReport,
        table: &str,
        key: &str,
    ) -> Result<String, ShellError> {
        if let Some(shed) = report.sheds.first() {
            return Err(err(format!("annotation shed ({})", shed.reason)));
        }
        let entry = report.batch.entries.first().ok_or_else(|| err("ingest produced no result"))?;
        if let Some(reason) = &entry.quarantine {
            return Err(err(reason.to_string()));
        }
        let outcome =
            entry.outcome.as_ref().ok_or_else(|| err("ingest entry carries no outcome"))?;
        let mut out = vec![format!(
            "annotation {} attached to {table} '{key}'; {} queries generated",
            outcome.annotation,
            outcome.queries.len()
        )];
        for (t, conf) in &outcome.accepted {
            out.push(format!(
                "  auto-accepted (conf {conf:.2}): {}",
                self.db.get(*t).expect("live").render()
            ));
        }
        for vid in &outcome.pending {
            let task = self.nebula.queue().get(*vid).expect("queued");
            out.push(format!(
                "  pending task {vid} (conf {:.2}): {}",
                task.confidence,
                self.db.get(task.tuple).expect("live").render()
            ));
        }
        if !outcome.rejected.is_empty() {
            out.push(format!(
                "  {} low-confidence candidates auto-rejected",
                outcome.rejected.len()
            ));
        }
        for d in &outcome.degradations {
            out.push(format!("  degraded: {d}"));
        }
        Ok(out.join("\n"))
    }

    /// `ANNOTATIONS <table> '<pk>'`
    fn annotations(&self, args: &[String]) -> Result<String, ShellError> {
        let [table, key] = args else {
            return Err(err("usage: ANNOTATIONS <table> '<pk>'"));
        };
        let tuple = self.resolve_key(table, key)?;
        let notes = self.store.annotations_of(tuple);
        if notes.is_empty() {
            return Ok("(no annotations)".into());
        }
        Ok(notes
            .iter()
            .map(|aid| {
                let a = self.store.annotation(*aid).expect("stored");
                let who = a.author.as_deref().unwrap_or("-");
                format!("{aid} [{who}]: {}", a.text)
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }

    fn pending(&self) -> Result<String, ShellError> {
        if self.nebula.queue().is_empty() {
            return Ok("(no pending verification tasks)".into());
        }
        Ok(self
            .nebula
            .queue()
            .iter()
            .map(|task| {
                let target = self
                    .db
                    .get(task.tuple)
                    .map(|t| t.render())
                    .unwrap_or_else(|| task.tuple.to_string());
                format!(
                    "task {} (conf {:.2}): attach {} to {target}\n    evidence: {}",
                    task.vid,
                    task.confidence,
                    task.annotation,
                    task.evidence.join("; ")
                )
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }

    fn resolve(&mut self, line: &str) -> Result<String, ShellError> {
        let task =
            self.nebula.execute_command(&mut self.store, line).map_err(|e| err(e.to_string()))?;
        Ok(format!("task {} resolved ({} ↔ {})", task.vid, task.annotation, task.tuple))
    }

    /// `SET BUDGET ... | SET FAULTS ... | SET DURABILITY ... |
    /// SET REPLICAS ... | SET WORKERS <n>` — configure the execution
    /// budget on the engine, the fault plan on this thread, write-ahead
    /// durability or WAL-shipping replication on the engine, or the
    /// ingest worker-pool size.
    fn set(&mut self, args: &[String]) -> Result<String, ShellError> {
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("BUDGET") => self.set_budget(&args[1..]),
            Some("FAULTS") => self.set_faults(&args[1..]),
            Some("DURABILITY") => self.set_durability(&args[1..]),
            Some("REPLICAS") => self.set_replicas(&args[1..]),
            Some("WORKERS") => self.set_workers(&args[1..]),
            Some("SHARDS") => self.set_shards(&args[1..]),
            Some("STORAGE") => self.set_storage(&args[1..]),
            Some("ARCHIVE") => self.set_archive(&args[1..]),
            _ => Err(err("usage: SET BUDGET ... | SET FAULTS ... | SET DURABILITY ... | \
                 SET REPLICAS ... | SET WORKERS <n> | SET SHARDS <n> | OFF | \
                 SET STORAGE DISK '<dir>' [POOL <frames>] | MEM | SET ARCHIVE '<dir>'")),
        }
    }

    /// `SET STORAGE DISK '<dir>' [POOL <frames>] | MEM` — rebuild the
    /// database onto the crash-safe paged backend rooted at `<dir>`
    /// (rows and inverted-index posting blocks move into a checksummed
    /// page file behind a buffer pool of `<frames>` pages), or back into
    /// RAM. The logical content is identical either way: the snapshot
    /// fingerprint cannot tell the backends apart.
    fn set_storage(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: SET STORAGE DISK '<dir>' [POOL <frames>] | MEM";
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("MEM") => {
                let Some(old) = self.storage.take() else {
                    return Ok("storage: already mem".into());
                };
                old.flush_pages().map_err(|e| err(e.to_string()))?;
                let bytes = relstore::snapshot::save(&self.db);
                self.db = relstore::snapshot::load(&bytes).map_err(|e| err(e.to_string()))?;
                Ok("storage: mem (rows and postings rebuilt in RAM; \
                    page file keeps its last flushed state)"
                    .into())
            }
            Some("DISK") => {
                if self.shards.is_some() {
                    return Err(err("SET STORAGE needs SET SHARDS OFF first"));
                }
                let dir = args.get(1).ok_or_else(|| err(USAGE))?;
                let mut frames = nebula_pagestore::pool::DEFAULT_FRAMES;
                if let Some(tok) = args.get(2) {
                    if tok.to_uppercase() != "POOL" {
                        return Err(err(USAGE));
                    }
                    frames = args
                        .get(3)
                        .and_then(|s| s.parse().ok())
                        .filter(|n: &usize| *n >= nebula_pagestore::pool::MIN_FRAMES)
                        .ok_or_else(|| {
                            err(format!(
                                "POOL needs a frame count >= {}",
                                nebula_pagestore::pool::MIN_FRAMES
                            ))
                        })?;
                }
                let store = nebula_pagestore::PagedStorage::open(std::path::Path::new(dir), frames)
                    .map_err(|e| err(e.to_string()))?;
                let bytes = relstore::snapshot::save(&self.db);
                self.db =
                    relstore::snapshot::load_with(&bytes, Some(std::sync::Arc::new(store.clone())))
                        .map_err(|e| err(e.to_string()))?;
                store.flush_pages().map_err(|e| err(e.to_string()))?;
                let m = store.metrics();
                self.storage = Some(store);
                Ok(format!(
                    "storage: disk ({dir}, pool {frames} frames); \
                     {} pages flushed at watermark {}",
                    m.page_count, m.watermark
                ))
            }
            _ => Err(err(USAGE)),
        }
    }

    /// `SET SHARDS <n> | OFF` — partition the engine into `n` shards
    /// behind the deterministic focal-hash router (ANNOTATE then
    /// scatter-gathers keyword search across them), or collapse the
    /// merged shard state back onto the single-engine path.
    fn set_shards(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: SET SHARDS <n>  (n >= 1) | OFF";
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("OFF") => match self.shards.take() {
                Some(cluster) => {
                    self.store = cluster.merged_store().map_err(|e| err(e.to_string()))?;
                    Ok(format!(
                        "shards: off ({} shard slices merged back into one store)",
                        cluster.shards()
                    ))
                }
                None => Ok("shards: already off".into()),
            },
            Some(tok) => {
                if self.nebula.mutation_sink().is_some() {
                    return Err(err("SET SHARDS needs the single-engine sink detached first — \
                         run SET DURABILITY OFF / SET REPLICAS OFF"));
                }
                let n: usize =
                    tok.parse().ok().filter(|n: &usize| *n >= 1).ok_or_else(|| err(USAGE))?;
                let cluster = ShardCluster::new(
                    &self.db,
                    &self.store,
                    self.nebula.meta(),
                    self.nebula.config(),
                    ShardConfig::new(n),
                )
                .map_err(|e| err(e.to_string()))?;
                let shards = cluster.shards();
                self.shards = Some(cluster);
                Ok(format!(
                    "shards: {shards} (focal-hash router over {} slots; \
                     ANNOTATE now scatter-gathers)",
                    nebula_ingest::SLOTS
                ))
            }
            None => Err(err(USAGE)),
        }
    }

    /// `SET WORKERS <n>` — size the worker pool ANNOTATE runs through.
    /// Any positive count gives byte-identical results for a fixed fault
    /// seed; more workers only change how overload is absorbed.
    fn set_workers(&mut self, args: &[String]) -> Result<String, ShellError> {
        let n: usize = args
            .first()
            .and_then(|s| s.parse().ok())
            .filter(|n| *n > 0)
            .ok_or_else(|| err("usage: SET WORKERS <n>  (n >= 1)"))?;
        self.ingest.workers = n;
        Ok(format!("workers: {n}"))
    }

    /// `SET DURABILITY '<dir>' [EVERY <n>] [SYNC BATCH] [ARCHIVE '<adir>']
    /// | OFF` — start logging every pipeline mutation to a write-ahead
    /// log in `<dir>` (checkpointing every `<n>` records, archiving
    /// sealed segments into `<adir>` for BACKUP), or detach the log.
    fn set_durability(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str =
            "usage: SET DURABILITY '<dir>' [EVERY <n>] [SYNC BATCH] [ARCHIVE '<adir>'] | OFF";
        let first = args.first().ok_or_else(|| err(USAGE))?;
        if first.to_uppercase() == "OFF" {
            self.repl = None;
            return match self.nebula.take_mutation_sink() {
                Some(_) => Ok("durability: off (log closed; directory keeps its state)".into()),
                None => Ok("durability: already off".into()),
            };
        }
        if self.shards.is_some() {
            return Err(err("SET DURABILITY needs SET SHARDS OFF first"));
        }
        let mut options = DurabilityOptions::default();
        let mut archive: Option<String> = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].to_uppercase().as_str() {
                "ARCHIVE" => {
                    let dir = args.get(i + 1).ok_or_else(|| err("ARCHIVE needs a directory"))?;
                    archive = Some(dir.clone());
                    i += 2;
                }
                "EVERY" => {
                    let n: usize = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or_else(|| err("EVERY needs a positive number"))?;
                    options.checkpoint_every = Some(n);
                    i += 2;
                }
                "SYNC" => {
                    match args.get(i + 1).map(|s| s.to_uppercase()).as_deref() {
                        Some("BATCH") => options.sync = SyncPolicy::Batch,
                        Some("EVERY") => options.sync = SyncPolicy::EveryRecord,
                        _ => return Err(err("usage: SYNC BATCH | SYNC EVERY")),
                    }
                    i += 2;
                }
                _ => return Err(err(USAGE)),
            }
        }
        let mut durability =
            Durability::begin(std::path::Path::new(first), &self.db, &self.store, options)
                .map_err(|e| err(e.to_string()))?;
        if let Some(adir) = &archive {
            durability
                .set_archive(std::path::Path::new(adir), 1)
                .map_err(|e| err(e.to_string()))?;
        }
        let summary =
            format!("durability: on ({}); initial checkpoint written", durability.describe());
        self.repl = None;
        self.nebula.set_mutation_sink(Some(Box::new(durability)));
        Ok(summary)
    }

    /// `SET ARCHIVE '<dir>'` — start archiving the installed sink's
    /// sealed WAL segments (and a base checkpoint) into `<dir>`. Works on
    /// both the single-log sink and the replicated cluster; BACKUP needs
    /// this on so a restorable history exists to bundle.
    fn set_archive(&mut self, args: &[String]) -> Result<String, ShellError> {
        let dir = args.first().ok_or_else(|| err("usage: SET ARCHIVE '<dir>'"))?;
        let sink = self.nebula.mutation_sink_mut().ok_or_else(|| {
            err("durability is off — SET DURABILITY '<dir>' or SET REPLICAS first")
        })?;
        sink.set_archive(std::path::Path::new(dir)).map_err(|e| err(e.to_string()))?;
        Ok(format!(
            "archive: on ('{dir}'); every checkpoint seals its WAL run there before truncating"
        ))
    }

    /// `BACKUP TO '<dir>'` — checkpoint the sink (sealing the live WAL
    /// run into the archive) and capture a verified bundle: base
    /// checkpoints, archived segments, and a signed manifest of per-file
    /// digests. The bundle restores on a machine that never saw this one.
    fn backup(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: BACKUP TO '<dir>'";
        if args.first().map(|s| s.to_uppercase()).as_deref() != Some("TO") {
            return Err(err(USAGE));
        }
        let dir = args.get(1).ok_or_else(|| err(USAGE))?.clone();
        let sink = self.nebula.mutation_sink_mut().ok_or_else(|| {
            err("durability is off — SET DURABILITY '<dir>' ARCHIVE '<adir>' first")
        })?;
        let archive_dir = sink.archive_dir().ok_or_else(|| {
            err("archiving is off — SET ARCHIVE '<dir>' first (BACKUP bundles the archive)")
        })?;
        sink.checkpoint(&self.db, &self.store).map_err(|e| err(e.to_string()))?;
        let seq = self.backups.len() as u64 + 1;
        let spec = BundleSpec {
            archive_dir,
            bundle_dir: std::path::PathBuf::from(&dir),
            pages: None,
            created_seq: seq,
        };
        let manifest = nebula_backup::create_bundle(&spec).map_err(|e| err(e.to_string()))?;
        let bytes: u64 = manifest.entries.iter().map(|e| e.len).sum();
        let record = BackupRecord {
            seq,
            dir,
            oldest_lsn: manifest.oldest_lsn,
            head_lsn: manifest.head_lsn,
            files: manifest.entries.len(),
            bytes,
        };
        let summary = format!(
            "backup: captured '{}' — restorable lsn range [{}, {}], {} file(s), {} bytes (seq {})",
            record.dir, record.oldest_lsn, record.head_lsn, record.files, record.bytes, record.seq
        );
        self.backups.push(record);
        self.last_backup = Some(std::time::Instant::now());
        Ok(summary)
    }

    /// `RESTORE FROM '<dir>' [AS OF LSN <n>]` — verify the bundle against
    /// its signed manifest, rebuild the state from the newest bundled
    /// checkpoint at or below the target, and replay archived WAL to the
    /// target LSN (the bundle's head when no AS OF is given). Replaces
    /// the live db/store and rebuilds the ACG; any installed sink is
    /// detached so the restored state is not logged over the old history.
    fn restore(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: RESTORE FROM '<dir>' [AS OF LSN <n>]";
        if args.first().map(|s| s.to_uppercase()).as_deref() != Some("FROM") {
            return Err(err(USAGE));
        }
        let dir = args.get(1).ok_or_else(|| err(USAGE))?;
        let as_of = match args.get(2) {
            None => None,
            Some(tok)
                if tok.to_uppercase() == "AS"
                    && args.get(3).map(|s| s.to_uppercase()).as_deref() == Some("OF")
                    && args.get(4).map(|s| s.to_uppercase()).as_deref() == Some("LSN") =>
            {
                let n: u64 = args
                    .get(5)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("AS OF LSN needs a number"))?;
                Some(n)
            }
            _ => return Err(err(USAGE)),
        };
        if self.shards.is_some() {
            return Err(err("RESTORE needs SET SHARDS OFF first"));
        }
        let restored = nebula_backup::restore(std::path::Path::new(dir), as_of)
            .map_err(|e| err(e.to_string()))?;
        self.repl = None;
        let detached = self.nebula.take_mutation_sink().is_some();
        self.db = restored.db;
        self.store = restored.store;
        self.nebula.bootstrap_acg(&self.store);
        let fenced = if restored.fenced > 0 {
            format!(", {} fenced (deposed-epoch records refused)", restored.fenced)
        } else {
            String::new()
        };
        let mut out = vec![format!(
            "restored to lsn {} from '{dir}' (manifest verified; base watermark {}, \
             {} replayed, {} skipped{fenced}); {} tuples, {} annotations; ACG rebuilt",
            restored.applied,
            restored.base_watermark,
            restored.replayed,
            restored.skipped,
            self.db.total_tuples(),
            self.store.annotation_count(),
        )];
        if detached {
            out.push(
                "  durability sink detached — SET DURABILITY into a fresh directory to \
                 resume logging"
                    .into(),
            );
        }
        Ok(out.join("\n"))
    }

    /// `SET REPLICAS <n> '<dir>' [QUORUM <q>] [NETFAULTS <seed> <rate>]
    /// | OFF` — stand up a single-primary WAL-shipping cluster with `n`
    /// replicas rooted at `<dir>` and route every pipeline mutation
    /// through it, optionally demanding `q` acknowledgements per record
    /// (ack-quorum) and injecting seeded transport faults. OFF detaches
    /// the cluster.
    fn set_replicas(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str =
            "usage: SET REPLICAS <n> '<dir>' [QUORUM <q>] [NETFAULTS <seed> <rate>] | OFF";
        let first = args.first().ok_or_else(|| err(USAGE))?;
        if first.to_uppercase() == "OFF" {
            self.repl = None;
            return match self.nebula.take_mutation_sink() {
                Some(_) => {
                    Ok("replication: off (cluster detached; directories keep their state)".into())
                }
                None => Ok("replication: already off".into()),
            };
        }
        if self.shards.is_some() {
            return Err(err("SET REPLICAS needs SET SHARDS OFF first"));
        }
        let n: usize = first
            .parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| err("SET REPLICAS needs a replica count >= 1"))?;
        let dir = args.get(1).ok_or_else(|| err(USAGE))?;
        let mut config = ClusterConfig::default();
        let mut plan: Option<FaultPlan> = None;
        let mut i = 2;
        while i < args.len() {
            match args[i].to_uppercase().as_str() {
                "QUORUM" => {
                    let q: usize = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|q| (1..=n).contains(q))
                        .ok_or_else(|| {
                            err("QUORUM needs a count between 1 and the replica count")
                        })?;
                    config.rule = CommitRule::Quorum(q);
                    i += 2;
                }
                "NETFAULTS" => {
                    let seed: u64 = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("NETFAULTS needs a seed"))?;
                    let rate: f64 = args
                        .get(i + 2)
                        .and_then(|s| s.parse().ok())
                        .filter(|r| (0.0..=1.0).contains(r))
                        .ok_or_else(|| err("NETFAULTS needs a rate in [0, 1]"))?;
                    plan = Some(FaultPlan::new(seed).with_net(rate, rate, rate, rate));
                    i += 3;
                }
                _ => return Err(err(USAGE)),
            }
        }
        // Node 0 is the primary; replicas are nodes 1..=n.
        let transport: Box<SimTransport> = match plan {
            Some(p) => Box::new(SimTransport::new(n + 1, p)),
            None => Box::new(SimTransport::reliable(n + 1)),
        };
        let cluster =
            Cluster::new(std::path::Path::new(dir), &self.db, &self.store, n, transport, config)
                .map_err(|e| err(e.to_string()))?;
        let st = cluster.status();
        let summary = format!(
            "replication: on (epoch {} rule {} replicas {}); bootstrap checkpoints shipped",
            st.epoch, st.rule, st.replicas
        );
        let sink = ClusterSink::new(cluster);
        self.repl = Some(sink.handle());
        self.nebula.set_mutation_sink(Some(Box::new(sink)));
        Ok(summary)
    }

    /// `PROMOTE [<id>]` — deterministic failover: promote replica `id`
    /// (or the best live candidate) to primary under a bumped epoch, then
    /// rebase the shell's live state onto the new primary. Any suffix the
    /// old primary held beyond the promoted replica's applied LSN is
    /// discarded — that is the failover contract — and the deposed
    /// primary's future writes are fenced.
    fn promote(&mut self, args: &[String]) -> Result<String, ShellError> {
        let sink = self
            .repl
            .as_ref()
            .ok_or_else(|| err("replication is off — SET REPLICAS <n> '<dir>' first"))?
            .handle();
        let image;
        let id;
        let epoch;
        let applied;
        {
            let mut cluster = sink.lock();
            id = match args.first() {
                Some(tok) => {
                    tok.parse().map_err(|_| err(format!("`{tok}` is not a replica id")))?
                }
                None => cluster
                    .best_failover_candidate()
                    .ok_or_else(|| err("no live replica to promote"))?,
            };
            cluster.promote(id).map_err(|e| err(e.to_string()))?;
            let (db, store) = cluster.primary().shadow();
            image = nebula_durable::checkpoint::encode(0, db, store);
            epoch = cluster.primary().epoch();
            applied = cluster.primary().last_lsn();
        }
        let (_, db, store) =
            nebula_durable::checkpoint::decode(&image).map_err(|e| err(e.to_string()))?;
        self.db = db;
        self.store = store;
        self.nebula.bootstrap_acg(&self.store);
        Ok(format!(
            "promoted replica {id} to primary (epoch {epoch}, lsn {applied}); \
             shell state rebased onto the new primary; ACG rebuilt"
        ))
    }

    /// `SHOW REPLICATION` — the cluster posture: epoch, commit rule,
    /// per-replica ack/ship positions, divergences, deposed primaries.
    fn show_replication(&self) -> Result<String, ShellError> {
        let Some(sink) = &self.repl else {
            return Ok("replication: off".into());
        };
        let cluster = sink.lock();
        let st = cluster.status();
        let mut out = vec![format!(
            "replication: epoch {} rule {} ({} replica(s), {} wedged) max lag {}{}",
            st.epoch,
            st.rule,
            st.replicas,
            st.wedged_replicas,
            st.max_lag,
            if st.lag_budget_exceeded { "  LAGGING" } else { "" },
        )];
        out.push(format!(
            "  primary: node {} at lsn {}",
            cluster.primary().node(),
            cluster.primary().last_lsn()
        ));
        out.push(format!("  transport: {}", cluster.describe_transport()));
        for row in cluster.primary().peer_rows() {
            out.push(format!(
                "  replica {}: acked lsn {} / shipped {}{}",
                row.id,
                row.acked,
                row.shipped,
                if row.wedged { "  WEDGED" } else { "" },
            ));
        }
        for d in cluster.primary().divergences() {
            out.push(format!(
                "  divergence: replica {} at lsn {} (expected {:?}, observed {:?}, epoch {})",
                d.replica, d.lsn, d.expected, d.observed, d.epoch
            ));
        }
        if !cluster.deposed().is_empty() {
            let epochs: Vec<String> =
                cluster.deposed().iter().map(|p| format!("epoch {}", p.epoch())).collect();
            out.push(format!("  deposed primaries: {}", epochs.join(", ")));
        }
        Ok(out.join("\n"))
    }

    /// `SHOW REPLICA <id> [STALENESS <n>]` — a bounded-staleness read
    /// against one replica: succeeds only if the replica is live and
    /// within `n` LSNs of the primary (unbounded without STALENESS).
    fn show_replica(&self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: SHOW REPLICA <id> [STALENESS <n>]";
        let sink = self
            .repl
            .as_ref()
            .ok_or_else(|| err("replication is off — SET REPLICAS <n> '<dir>' first"))?;
        let id: usize = args.first().and_then(|s| s.parse().ok()).ok_or_else(|| err(USAGE))?;
        let bound = match args.get(1).map(|s| s.to_uppercase()).as_deref() {
            Some("STALENESS") => args
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("STALENESS needs a number"))?,
            Some(_) => return Err(err(USAGE)),
            None => u64::MAX,
        };
        let cluster = sink.lock();
        let r = cluster
            .replica(id)
            .ok_or_else(|| err(format!("no replica {id} — SHOW REPLICATION lists them")))?;
        let lag = cluster.primary().last_lsn().saturating_sub(r.applied());
        let (tuples, notes) = cluster
            .read_replica(id, bound, |db, store| (db.total_tuples(), store.annotation_count()))
            .map_err(|e| err(e.to_string()))?;
        Ok(format!(
            "replica {id}: epoch {} applied lsn {} (lag {lag}) — {tuples} tuples, \
             {notes} annotations ({} replayed, {} skipped, {} via checkpoint)",
            r.epoch(),
            r.applied(),
            r.records_replayed(),
            r.records_skipped(),
            r.applied_via_checkpoint(),
        ))
    }

    /// `SCRUB` — run one anti-entropy pass now: CRC-check the primary's
    /// on-disk WAL and checkpoints (healing found rot from the shadow
    /// state), walk the range-digest ladder against every live replica,
    /// and repair whatever the pass finds.
    /// Page-file half of SCRUB: a read-only CRC walk over every page.
    /// Single-bit rot (the common at-rest failure) is healed losslessly
    /// in place via CRC linearity; only pages with wider damage force a
    /// rebuild of a fresh, fully-checksummed file from the live state.
    /// In that last resort, rows whose only copy sat on an unrecoverable
    /// page degrade to NULL (counted in `relstore.storage_errors`)
    /// rather than poisoning the rebuild.
    fn scrub_pages(&mut self) -> Result<Vec<String>, ShellError> {
        let store = self.storage.clone().ok_or_else(|| err("storage is mem"))?;
        store.flush_pages().map_err(|e| err(e.to_string()))?;
        let report = store.scrub().map_err(|e| err(e.to_string()))?;
        if report.is_clean() {
            return Ok(vec![format!("pages: {} scanned, all checksums clean", report.pages)]);
        }
        let mut out = vec![format!(
            "pages: {} scanned, {} corrupt ({})",
            report.pages,
            report.corrupt.len(),
            report.corrupt.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
        )];
        let healed = store.repair().map_err(|e| err(e.to_string()))?;
        if !healed.repaired.is_empty() {
            out.push(format!(
                "pages: repaired {} in place (single-bit rot healed via CRC linearity: {})",
                healed.repaired.len(),
                healed.repaired.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
            ));
        }
        if healed.unrecoverable.is_empty() {
            return Ok(out);
        }
        out.push(format!(
            "pages: {} unrecoverable ({}) — rebuilding from live state",
            healed.unrecoverable.len(),
            healed.unrecoverable.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
        ));
        let frames = store.pool_frames();
        let dir = store.dir().to_path_buf();
        let bytes = relstore::snapshot::save(&self.db);
        drop(store);
        self.storage = None;
        std::fs::remove_file(dir.join(nebula_pagestore::file::FILE_NAME))
            .map_err(|e| err(e.to_string()))?;
        let fresh =
            nebula_pagestore::PagedStorage::open(&dir, frames).map_err(|e| err(e.to_string()))?;
        self.db = relstore::snapshot::load_with(&bytes, Some(std::sync::Arc::new(fresh.clone())))
            .map_err(|e| err(e.to_string()))?;
        fresh.flush_pages().map_err(|e| err(e.to_string()))?;
        let m = fresh.metrics();
        self.storage = Some(fresh);
        out.push(format!(
            "pages: repaired — rebuilt a clean file ({} pages at watermark {})",
            m.page_count, m.watermark
        ));
        Ok(out)
    }

    fn scrub(&mut self, args: &[String]) -> Result<String, ShellError> {
        if args.first().map(|s| s.to_uppercase()).as_deref() == Some("BACKUP") {
            let dir = args.get(1).ok_or_else(|| err("usage: SCRUB BACKUP '<dir>'"))?;
            return self.scrub_backup(dir);
        }
        let mut out = Vec::new();
        if self.storage.is_some() {
            out.extend(self.scrub_pages()?);
            if self.repl.is_none() {
                return Ok(out.join("\n"));
            }
        }
        let sink = self
            .repl
            .as_ref()
            .ok_or_else(|| {
                err("replication is off — SET REPLICAS <n> '<dir>' first \
                 (or SET STORAGE DISK for a page-file scrub)")
            })?
            .handle();
        let mut cluster = sink.lock();
        let summary = cluster.scrub();
        out.push(format!(
            "scrub at lsn {}: media {}{}",
            summary.at_lsn,
            summary.media,
            if summary.media_healed { " — healed from shadow state" } else { "" },
        ));
        let mut to_repair = summary.wedged.clone();
        to_repair.extend(summary.diverged.iter().copied());
        to_repair.sort_unstable();
        to_repair.dedup();
        if to_repair.is_empty() {
            out.push("  replicas: all ladders agree".into());
        }
        for id in to_repair {
            match cluster.repair_replica(id) {
                Ok(r) => out.push(format!(
                    "  repaired replica {}: rewound {} lsn(s) past agreed lsn {} \
                     ({} probes, {} resynced, converged = {})",
                    r.replica, r.rewound, r.agreed, r.probes, r.resynced, r.converged,
                )),
                Err(e) => out.push(format!("  replica {id}: repair failed ({e})")),
            }
        }
        Ok(out.join("\n"))
    }

    /// `SCRUB BACKUP '<dir>'` — walk an archive or bundle re-deriving
    /// every CRC (and the manifest digests when one is present), so torn
    /// or rotten files surface before a restore needs them.
    fn scrub_backup(&mut self, dir: &str) -> Result<String, ShellError> {
        let report =
            nebula_backup::scrub(std::path::Path::new(dir)).map_err(|e| err(e.to_string()))?;
        let mut out = vec![format!(
            "backup scrub '{dir}': {} base(s) ok, {} segment(s) ok, {} bytes checked, \
             manifest {}",
            report.bases_ok,
            report.segments_ok,
            report.bytes_scrubbed,
            if report.manifest_checked { "verified" } else { "absent" },
        )];
        if report.is_clean() {
            out.push("  all files clean".into());
        }
        for c in &report.corrupt {
            out.push(format!("  CORRUPT {}: {}", c.path.display(), c.reason));
        }
        Ok(out.join("\n"))
    }

    /// `REJOIN <node>` — demote the deposed primary `node` to a replica of
    /// the current epoch: rewind its un-acked (fenced) suffix and re-sync
    /// it through the checkpoint catch-up path.
    fn rejoin(&mut self, args: &[String]) -> Result<String, ShellError> {
        let sink = self
            .repl
            .as_ref()
            .ok_or_else(|| err("replication is off — SET REPLICAS <n> '<dir>' first"))?
            .handle();
        let mut cluster = sink.lock();
        let node: usize = match args.first() {
            Some(tok) => tok.parse().map_err(|_| err(format!("`{tok}` is not a node id")))?,
            None => *cluster
                .deposed_nodes()
                .first()
                .ok_or_else(|| err("no deposed primary to rejoin — PROMOTE creates one"))?,
        };
        let r = cluster.rejoin(node).map_err(|e| err(e.to_string()))?;
        Ok(format!(
            "node {} rejoined epoch {} as a replica: rewound {} fenced lsn(s) \
             ({} ladder probes, converged = {})",
            r.node, r.epoch, r.rewound, r.probes, r.converged,
        ))
    }

    /// `RECOVER INGEST` — the operator half of the guarded Wedged exit:
    /// if the durability sink reports writable again, clear the wedged
    /// verdict so the next ANNOTATE dispatches instead of shedding.
    fn recover_ingest(&mut self) -> Result<String, ShellError> {
        let wedged = self.last_ingest.as_ref().is_some_and(|r| r.health == HealthState::Wedged);
        if !wedged {
            return Ok("ingest is not wedged — nothing to recover".into());
        }
        let sink_ok = self.nebula.mutation_sink().is_none_or(|sink| sink.healthy());
        if !sink_ok {
            return Err(err(
                "the durability layer is still wedged — CHECKPOINT rebuilds the log first",
            ));
        }
        if let Some(r) = &mut self.last_ingest {
            r.health = HealthState::Degraded;
        }
        nebula_obs::counter_add(nebula_ingest::counters::RECOVERED, 1);
        nebula_obs::trace::flight_event("health", "wedged -> degraded (operator)".to_string());
        Ok("ingest recovered: wedged -> degraded (the window must prove itself clean)".into())
    }

    /// `SHOW REPAIR` — the repair posture: scrub cadence results, pending
    /// repairs, completed repairs/rejoins, and divergence depths.
    fn show_repair(&self) -> Result<String, ShellError> {
        let Some(sink) = &self.repl else {
            return Ok("replication: off — no repair surface".into());
        };
        let cluster = sink.lock();
        let st = cluster.repair_status();
        let mut out = vec![format!(
            "repair: {} scrub(s), {} repair(s), {} rejoin(s)",
            st.scrubs, st.repairs, st.rejoins
        )];
        match st.last_scrub_lsn {
            Some(lsn) => out.push(format!("  last scrub: lsn {lsn}")),
            None => out.push("  last scrub: never".into()),
        }
        if let Some(s) = cluster.last_scrub() {
            out.push(format!(
                "    media {}; {} diverged, {} wedged, {} probes",
                s.media,
                s.diverged.len(),
                s.wedged.len(),
                s.probes
            ));
        }
        if st.pending.is_empty() {
            out.push("  pending repairs: none".into());
        } else {
            let ids: Vec<String> = st.pending.iter().map(|id| format!("replica {id}")).collect();
            out.push(format!("  pending repairs: {}", ids.join(", ")));
        }
        out.push(format!(
            "  rewound {} lsn(s) total (deepest single divergence {}), {} ladder probes",
            st.total_rewound, st.max_divergence, st.ladder_probes
        ));
        let deposed = cluster.deposed_nodes();
        if !deposed.is_empty() {
            let ids: Vec<String> = deposed.iter().map(|n| format!("node {n}")).collect();
            out.push(format!("  deposed primaries awaiting REJOIN: {}", ids.join(", ")));
        }
        Ok(out.join("\n"))
    }

    /// `CHECKPOINT` — persist the full state now and truncate the log.
    fn checkpoint(&mut self) -> Result<String, ShellError> {
        let sink = self
            .nebula
            .mutation_sink_mut()
            .ok_or_else(|| err("durability is off — SET DURABILITY '<dir>' first"))?;
        let watermark = sink.checkpoint(&self.db, &self.store).map_err(|e| err(e.to_string()))?;
        Ok(format!("checkpoint committed (watermark lsn {watermark}); log truncated"))
    }

    /// `RECOVER '<dir>'` — replace the live state with the recovered
    /// checkpoint + log replay from `<dir>` and continue logging into it.
    /// `RECOVER INGEST` — clear a wedged ingest verdict instead.
    fn recover(&mut self, args: &[String]) -> Result<String, ShellError> {
        let path = args.first().ok_or_else(|| err("usage: RECOVER '<dir>' | RECOVER INGEST"))?;
        if path.to_uppercase() == "INGEST" {
            return self.recover_ingest();
        }
        let (durability, recovered) =
            Durability::resume(std::path::Path::new(path), DurabilityOptions::default())
                .map_err(|e| err(e.to_string()))?;
        self.db = recovered.db;
        self.store = recovered.store;
        self.nebula.bootstrap_acg(&self.store);
        self.repl = None;
        self.nebula.set_mutation_sink(Some(Box::new(durability)));
        let mut out = vec![format!(
            "recovered {} tuples, {} annotations from '{path}' \
             (watermark lsn {}, {} replayed, {} skipped); ACG rebuilt",
            self.db.total_tuples(),
            self.store.annotation_count(),
            recovered.watermark,
            recovered.replayed,
            recovered.skipped,
        )];
        if !recovered.tail.is_clean() {
            out.push(format!(
                "  torn tail repaired: {} record(s) / {} byte(s) dropped ({})",
                recovered.tail.dropped_records,
                recovered.tail.dropped_bytes,
                recovered.tail.reason.as_deref().unwrap_or("unknown reason"),
            ));
        }
        Ok(out.join("\n"))
    }

    /// `SET BUDGET DEADLINE <ms> | TUPLES <n> | CONFIGS <n> |
    /// CANDIDATES <n> | OFF` — limits accumulate across calls; OFF resets
    /// to unbounded.
    fn set_budget(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str =
            "usage: SET BUDGET DEADLINE <ms> | TUPLES <n> | CONFIGS <n> | CANDIDATES <n> | OFF";
        let budget = &mut self.nebula.config_mut().budget;
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("OFF") => {
                *budget = ExecutionBudget::unbounded();
                return Ok("budget: unbounded".into());
            }
            Some(dim @ ("DEADLINE" | "TUPLES" | "CONFIGS" | "CANDIDATES")) => {
                let n: u64 = args
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(format!("SET BUDGET {dim} needs a number")))?;
                match dim {
                    "DEADLINE" => {
                        budget.deadline = Some(std::time::Duration::from_millis(n));
                    }
                    "TUPLES" => budget.max_tuples_inspected = n as usize,
                    "CONFIGS" => budget.max_configurations = n as usize,
                    _ => budget.max_candidates = n as usize,
                }
            }
            _ => return Err(err(USAGE)),
        }
        Ok(format!("budget: {}", self.nebula.config().budget))
    }

    /// `SET FAULTS <seed> [RATE <r>] | HOSTILE <seed> | OFF` — install a
    /// deterministic fault plan on this thread (uniform at RATE, default
    /// 0.1), the always-firing hostile plan, or clear it.
    fn set_faults(&mut self, args: &[String]) -> Result<String, ShellError> {
        const USAGE: &str = "usage: SET FAULTS <seed> [RATE <r>] | HOSTILE <seed> | OFF";
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("OFF") => {
                nebula_govern::set_fault_plan(None);
                Ok("faults: off".into())
            }
            Some("HOSTILE") => {
                let seed: u64 = args
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("SET FAULTS HOSTILE needs a seed"))?;
                let plan = FaultPlan::hostile(seed);
                let desc = plan.describe();
                nebula_govern::set_fault_plan(Some(plan));
                Ok(format!("faults: {desc}"))
            }
            Some(_) => {
                let seed: u64 =
                    args[0].parse().map_err(|_| err(format!("`{}` is not a seed", args[0])))?;
                let rate = match args.get(1).map(|s| s.to_uppercase()).as_deref() {
                    Some("RATE") => args
                        .get(2)
                        .and_then(|s| s.parse::<f64>().ok())
                        .filter(|r| (0.0..=1.0).contains(r))
                        .ok_or_else(|| err("RATE needs a number in [0, 1]"))?,
                    Some(_) => return Err(err(USAGE)),
                    None => 0.1,
                };
                let plan = FaultPlan::uniform(seed, rate);
                let desc = plan.describe();
                nebula_govern::set_fault_plan(Some(plan));
                Ok(format!("faults: {desc}"))
            }
            None => Err(err(USAGE)),
        }
    }

    /// `SHOW METRICS | BUDGET | FAULTS | DURABILITY | HEALTH |
    /// REPLICATION | REPLICA <id>` — the telemetry snapshot, the
    /// configured execution budget, the installed fault plan and its
    /// injection tallies, the durability manager's state, the ingest
    /// health report, or the replication cluster posture.
    fn show(&self, args: &[String]) -> Result<String, ShellError> {
        match args.first().map(|s| s.to_uppercase()).as_deref() {
            Some("METRICS") => Ok(nebula_obs::snapshot().render_text()),
            Some("REPLICATION") => self.show_replication(),
            Some("REPLICA") => self.show_replica(&args[1..]),
            Some("REPAIR") => self.show_repair(),
            Some("SHARDS") => Ok(match &self.shards {
                None => "shards: off (single-engine path)".to_string(),
                Some(c) => format!("shards: on\n{}", c.describe().trim_end()),
            }),
            Some("STORAGE") => Ok(match &self.storage {
                None => {
                    format!("storage: {} (all rows and postings in RAM)", self.db.storage_label())
                }
                Some(s) => {
                    let m = s.metrics();
                    format!(
                        "storage: {}\n  pages: {} ({} resident, {} dirty)   \
                         watermark lsn: {} (in-memory lsn {})\n  \
                         pool: {} hits, {} misses, {} evictions\n  \
                         flushes: {} ({} pages written back)   \
                         faults injected: {} ({} read retries)",
                        self.db.storage_label(),
                        m.page_count,
                        m.resident_pages,
                        m.dirty_pages,
                        m.watermark,
                        m.lsn,
                        m.pool.hits,
                        m.pool.misses,
                        m.pool.evictions,
                        m.pool.flushes,
                        m.pool.write_backs,
                        m.faults.injected,
                        m.faults.retries,
                    )
                }
            }),
            Some("HEALTH") => Ok(match &self.last_ingest {
                None => format!(
                    "health: healthy (no ingest yet)\n  workers: {}   queue capacity: {}",
                    self.ingest.workers, self.ingest.queue_capacity
                ),
                Some(r) => format!(
                    "health: {}\n  workers: {}   queue capacity: {}   peak depth: {}\n  \
                     last ingest: {} committed, {} shed ({:.0}% shed rate), \
                     p99 latency {:.2}ms",
                    r.health,
                    r.workers,
                    self.ingest.queue_capacity,
                    r.queue_depth_peak,
                    r.batch.total(),
                    r.sheds.len(),
                    r.shed_rate() * 100.0,
                    r.p99_latency_ns() as f64 / 1e6,
                ),
            }),
            Some("BUDGET") => Ok(format!("budget: {}", self.nebula.config().budget)),
            Some("DURABILITY") => Ok(match self.nebula.mutation_sink() {
                Some(sink) => {
                    let mut out = vec![format!("durability: on ({})", sink.describe())];
                    if let Some(adir) = sink.archive_dir() {
                        match nebula_durable::archive_stats(&adir) {
                            Ok(s) => out.push(format!(
                                "  archive: '{}' — {} segment(s), {} base(s), \
                                 oldest restorable lsn {}, newest lsn {}, {} bytes",
                                adir.display(),
                                s.segments,
                                s.bases,
                                s.oldest_restorable_lsn,
                                s.newest_lsn,
                                s.bytes,
                            )),
                            Err(e) => out
                                .push(format!("  archive: '{}' unreadable ({e})", adir.display())),
                        }
                        out.push(match (&self.last_backup, self.backups.last()) {
                            (Some(at), Some(b)) => format!(
                                "  last backup: seq {} to '{}' (head lsn {}), {}s ago",
                                b.seq,
                                b.dir,
                                b.head_lsn,
                                at.elapsed().as_secs(),
                            ),
                            _ => "  last backup: never (BACKUP TO '<dir>' captures one)".into(),
                        });
                    }
                    out.join("\n")
                }
                None => "durability: off".to_string(),
            }),
            Some("BACKUPS") => {
                if self.backups.is_empty() {
                    return Ok("backups: none this session (BACKUP TO '<dir>' captures one)".into());
                }
                let mut out =
                    vec![format!("backups: {} captured this session", self.backups.len())];
                for b in &self.backups {
                    let verdict = match nebula_backup::verify_bundle(std::path::Path::new(&b.dir)) {
                        Ok(v) => format!("verified ({} file(s))", v.files_verified),
                        Err(e) => format!("FAILED VERIFICATION: {e}"),
                    };
                    out.push(format!(
                        "  seq {}: '{}' lsn [{}, {}] — {} file(s), {} bytes — {verdict}",
                        b.seq, b.dir, b.oldest_lsn, b.head_lsn, b.files, b.bytes,
                    ));
                }
                Ok(out.join("\n"))
            }
            Some("FAULTS") => match nebula_govern::describe_fault_plan() {
                None => Ok("faults: off".into()),
                Some(desc) => {
                    let s = nebula_govern::fault_stats();
                    Ok(format!(
                        "faults: {desc}\n  injected: {} query, {} index-probe, {} latency, \
                         {} panic\n  recovered: {}   retries: {}",
                        s.query_errors,
                        s.index_probe_failures,
                        s.latency_injections,
                        s.panics,
                        s.recovered,
                        s.retries,
                    ))
                }
            },
            Some("CRITICAL") => {
                if args.get(1).map(|s| s.to_uppercase()).as_deref() != Some("PATH") {
                    return Err(err("usage: SHOW CRITICAL PATH"));
                }
                let traces = nebula_obs::trace::traces();
                Ok(nebula_obs::trace::attribution(&traces).render_text().trim_end().to_string())
            }
            Some("FLIGHT") => Ok(self.show_flight()),
            _ => Err(err("usage: SHOW METRICS | BUDGET | FAULTS | DURABILITY | BACKUPS | \
                 HEALTH | REPLICATION | REPLICA <id> | REPAIR | SHARDS | CRITICAL PATH | \
                 FLIGHT")),
        }
    }

    /// `SHOW FLIGHT` — the flight recorder: recent operational events and
    /// any post-mortem dumps captured by a terminal condition.
    fn show_flight(&self) -> String {
        let events = nebula_obs::trace::flight_events();
        let dumps = nebula_obs::trace::flight_dumps();
        if events.is_empty() && dumps.is_empty() {
            return "flight recorder: empty".to_string();
        }
        let mut out = vec![format!("flight recorder: {} event(s) retained", events.len())];
        out.extend(events.iter().map(|e| format!("  #{} {} {}", e.seq, e.kind, e.detail)));
        if !dumps.is_empty() {
            out.push(format!("post-mortem dumps: {}", dumps.len()));
            out.extend(dumps.iter().map(|d| {
                format!("  trigger {} ({} event(s) captured)", d.trigger, d.events.len())
            }));
        }
        out.join("\n")
    }

    /// `TRACE ANNOTATION <id>` — the committed annotation's span tree,
    /// with the critical path marked.
    fn trace(&self, args: &[String]) -> Result<String, ShellError> {
        let [kind, id] = args else {
            return Err(err("usage: TRACE ANNOTATION <id>"));
        };
        if kind.to_uppercase() != "ANNOTATION" {
            return Err(err("usage: TRACE ANNOTATION <id>"));
        }
        let id: u64 = id
            .trim_start_matches(['A', 'a'])
            .parse()
            .map_err(|_| err(format!("`{id}` is not an annotation id")))?;
        match nebula_obs::trace::for_annotation(id) {
            Some(trace) => Ok(trace.render_tree().trim_end().to_string()),
            None => Ok(format!(
                "no trace recorded for annotation A{id} \
                 (the ring keeps the last {} commits)",
                nebula_obs::trace::TRACE_CAPACITY
            )),
        }
    }

    /// `EXPLAIN ANNOTATION <id>` — replay the recorded pipeline events for
    /// one annotation: per-stage wall time, candidate counts, decisions.
    fn explain(&self, args: &[String]) -> Result<String, ShellError> {
        let [kind, id] = args else {
            return Err(err("usage: EXPLAIN ANNOTATION <id>"));
        };
        if kind.to_uppercase() != "ANNOTATION" {
            return Err(err("usage: EXPLAIN ANNOTATION <id>"));
        }
        // Accept both the display form `A7` and the bare number `7`.
        let id: u64 = id
            .trim_start_matches(['A', 'a'])
            .parse()
            .map_err(|_| err(format!("`{id}` is not an annotation id")))?;
        let snapshot = nebula_obs::snapshot();
        let events = snapshot.events_for(id);
        if events.is_empty() {
            return Ok(format!(
                "no recorded pipeline events for annotation A{id} \
                 (telemetry keeps the last {} events)",
                nebula_obs::EVENT_CAPACITY
            ));
        }
        let mut out = vec![format!("annotation A{id}:")];
        out.extend(events.iter().map(|e| format!("  {}", e.render_line())));
        Ok(out.join("\n"))
    }

    fn save(&self, args: &[String]) -> Result<String, ShellError> {
        let path = args.first().ok_or_else(|| err("usage: SAVE '<path>'"))?;
        let db_bytes = relstore::snapshot::save(&self.db);
        let ann_bytes = annostore::snapshot::save(&self.store);
        std::fs::write(format!("{path}.reldb"), &db_bytes).map_err(|e| err(e.to_string()))?;
        std::fs::write(format!("{path}.anndb"), &ann_bytes).map_err(|e| err(e.to_string()))?;
        Ok(format!(
            "saved {} + {} bytes to {path}.reldb / {path}.anndb",
            db_bytes.len(),
            ann_bytes.len()
        ))
    }

    fn load(&mut self, args: &[String]) -> Result<String, ShellError> {
        let path = args.first().ok_or_else(|| err("usage: LOAD '<path>'"))?;
        let db_bytes = std::fs::read(format!("{path}.reldb")).map_err(|e| err(e.to_string()))?;
        let ann_bytes = std::fs::read(format!("{path}.anndb")).map_err(|e| err(e.to_string()))?;
        self.db = relstore::snapshot::load(&db_bytes).map_err(|e| err(e.to_string()))?;
        self.store = annostore::snapshot::load(&ann_bytes).map_err(|e| err(e.to_string()))?;
        self.nebula.bootstrap_acg(&self.store);
        Ok(format!(
            "loaded {} tuples, {} annotations; ACG rebuilt ({} edges)",
            self.db.total_tuples(),
            self.store.annotation_count(),
            self.nebula.acg().edge_count()
        ))
    }
}

const HELP: &str = "commands:
  TABLES;
  SELECT <table> [WHERE <col> (=|CONTAINS) <val>]... [LIMIT n];
  ANNOTATE <table> '<pk>' '<text>';
  DELETE <table> '<pk>';
  ANNOTATIONS <table> '<pk>';
  PENDING;
  VERIFY ATTACHMENT <vid>;   REJECT ATTACHMENT <vid>;
  ACG;   PROFILE;
  SHOW METRICS;   EXPLAIN ANNOTATION <id>;
  TRACE ANNOTATION <id>;   SHOW CRITICAL PATH;   SHOW FLIGHT;
  SET BUDGET DEADLINE <ms> | TUPLES <n> | CONFIGS <n> | CANDIDATES <n> | OFF;
  SET FAULTS <seed> [RATE <r>] | HOSTILE <seed> | OFF;
  SET DURABILITY '<dir>' [EVERY <n>] [SYNC BATCH] [ARCHIVE '<adir>'] | OFF;
  SET ARCHIVE '<dir>';
  SET REPLICAS <n> '<dir>' [QUORUM <q>] [NETFAULTS <seed> <rate>] | OFF;
  SET SHARDS <n> | OFF;
  SET STORAGE DISK '<dir>' [POOL <frames>] | MEM;
  PROMOTE [<id>];
  SCRUB;   REJOIN [<node>];   RECOVER INGEST;
  SET WORKERS <n>;
  CHECKPOINT;   RECOVER '<dir>';
  BACKUP TO '<dir>';   RESTORE FROM '<dir>' [AS OF LSN <n>];
  SCRUB BACKUP '<dir>';   SHOW BACKUPS;
  SHOW BUDGET;   SHOW FAULTS;   SHOW DURABILITY;   SHOW HEALTH;
  SHOW REPLICATION;   SHOW REPLICA <id> [STALENESS <n>];   SHOW REPAIR;
  SHOW SHARDS;   SHOW STORAGE;
  SAVE '<path>';   LOAD '<path>';
  HELP;   EXIT;";

/// Split a command into tokens, honoring single-quoted strings.
fn lex(input: &str) -> Result<Vec<String>, ShellError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(ch) => s.push(ch),
                    None => return Err(err("unterminated string literal")),
                }
            }
            tokens.push(s);
        } else {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '\'' {
                    break;
                }
                s.push(ch);
                chars.next();
            }
            tokens.push(s);
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Shell {
        Shell::with_dataset(&DatasetSpec::tiny(), 42)
    }

    #[test]
    fn lex_handles_quotes() {
        assert_eq!(
            lex("ANNOTATE gene 'JW0001' 'two words'").expect("shell operation should succeed"),
            vec!["ANNOTATE", "gene", "JW0001", "two words"]
        );
        assert!(lex("bad 'unterminated").is_err());
    }

    #[test]
    fn tables_lists_schema() {
        let mut sh = shell();
        let out = sh.exec("TABLES;").expect("shell operation should succeed");
        assert!(out.contains("gene"));
        assert!(out.contains("protein"));
        assert!(out.contains("publication"));
        assert!(out.contains("gid"));
    }

    #[test]
    fn select_with_predicates_and_limit() {
        let mut sh = shell();
        let out = sh
            .exec("SELECT gene WHERE family = 'F1' LIMIT 3")
            .expect("shell operation should succeed");
        assert!(out.contains("F1"), "{out}");
        assert!(out.lines().count() <= 5, "header + ≤3 rows + count");
        let all = sh.exec("SELECT gene LIMIT 100").expect("shell operation should succeed");
        assert!(all.contains("(40 rows)"));
        let contains = sh
            .exec("SELECT gene WHERE gid CONTAINS 'JW0001'")
            .expect("shell operation should succeed");
        assert!(contains.contains("JW0001"));
        assert!(contains.contains("(1 rows)"));
    }

    #[test]
    fn select_projection_and_order() {
        let mut sh = shell();
        let out = sh
            .exec("SELECT gene COLUMNS name,length ORDER BY length DESC LIMIT 2")
            .expect("shell operation should succeed");
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("name | length"));
        let first: i64 = lines
            .next()
            .expect("shell operation should succeed")
            .split(" | ")
            .nth(1)
            .expect("shell operation should succeed")
            .split_whitespace()
            .next()
            .expect("shell operation should succeed")
            .parse()
            .expect("shell operation should succeed");
        let second: i64 = lines
            .next()
            .expect("shell operation should succeed")
            .split(" | ")
            .nth(1)
            .expect("shell operation should succeed")
            .split_whitespace()
            .next()
            .expect("shell operation should succeed")
            .parse()
            .expect("shell operation should succeed");
        assert!(first >= second, "descending order: {first} vs {second}");
        assert!(sh.exec("SELECT gene COLUMNS nope").is_err());
        assert!(sh.exec("SELECT gene ORDER name").is_err());
    }

    #[test]
    fn select_errors_are_friendly() {
        let mut sh = shell();
        assert!(sh.exec("SELECT nope").unwrap_err().0.contains("unknown table"));
        assert!(sh.exec("SELECT gene WHERE bogus = 'x'").unwrap_err().0.contains("unknown column"));
        assert!(sh.exec("SELECT gene LIMIT abc").is_err());
    }

    #[test]
    fn annotate_runs_the_pipeline_end_to_end() {
        let mut sh = shell();
        let out = sh
            .exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        assert!(out.contains("queries generated"));
        assert!(out.contains("JW0001"), "the reference is discovered: {out}");
        // The annotation shows up on both the focal and (if auto-accepted)
        // the referenced tuple.
        let focal_notes =
            sh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed");
        assert!(focal_notes.contains("correlates"));
    }

    #[test]
    fn pending_verify_flow() {
        let mut sh = shell();
        // Force everything pending.
        sh.nebula.config_mut().bounds = VerificationBounds::new(0.0, 1.0);
        sh.exec("ANNOTATE gene 'JW0002' 'interacting with gene JW0003'")
            .expect("shell operation should succeed");
        let pending = sh.exec("PENDING").expect("shell operation should succeed");
        assert!(pending.contains("task"));
        assert!(pending.contains("evidence"));
        let vid: u64 = pending
            .split_whitespace()
            .nth(1)
            .expect("shell operation should succeed")
            .parse()
            .expect("shell operation should succeed");
        let resolved =
            sh.exec(&format!("VERIFY ATTACHMENT {vid}")).expect("shell operation should succeed");
        assert!(resolved.contains("resolved"));
        assert!(sh.exec(&format!("VERIFY ATTACHMENT {vid}")).is_err(), "double resolve");
        assert_eq!(
            sh.exec("PENDING").expect("shell operation should succeed"),
            "(no pending verification tasks)"
        );
    }

    #[test]
    fn trace_annotation_renders_the_span_tree() {
        let mut sh = shell();
        sh.exec("ANNOTATE gene 'JW0011' 'linked with gene JW0012'")
            .expect("shell operation should succeed");
        let id = sh.store.annotation_count() as u64 - 1;
        let out =
            sh.exec(&format!("TRACE ANNOTATION A{id}")).expect("shell operation should succeed");
        assert!(out.contains("ingest.item"), "{out}");
        assert!(out.contains("core.process_annotation"), "{out}");
        assert!(out.contains("stage0.register"), "{out}");
        assert!(out.contains("critical path ends at"), "{out}");
        // Both id forms are accepted; unknown ids degrade gracefully.
        assert!(sh
            .exec(&format!("TRACE ANNOTATION {id}"))
            .expect("shell operation should succeed")
            .contains("ingest.item"));
        assert!(sh
            .exec("TRACE ANNOTATION 999999")
            .expect("shell operation should succeed")
            .contains("no trace recorded"));
        assert!(sh.exec("TRACE NONSENSE 1").is_err());
    }

    #[test]
    fn show_critical_path_and_flight_report() {
        let mut sh = shell();
        sh.exec("ANNOTATE gene 'JW0012' 'observed near gene JW0013'")
            .expect("shell operation should succeed");
        let cp = sh.exec("SHOW CRITICAL PATH").expect("shell operation should succeed");
        assert!(cp.contains("critical path over"), "{cp}");
        assert!(sh.exec("SHOW CRITICAL NONSENSE").is_err());
        let fl = sh.exec("SHOW FLIGHT").expect("shell operation should succeed");
        assert!(fl.contains("flight recorder"), "{fl}");
        assert!(fl.contains("commit"), "commits land in the flight ring: {fl}");
    }

    #[test]
    fn acg_and_profile_report() {
        let mut sh = shell();
        let acg = sh.exec("ACG").expect("shell operation should succeed");
        assert!(acg.contains("nodes"));
        let profile = sh.exec("PROFILE").expect("shell operation should succeed");
        assert!(profile.contains("profile"));
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nebula-shell-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("shell operation should succeed");
        let path = dir.join("snap").display().to_string();

        let mut sh = shell();
        sh.exec("ANNOTATE gene 'JW0004' 'note about gene JW0006'")
            .expect("shell operation should succeed");
        let saved = sh.exec(&format!("SAVE '{path}'")).expect("shell operation should succeed");
        assert!(saved.contains("saved"));

        let mut fresh = shell();
        let loaded = fresh.exec(&format!("LOAD '{path}'")).expect("shell operation should succeed");
        assert!(loaded.contains("loaded"));
        let notes =
            fresh.exec("ANNOTATIONS gene 'JW0004'").expect("shell operation should succeed");
        assert!(notes.contains("JW0006"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_cleans_up() {
        let mut sh = shell();
        sh.exec("ANNOTATE gene 'JW0003' 'note about gene JW0002'")
            .expect("shell operation should succeed");
        let out = sh.exec("DELETE gene 'JW0002'").expect("shell operation should succeed");
        assert!(out.contains("deleted"), "{out}");
        assert!(sh.exec("ANNOTATIONS gene 'JW0002'").is_err(), "row is gone");
        let rows = sh.exec("SELECT gene LIMIT 100").expect("shell operation should succeed");
        assert!(rows.contains("(39 rows)"));
        assert!(sh.exec("DELETE gene 'JW0002'").is_err(), "double delete fails");
    }

    #[test]
    fn show_metrics_reports_pipeline_work() {
        let mut sh = shell();
        sh.exec("ANNOTATE gene 'JW0007' 'observed together with gene JW0008'")
            .expect("shell operation should succeed");
        let out = sh.exec("SHOW METRICS").expect("shell operation should succeed");
        assert!(out.contains("core.annotations_processed"), "{out}");
        assert!(out.contains("relstore.tuples_scanned"), "{out}");
        assert!(out.contains("textsearch.configurations"), "{out}");
        assert!(out.contains(nebula_obs::names::STAGE2_EXECUTE), "{out}");
        assert!(sh.exec("SHOW NONSENSE").is_err());
    }

    #[test]
    fn explain_annotation_replays_stages() {
        let mut sh = shell();
        let out = sh
            .exec("ANNOTATE gene 'JW0009' 'co-expressed with gene JW0010'")
            .expect("shell operation should succeed");
        // "annotation A<n> attached ..." — pull the id out of the response.
        let aid =
            out.split_whitespace().nth(1).expect("shell operation should succeed").to_string();
        let explained =
            sh.exec(&format!("EXPLAIN ANNOTATION {aid}")).expect("shell operation should succeed");
        assert!(explained.contains(&format!("annotation {aid}:")), "{explained}");
        for stage in [
            nebula_obs::names::STAGE0_REGISTER,
            nebula_obs::names::STAGE1_QUERYGEN,
            nebula_obs::names::STAGE2_EXECUTE,
            nebula_obs::names::STAGE3_ROUTE,
            nebula_obs::names::PIPELINE,
        ] {
            assert!(explained.contains(stage), "missing {stage} in {explained}");
        }
        // Unknown ids report the miss instead of erroring.
        let missing = sh.exec("EXPLAIN ANNOTATION 999999").expect("shell operation should succeed");
        assert!(missing.contains("no recorded pipeline events"));
        assert!(sh.exec("EXPLAIN ANNOTATION abc").is_err());
        assert!(sh.exec("EXPLAIN NONSENSE 3").is_err());
    }

    #[test]
    fn set_budget_and_show_budget() {
        let mut sh = shell();
        assert_eq!(
            sh.exec("SHOW BUDGET").expect("shell operation should succeed"),
            "budget: unbounded"
        );
        assert_eq!(
            sh.exec("SET BUDGET TUPLES 500").expect("shell operation should succeed"),
            "budget: tuples=500"
        );
        let out = sh.exec("SET BUDGET CONFIGS 8").expect("shell operation should succeed");
        assert_eq!(out, "budget: tuples=500 configs=8", "limits accumulate");
        assert!(sh
            .exec("SET BUDGET DEADLINE 250")
            .expect("shell operation should succeed")
            .contains("deadline=250ms"));
        assert_eq!(
            sh.exec("SET BUDGET OFF").expect("shell operation should succeed"),
            "budget: unbounded"
        );
        assert!(sh.exec("SET BUDGET TUPLES abc").is_err());
        assert!(sh.exec("SET BUDGET NONSENSE 3").is_err());
        assert!(sh.exec("SET NONSENSE").is_err());
    }

    #[test]
    fn set_faults_and_show_faults() {
        let mut sh = shell();
        assert_eq!(sh.exec("SHOW FAULTS").expect("shell operation should succeed"), "faults: off");
        let out = sh.exec("SET FAULTS 42 RATE 0.5").expect("shell operation should succeed");
        assert!(out.contains("seed=42"), "{out}");
        assert!(out.contains("query=0.50"), "{out}");
        let shown = sh.exec("SHOW FAULTS").expect("shell operation should succeed");
        assert!(shown.contains("injected:"), "{shown}");
        let hostile = sh.exec("SET FAULTS HOSTILE 7").expect("shell operation should succeed");
        assert!(hostile.contains("query=1.00"), "{hostile}");
        assert_eq!(
            sh.exec("SET FAULTS OFF").expect("shell operation should succeed"),
            "faults: off"
        );
        assert!(sh.exec("SET FAULTS abc").is_err());
        assert!(sh.exec("SET FAULTS 42 RATE 7").is_err(), "rate out of range");
    }

    #[test]
    fn budget_degradation_reported_by_annotate() {
        let mut sh = shell();
        sh.exec("SET BUDGET TUPLES 1").expect("shell operation should succeed");
        let out = sh
            .exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        assert!(out.contains("degraded:"), "{out}");
        sh.exec("SET BUDGET OFF").expect("shell operation should succeed");
    }

    #[test]
    fn hostile_faults_quarantine_but_shell_survives() {
        let mut sh = shell();
        sh.exec("SET FAULTS HOSTILE 9").expect("shell operation should succeed");
        // Every query errors (transiently) and retries exhaust: the command
        // fails with a structured error, but the shell keeps working.
        let res = sh.exec("ANNOTATE gene 'JW0006' 'paired with gene JW0007'");
        assert!(res.is_err());
        let shown = sh.exec("SHOW FAULTS").expect("shell operation should succeed");
        assert!(shown.contains("retries: 2"), "bounded retries recorded: {shown}");
        sh.exec("SET FAULTS OFF").expect("shell operation should succeed");
        let ok = sh.exec("ANNOTATE gene 'JW0006' 'paired with gene JW0007'");
        assert!(ok.is_ok(), "clean run after clearing the plan");
    }

    #[test]
    fn durability_set_checkpoint_recover_flow() {
        let dir = std::env::temp_dir().join(format!("nebula-shell-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        assert_eq!(
            sh.exec("SHOW DURABILITY").expect("shell operation should succeed"),
            "durability: off"
        );
        assert!(sh.exec("CHECKPOINT").unwrap_err().0.contains("durability is off"));

        let on = sh
            .exec(&format!("SET DURABILITY '{}' EVERY 64", dir.display()))
            .expect("shell operation should succeed");
        assert!(on.contains("durability: on"), "{on}");
        assert!(on.contains("initial checkpoint"), "{on}");
        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        let shown = sh.exec("SHOW DURABILITY").expect("shell operation should succeed");
        assert!(shown.contains("next_lsn"), "{shown}");

        let ck = sh.exec("CHECKPOINT").expect("shell operation should succeed");
        assert!(ck.contains("watermark"), "{ck}");
        sh.exec("ANNOTATE gene 'JW0002' 'note about gene JW0003'")
            .expect("shell operation should succeed");
        let notes_before =
            sh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed");
        sh.exec("SET DURABILITY OFF").expect("shell operation should succeed");
        assert_eq!(
            sh.exec("SHOW DURABILITY").expect("shell operation should succeed"),
            "durability: off"
        );

        // A fresh shell recovers the full state: checkpoint + log replay.
        let mut fresh = shell();
        let rec = fresh
            .exec(&format!("RECOVER '{}'", dir.display()))
            .expect("shell operation should succeed");
        assert!(rec.contains("recovered"), "{rec}");
        assert_eq!(
            fresh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed"),
            notes_before
        );
        let resumed = fresh.exec("SHOW DURABILITY").expect("shell operation should succeed");
        assert!(resumed.contains("durability: on"), "logging continues: {resumed}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_refuses_a_directory_in_use() {
        let dir =
            std::env::temp_dir().join(format!("nebula-shell-durable-inuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sh = shell();
        sh.exec(&format!("SET DURABILITY '{}'", dir.display()))
            .expect("shell operation should succeed");
        sh.exec("SET DURABILITY OFF").expect("shell operation should succeed");
        let e = sh.exec(&format!("SET DURABILITY '{}'", dir.display())).unwrap_err();
        assert!(e.0.contains("RECOVER"), "points at recovery: {e}");
        assert!(sh.exec("SET DURABILITY").is_err());
        assert!(sh.exec("RECOVER").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_set_annotate_promote_flow() {
        let dir = std::env::temp_dir().join(format!("nebula-shell-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        assert_eq!(
            sh.exec("SHOW REPLICATION").expect("shell operation should succeed"),
            "replication: off"
        );
        assert!(sh.exec("PROMOTE 1").unwrap_err().0.contains("replication is off"));
        assert!(sh.exec("SHOW REPLICA 1").unwrap_err().0.contains("replication is off"));

        let on = sh
            .exec(&format!("SET REPLICAS 2 '{}' QUORUM 1", dir.display()))
            .expect("shell operation should succeed");
        assert!(on.contains("replication: on"), "{on}");
        assert!(on.contains("ack-quorum(1)"), "{on}");
        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");

        let shown = sh.exec("SHOW REPLICATION").expect("shell operation should succeed");
        assert!(shown.contains("epoch 1"), "{shown}");
        assert!(shown.contains("replica 1:"), "{shown}");
        assert!(shown.contains("replica 2:"), "{shown}");
        let durability = sh.exec("SHOW DURABILITY").expect("shell operation should succeed");
        assert!(durability.contains("replicated"), "{durability}");

        let rep = sh.exec("SHOW REPLICA 1").expect("shell operation should succeed");
        assert!(rep.contains("annotations"), "{rep}");
        assert!(sh.exec("SHOW REPLICA 9").is_err(), "unknown replica");
        assert!(sh.exec("SHOW REPLICA 1 STALENESS abc").is_err());
        // A reliable transport keeps replicas current, so a zero
        // staleness bound still reads.
        let bounded =
            sh.exec("SHOW REPLICA 1 STALENESS 0").expect("shell operation should succeed");
        assert!(bounded.contains("lag 0"), "{bounded}");

        let promoted = sh.exec("PROMOTE 1").expect("shell operation should succeed");
        assert!(promoted.contains("promoted replica 1"), "{promoted}");
        assert!(promoted.contains("epoch 2"), "{promoted}");
        let after = sh.exec("SHOW REPLICATION").expect("shell operation should succeed");
        assert!(after.contains("epoch 2"), "{after}");
        assert!(after.contains("deposed primaries: epoch 1"), "{after}");
        // The annotation survives the failover (it was acked before).
        let notes = sh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed");
        assert!(notes.contains("correlates"), "{notes}");
        // Writes keep flowing through the promoted primary.
        sh.exec("ANNOTATE gene 'JW0002' 'note about gene JW0003'")
            .expect("shell operation should succeed");

        assert!(sh
            .exec("SET REPLICAS OFF")
            .expect("shell operation should succeed")
            .contains("replication: off"));
        assert_eq!(
            sh.exec("SHOW REPLICATION").expect("shell operation should succeed"),
            "replication: off"
        );
        assert!(sh.exec("SET REPLICAS abc").is_err());
        assert!(sh.exec(&format!("SET REPLICAS 2 '{}' QUORUM 9", dir.display())).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_rejoin_and_show_repair_flow() {
        let dir = std::env::temp_dir().join(format!("nebula-shell-repair-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        // All repair surfaces degrade gracefully with replication off.
        assert!(sh.exec("SCRUB").unwrap_err().0.contains("replication is off"));
        assert!(sh.exec("REJOIN 0").unwrap_err().0.contains("replication is off"));
        assert!(sh
            .exec("SHOW REPAIR")
            .expect("shell operation should succeed")
            .contains("replication: off"));

        sh.exec(&format!("SET REPLICAS 2 '{}'", dir.display()))
            .expect("shell operation should succeed");
        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");

        // A clean cluster scrubs clean.
        let clean = sh.exec("SCRUB").expect("shell operation should succeed");
        assert!(clean.contains("media clean"), "{clean}");
        assert!(clean.contains("all ladders agree"), "{clean}");

        // Poison a replica, then let SCRUB find and repair it.
        sh.repl
            .as_ref()
            .expect("shell operation should succeed")
            .lock()
            .chaos_corrupt_replica(1)
            .expect("shell operation should succeed");
        sh.exec("ANNOTATE gene 'JW0002' 'note about gene JW0003'")
            .expect("shell operation should succeed");
        let repaired = sh.exec("SCRUB").expect("shell operation should succeed");
        assert!(repaired.contains("repaired replica 1"), "{repaired}");
        assert!(repaired.contains("converged = true"), "{repaired}");

        // Fail over, then re-admit the deposed primary.
        assert!(sh.exec("REJOIN").unwrap_err().0.contains("no deposed primary"));
        sh.exec("PROMOTE 1").expect("shell operation should succeed");
        let rejoined = sh.exec("REJOIN 0").expect("shell operation should succeed");
        assert!(rejoined.contains("node 0 rejoined epoch 2"), "{rejoined}");
        assert!(rejoined.contains("converged = true"), "{rejoined}");
        assert!(sh.exec("REJOIN 0").is_err(), "nothing left to rejoin");

        let status = sh.exec("SHOW REPAIR").expect("shell operation should succeed");
        assert!(status.contains("scrub(s)"), "{status}");
        assert!(status.contains("1 rejoin(s)"), "{status}");
        assert!(status.contains("pending repairs: none"), "{status}");
        assert!(sh.exec("REJOIN abc").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_ingest_clears_a_wedged_verdict() {
        let mut sh = shell();
        assert!(sh
            .exec("RECOVER INGEST")
            .expect("shell operation should succeed")
            .contains("not wedged"));
        // Manufacture a wedged last-ingest verdict (the pool owns the real
        // machine per batch; the shell records its final state).
        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        sh.last_ingest.as_mut().expect("shell operation should succeed").health =
            HealthState::Wedged;
        let out = sh.exec("RECOVER INGEST").expect("shell operation should succeed");
        assert!(out.contains("wedged -> degraded"), "{out}");
        assert_eq!(
            sh.last_ingest.as_ref().expect("shell operation should succeed").health,
            HealthState::Degraded
        );
        let health = sh.exec("SHOW HEALTH").expect("shell operation should succeed");
        assert!(health.contains("health: degraded"), "{health}");
    }

    #[test]
    fn set_workers_and_show_health() {
        let mut sh = shell();
        let fresh = sh.exec("SHOW HEALTH").expect("shell operation should succeed");
        assert!(fresh.contains("no ingest yet"), "{fresh}");
        assert_eq!(sh.exec("SET WORKERS 4").expect("shell operation should succeed"), "workers: 4");
        assert!(sh.exec("SET WORKERS 0").is_err());
        assert!(sh.exec("SET WORKERS abc").is_err());
        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        let health = sh.exec("SHOW HEALTH").expect("shell operation should succeed");
        assert!(health.contains("health: healthy"), "{health}");
        assert!(health.contains("workers: 4"), "{health}");
        assert!(health.contains("1 committed, 0 shed"), "{health}");
    }

    #[test]
    fn worker_count_does_not_change_annotate_output() {
        let mut a = shell();
        let mut b = shell();
        b.exec("SET WORKERS 8").expect("shell operation should succeed");
        let cmd = "ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'";
        assert_eq!(
            a.exec(cmd).expect("shell operation should succeed"),
            b.exec(cmd).expect("shell operation should succeed")
        );
    }

    #[test]
    fn hostile_faults_degrade_health() {
        let mut sh = shell();
        sh.exec("SET FAULTS HOSTILE 11").expect("shell operation should succeed");
        let res = sh.exec("ANNOTATE gene 'JW0006' 'paired with gene JW0007'");
        assert!(res.is_err(), "quarantined");
        let health = sh.exec("SHOW HEALTH").expect("shell operation should succeed");
        assert!(health.contains("health: degraded"), "{health}");
        sh.exec("SET FAULTS OFF").expect("shell operation should succeed");
    }

    #[test]
    fn help_and_unknown() {
        let mut sh = shell();
        assert!(sh.exec("HELP").expect("shell operation should succeed").contains("ANNOTATE"));
        assert!(sh.exec("FROBNICATE").is_err());
        assert_eq!(sh.exec("   ").expect("shell operation should succeed"), "");
    }

    #[test]
    fn sharded_session_routes_annotate_and_reports_health() {
        let mut sh = shell();
        assert!(sh
            .exec("SHOW SHARDS")
            .expect("shell operation should succeed")
            .contains("shards: off"));

        let on = sh.exec("SET SHARDS 2").expect("shell operation should succeed");
        assert!(on.contains("shards: 2"), "{on}");
        let out = sh
            .exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        assert!(out.contains("via shard"), "{out}");
        // The merged shard state is mirrored back into the shell's store.
        let notes = sh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed");
        assert!(notes.contains("correlates"), "{notes}");

        let status = sh.exec("SHOW SHARDS").expect("shell operation should succeed");
        assert!(status.contains("2 shards"), "{status}");
        assert!(status.contains("epoch 0"), "{status}");
        assert!(status.contains("shard 0"), "{status}");
        assert!(status.contains("shard 1"), "{status}");

        // Mutations that bypass the router are fenced off while sharded.
        assert!(sh.exec("DELETE gene 'JW0001'").is_err());
        assert!(sh.exec("SET DURABILITY '/tmp/nowhere'").is_err());
        assert!(sh.exec("SET REPLICAS 1 '/tmp/nowhere'").is_err());

        let off = sh.exec("SET SHARDS OFF").expect("shell operation should succeed");
        assert!(off.contains("shards: off"), "{off}");
        // The annotation survives the collapse back to one engine.
        let notes = sh.exec("ANNOTATIONS gene 'JW0005'").expect("shell operation should succeed");
        assert!(notes.contains("correlates"), "{notes}");
        assert!(sh.exec("SET SHARDS 0").is_err(), "zero shards is rejected");
    }

    #[test]
    fn storage_session_pages_to_disk_and_back() {
        let dir = std::env::temp_dir().join(format!("nebula-shell-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sh = shell();
        let before = relstore::snapshot::fingerprint(&sh.db);
        assert!(sh.exec("SHOW STORAGE").expect("shell operation should succeed").contains("mem"));

        // Move onto disk with a deliberately tiny pool to force eviction.
        let on = sh
            .exec(&format!("SET STORAGE DISK '{}' POOL 4", dir.display()))
            .expect("shell operation should succeed");
        assert!(on.contains("storage: disk"), "{on}");
        assert_eq!(
            relstore::snapshot::fingerprint(&sh.db),
            before,
            "paged rebuild is logically identical"
        );

        // The stack keeps working on the paged backend.
        sh.exec("ANNOTATE gene 'JW0005' 'paged gene note mentions JW0001'")
            .expect("shell operation should succeed");
        let select = sh
            .exec("SELECT gene WHERE gid CONTAINS 'JW0001'")
            .expect("shell operation should succeed");
        assert!(select.contains("JW0001"), "{select}");
        let show = sh.exec("SHOW STORAGE").expect("shell operation should succeed");
        assert!(show.contains("storage: disk:"), "{show}");
        assert!(show.contains("pages:"), "{show}");

        // SCRUB walks the page file (replication off).
        let scrubbed = sh.exec("SCRUB").expect("shell operation should succeed");
        assert!(scrubbed.contains("all checksums clean"), "{scrubbed}");

        // Seed at-rest rot, then SCRUB must find it and repair.
        let fp_paged = relstore::snapshot::fingerprint(&sh.db);
        {
            let store = sh.storage.as_ref().expect("shell operation should succeed");
            store.flush_pages().expect("shell operation should succeed");
            store.set_fault_plan(Some(FaultPlan::new(0xBAD).with_pages(0.0, 0.0, 0.0, 1.0)));
            store.inject_rot().expect("shell operation should succeed").expect("rate 1.0 fires");
            store.set_fault_plan(None);
        }
        let repaired = sh.exec("SCRUB").expect("shell operation should succeed");
        assert!(repaired.contains("corrupt"), "{repaired}");
        assert!(repaired.contains("repaired"), "{repaired}");
        let again = sh.exec("SCRUB").expect("shell operation should succeed");
        assert!(again.contains("all checksums clean"), "{again}");

        // Back to RAM: content survives the round trip.
        let off = sh.exec("SET STORAGE MEM").expect("shell operation should succeed");
        assert!(off.contains("storage: mem"), "{off}");
        assert_eq!(
            relstore::snapshot::fingerprint(&sh.db),
            fp_paged,
            "nothing lost moving back to RAM"
        );
        assert!(sh
            .exec("SET STORAGE MEM")
            .expect("shell operation should succeed")
            .contains("already"));
        assert!(sh.exec("SET STORAGE").is_err(), "bare SET STORAGE is rejected");
        assert!(sh.exec("SET STORAGE DISK").is_err(), "DISK needs a directory");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backup_restore_point_in_time_flow() {
        let root = std::env::temp_dir().join(format!("nebula-shell-backup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let wal = root.join("wal");
        let arch = root.join("archive");
        let bundle = root.join("bundle");

        let mut sh = shell();
        let initial_annotations = sh.store.annotation_count();
        // The guidance chain: BACKUP refuses without durability, then
        // without archiving.
        assert!(sh
            .exec(&format!("BACKUP TO '{}'", bundle.display()))
            .unwrap_err()
            .0
            .contains("durability is off"));
        assert!(sh.exec("SET ARCHIVE '/tmp/nowhere'").unwrap_err().0.contains("durability is off"));
        sh.exec(&format!(
            "SET DURABILITY '{}' EVERY 64 ARCHIVE '{}'",
            wal.display(),
            arch.display()
        ))
        .expect("shell operation should succeed");

        sh.exec("ANNOTATE gene 'JW0005' 'this gene correlates with JW0001 under stress'")
            .expect("shell operation should succeed");
        sh.exec("CHECKPOINT").expect("shell operation should succeed");
        sh.exec("ANNOTATE gene 'JW0002' 'note about gene JW0003'")
            .expect("shell operation should succeed");
        let annotated = sh.store.annotation_count();
        assert!(annotated > initial_annotations);

        let captured = sh
            .exec(&format!("BACKUP TO '{}'", bundle.display()))
            .expect("shell operation should succeed");
        assert!(captured.contains("restorable lsn range"), "{captured}");
        assert!(captured.contains("seq 1"), "{captured}");

        let shown = sh.exec("SHOW DURABILITY").expect("shell operation should succeed");
        assert!(shown.contains("archive: '"), "{shown}");
        assert!(shown.contains("oldest restorable lsn"), "{shown}");
        assert!(shown.contains("last backup: seq 1"), "{shown}");

        let backups = sh.exec("SHOW BACKUPS").expect("shell operation should succeed");
        assert!(backups.contains("seq 1:"), "{backups}");
        assert!(backups.contains("verified"), "{backups}");
        assert!(!backups.contains("FAILED"), "{backups}");

        let scrubbed = sh
            .exec(&format!("SCRUB BACKUP '{}'", bundle.display()))
            .expect("shell operation should succeed");
        assert!(scrubbed.contains("all files clean"), "{scrubbed}");
        assert!(scrubbed.contains("manifest verified"), "{scrubbed}");

        // Full restore: byte-equivalent state, sink detached.
        let restored =
            sh.exec(&format!("RESTORE FROM '{}'", bundle.display())).expect("restore succeeds");
        assert!(restored.contains("restored to lsn"), "{restored}");
        assert!(restored.contains("sink detached"), "{restored}");
        assert_eq!(sh.store.annotation_count(), annotated, "every record replayed");
        assert_eq!(
            sh.exec("SHOW DURABILITY").expect("shell operation should succeed"),
            "durability: off"
        );

        // Point-in-time: AS OF LSN 0 lands on the pre-annotation base.
        let pitr = sh
            .exec(&format!("RESTORE FROM '{}' AS OF LSN 0", bundle.display()))
            .expect("as-of restore succeeds");
        assert!(pitr.contains("restored to lsn 0"), "{pitr}");
        assert_eq!(sh.store.annotation_count(), initial_annotations, "history rewound");

        // Out-of-range targets and malformed syntax are refused.
        let e =
            sh.exec(&format!("RESTORE FROM '{}' AS OF LSN 999999", bundle.display())).unwrap_err();
        assert!(e.0.contains("not restorable"), "{e}");
        assert!(sh.exec("RESTORE").is_err());
        assert!(sh.exec(&format!("RESTORE FROM '{}' AS OF", bundle.display())).is_err());
        assert!(sh.exec("BACKUP").is_err());
        assert!(sh.exec("SHOW BACKUPS").expect("still works").contains("seq 1"));

        let _ = std::fs::remove_dir_all(&root);
    }
}

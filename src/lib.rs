//! # nebula — proactive annotation management for relational databases
//!
//! This is the facade crate of the Nebula workspace, a full reproduction of
//! *"Proactive Annotation Management in Relational Databases"* (SIGMOD 2015).
//! It re-exports the public API of every layer:
//!
//! - [`relstore`] — the in-memory relational engine (tables, indexes,
//!   conjunctive queries),
//! - [`annostore`] — the passive annotation-management engine (annotations,
//!   attachments, the bipartite annotated-database graph, propagation),
//! - [`textsearch`] — keyword search over the relational store
//!   (configurations, confidence-weighted query generation, shared
//!   execution),
//! - [`nebula_core`] — the proactive engine itself (signature maps, keyword
//!   query generation, ACG, focal-based spreading, verification), and
//! - [`nebula_workload`] — synthetic UniProt-like datasets and annotation
//!   workloads used by the evaluation, and
//! - [`nebula_obs`] — the in-tree telemetry subsystem (work counters, stage
//!   spans, pipeline events) every layer above reports into, and
//! - [`nebula_govern`] — resource governance: per-annotation execution
//!   budgets, graceful degradation, and deterministic fault injection, and
//! - [`nebula_durable`] — crash-safe durability: a checksummed write-ahead
//!   log of pipeline mutations, framed checkpoints, and torn-tail-tolerant
//!   recovery, and
//! - [`nebula_ingest`] — overload-safe concurrent ingest: bounded admission
//!   with priority classes, a turn-gated single-writer worker pool, circuit
//!   breakers, and the engine health state machine, and
//! - [`nebula_replica`] — WAL-shipping replication: a single primary
//!   streaming log segments to replicas over a deterministic simulated
//!   transport, ack-none/ack-quorum commit rules, epoch-fenced failover,
//!   and continuous divergence detection, and
//! - [`nebula_backup`] — disaster recovery: WAL archiving ahead of every
//!   checkpoint truncation, verified backup bundles with a signed
//!   manifest, point-in-time restore, archive scrub, and retention GC.
//!
//! ## Quickstart
//!
//! ```
//! use nebula::prelude::*;
//!
//! // Build a small annotated biological database.
//! let spec = DatasetSpec::tiny();
//! let mut bundle = generate_dataset(&spec, 42);
//!
//! // Configure and run the proactive engine on a new annotation.
//! let config = NebulaConfig::default();
//! let mut engine = Nebula::new(config, bundle.meta.clone());
//! let annotation = Annotation::new("From the exp, this gene correlates with JW0001.");
//! let focal = vec![bundle.some_gene_tuple()];
//! let outcome = engine.process_annotation(
//!     &mut bundle.db,
//!     &mut bundle.annotations,
//!     &annotation,
//!     &focal,
//! ).unwrap();
//! // The engine predicts candidate attachments and routes them through
//! // auto-accept / expert-verify / auto-reject.
//! let _ = outcome.accepted.len() + outcome.pending.len() + outcome.rejected.len();
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod shell;

pub use annostore;
pub use nebula_backup;
pub use nebula_core;
pub use nebula_durable;
pub use nebula_govern;
pub use nebula_ingest;
pub use nebula_obs;
pub use nebula_pagestore;
pub use nebula_replica;
pub use nebula_shard;
pub use nebula_workload;
pub use relstore;
pub use shell::{Shell, ShellError};
pub use textsearch;

/// Commonly used items in one import.
pub mod prelude {
    pub use annostore::{Annotation, AnnotationId, AnnotationStore, AttachmentTarget, Edge};
    pub use nebula_backup::{BackupError, BackupManifest, BundleSpec, Restored};
    pub use nebula_core::{
        Acg, AssessmentReport, BatchEntry, BatchReport, BatchStatus, BoundsSetting, CommitRule,
        HopProfile, Nebula, NebulaConfig, NebulaError, NebulaMeta, ProcessOutcome,
        QuarantineReason, QueryGenConfig, ReplicationStatus, SearchMode, StabilityConfig,
        VerificationBounds, VerificationQueue, VerificationTask,
    };
    pub use nebula_durable::{Durability, DurabilityOptions, Recovered, SyncPolicy};
    pub use nebula_govern::{Degradation, ExecutionBudget, FaultPlan, FaultStats, RetryPolicy};
    pub use nebula_ingest::{
        ingest_batch, HealthState, IngestConfig, IngestItem, IngestReport, Priority, ShedReason,
    };
    pub use nebula_pagestore::{PageScrubReport, PagedStorage, StorageMetrics};
    pub use nebula_replica::{
        Cluster, ClusterConfig, ClusterSink, DivergenceReport, Primary, Replica, ReplicaError,
        SimTransport, Transport, TransportStats,
    };
    pub use nebula_shard::{NetProfile, ShardCluster, ShardConfig, ShardError};
    pub use nebula_workload::{generate_dataset, DatasetBundle, DatasetSpec, WorkloadSpec};
    pub use relstore::{
        ConjunctiveQuery, DataType, Database, Predicate, TableSchema, Tuple, TupleId, Value,
    };
    pub use textsearch::{KeywordQuery, KeywordSearch, SearchHit};
}

//! Minimal std-only stand-in for the `bytes` crate, covering exactly the
//! API surface this workspace uses (the snapshot codecs in `relstore` and
//! `annostore`): [`Bytes`], [`BytesMut`], and the little-endian subset of
//! [`Buf`] / [`BufMut`].
//!
//! `Bytes` here is an owned buffer with a read cursor rather than a
//! refcounted slice — the zero-copy sharing of the real crate is
//! irrelevant to the snapshot use case, and keeping this in-tree lets the
//! workspace build with no network access. See `shims/README.md`.

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    /// Read position; `Buf` methods advance it.
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Split off the next `len` bytes as an owned buffer, advancing the
    /// cursor. Panics if fewer than `len` bytes remain (same contract as
    /// the real crate).
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.len() >= len, "copy_to_bytes out of range");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + len]);
        self.pos += len;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer; the write half of the pair.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read access to a byte buffer (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read the next `n` bytes into `dst` (panics if short).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write access to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 3);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"hi");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_and_to_vec_track_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(&*b, &[2, 3, 4]);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.len(), 3);
    }
}

//! Minimal std-only stand-in for the `criterion` crate, covering the API
//! surface the `nebula-bench` benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — calibrated wall-clock timing with
//! a warmup pass, reporting min/mean per iteration — not criterion's
//! statistical machinery. Good enough to compare runs of the same bench
//! across commits, which is how this workspace uses it. See
//! `shims/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here (every iteration re-runs setup outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Total time spent in timed routine calls.
    elapsed: Duration,
    /// Timed routine calls performed.
    iters: u64,
    /// Iterations the calibration pass requested.
    target_iters: u64,
}

impl Bencher {
    /// Time `routine` for the calibrated number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.target_iters {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup runs outside
    /// the timed section.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.target_iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one(id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: single iteration to size the measured pass so one
    // bench costs ~100ms wall clock at most.
    let mut probe = Bencher { elapsed: Duration::ZERO, iters: 0, target_iters: 1 };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1)) / probe.iters.max(1) as u32;
    let target = (Duration::from_millis(100).as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let target_iters = target.clamp(1, 10_000);

    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, target_iters };
    f(&mut b);
    let mean = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("{id:<50} {:>10} iters   mean {}", b.iters, format_ns(mean));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

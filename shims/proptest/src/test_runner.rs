//! Deterministic case runner: per-test seeded RNG plus recorded inputs
//! for failure reports.

use std::fmt;

/// How many cases each property runs. Only `cases` is configurable — the
/// rest of upstream's knobs (shrink iters, fork, timeout) don't apply here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; we default lower because every case
        // re-runs generation from scratch (no persistence/shrink reuse)
        // and several properties build whole databases per case.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-property driver: owns the RNG stream and the record of inputs
/// generated for the current case.
pub struct TestRunner {
    base_seed: u64,
    state: u64,
    inputs: Vec<(&'static str, String)>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRunner {
    /// Runner seeded from the fully-qualified test name, so every test
    /// gets its own reproducible stream.
    pub fn new(test_name: &str) -> TestRunner {
        let base_seed = fnv1a(test_name.as_bytes());
        TestRunner { base_seed, state: base_seed, inputs: Vec::new() }
    }

    /// Reset for case `case`: fresh sub-stream, empty input record.
    pub fn begin_case(&mut self, case: u64) {
        let mut mix = self.base_seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        self.state = splitmix(&mut mix);
        self.inputs.clear();
    }

    /// Next raw 64-bit word of the case's stream.
    pub fn next_u64(&mut self) -> u64 {
        splitmix(&mut self.state)
    }

    /// Uniform draw in `[0, n)` (Lemire multiply-shift with rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        let threshold = n.wrapping_neg() % n; // 2^64 mod n
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Record one generated binding for failure reporting.
    pub fn record_input(&mut self, name: &'static str, value: String) {
        self.inputs.push((name, value));
    }

    /// The recorded bindings of the current case, one `name = value` per
    /// line.
    pub fn inputs_description(&self) -> String {
        if self.inputs.is_empty() {
            return "    (no inputs recorded)".to_string();
        }
        self.inputs
            .iter()
            .map(|(name, value)| format!("    {name} = {value}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::TestRunner;

    #[test]
    fn cases_get_distinct_streams() {
        let mut r = TestRunner::new("t");
        r.begin_case(0);
        let a = r.next_u64();
        r.begin_case(1);
        let b = r.next_u64();
        assert_ne!(a, b);
        r.begin_case(0);
        assert_eq!(a, r.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut r = TestRunner::new("b");
        r.begin_case(0);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn inputs_roundtrip_into_description() {
        let mut r = TestRunner::new("i");
        r.begin_case(0);
        r.record_input("x", "42".to_string());
        assert!(r.inputs_description().contains("x = 42"));
        r.begin_case(1);
        assert!(r.inputs_description().contains("no inputs"));
    }
}

//! Collection strategies: [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// A size specification for generated collections: an exact length, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max: exact }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy producing `Vec`s of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + runner.below(span) as usize;
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut r = TestRunner::new("vec-tests");
        r.begin_case(0);
        for _ in 0..200 {
            assert_eq!(vec(0u8..4, 3).generate(&mut r).len(), 3);
            let open = vec(0u8..4, 1..5).generate(&mut r);
            assert!((1..5).contains(&open.len()));
            let incl = vec(0u8..4, 2..=6).generate(&mut r);
            assert!((2..=6).contains(&incl.len()));
            assert!(open.iter().chain(&incl).all(|&x| x < 4));
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut r = TestRunner::new("vec-nested");
        r.begin_case(0);
        let rows = vec(("[a-b]{1,2}", 0i64..3), 0..10).generate(&mut r);
        for (s, n) in rows {
            assert!((1..=2).contains(&s.len()) && (0..3).contains(&n));
        }
    }
}

//! The [`Strategy`] trait and core combinators: ranges, tuples, [`Just`],
//! [`Map`], and [`Union`].

use crate::test_runner::TestRunner;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the runner's deterministic stream.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        (**self).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        (**self).generate(runner)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Uniform choice among same-typed strategies (built by
/// [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        let pick = runner.below(self.options.len() as u64) as usize;
        self.options[pick].generate(runner)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return runner.next_u64() as $t;
                }
                (start as i128 + runner.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (runner.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        let mut r = TestRunner::new("strategy-tests");
        r.begin_case(0);
        r
    }

    #[test]
    fn just_and_map() {
        let mut r = runner();
        assert_eq!(Just(5i64).generate(&mut r), 5);
        let doubled = (1u8..4).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert!([2, 4, 6].contains(&doubled.generate(&mut r)));
        }
    }

    #[test]
    fn inclusive_hits_endpoints() {
        let mut r = runner();
        let (mut lo, mut hi) = (false, false);
        for _ in 0..2_000 {
            match (0u8..=3).generate(&mut r) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = runner();
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_compose() {
        let mut r = runner();
        let (a, b, c) = (0u8..2, 10i64..12, 0.0f64..1.0).generate(&mut r);
        assert!(a < 2 && (10..12).contains(&b) && (0.0..1.0).contains(&c));
    }
}

//! Regex-subset string generation: `&str` literals act as strategies
//! producing strings matching the pattern.
//!
//! Supported syntax (the subset this workspace's tests use): literal
//! characters, `(...)` groups, `a|b` alternation, `[a-z09 é]` character
//! classes with ranges, `.` (any char except newline), and the repeaters
//! `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats are capped at 8).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Cap for `*` / `+` repeats, which upstream treats as unbounded.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// `a|b|c` — uniform choice.
    Alt(Vec<Node>),
    /// `[...]` — inclusive char ranges (singles are `(c, c)`).
    Class(Vec<(char, char)>),
    /// `.` — any char except `\n`.
    AnyChar,
    /// One literal char.
    Lit(char),
    /// `node{min,max}` (inclusive).
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser { chars: pattern.chars().peekable(), pattern }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex pattern {:?}: {what}", self.pattern)
    }

    /// alternation := seq ('|' seq)*
    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            arms.push(self.parse_seq());
        }
        if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        }
    }

    /// seq := (atom repeat?)*  — stops at '|' or ')'.
    fn parse_seq(&mut self) -> Node {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            parts.push(self.parse_repeat(atom));
        }
        Node::Seq(parts)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('.') => Node::AnyChar,
            Some('\\') => match self.chars.next() {
                Some(
                    c @ ('\\' | '.' | '|' | '(' | ')' | '[' | ']' | '{' | '}' | '?' | '*' | '+'
                    | '-'),
                ) => Node::Lit(c),
                Some('n') => Node::Lit('\n'),
                Some('t') => Node::Lit('\t'),
                Some('d') => Node::Class(vec![('0', '9')]),
                other => self.fail(&format!("escape \\{other:?}")),
            },
            Some(c @ ('{' | '}' | '?' | '*' | '+')) => {
                self.fail(&format!("dangling repeat operator {c:?}"))
            }
            Some(c) => Node::Lit(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') if !ranges.is_empty() => break,
                Some('\\') => match self.chars.next() {
                    Some(e @ ('\\' | ']' | '-' | '^')) => e,
                    Some('n') => '\n',
                    Some('t') => '\t',
                    other => self.fail(&format!("class escape \\{other:?}")),
                },
                Some(c) => c,
                None => self.fail("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    // Trailing '-' is a literal: `[a-]`.
                    Some(&']') | None => {
                        ranges.push((c, c));
                        ranges.push(('-', '-'));
                    }
                    Some(&hi) => {
                        self.chars.next();
                        if (c as u32) > (hi as u32) {
                            self.fail(&format!("inverted class range {c}-{hi}"));
                        }
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        Node::Class(ranges)
    }

    fn parse_repeat(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let min = self.parse_number();
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let max = self.parse_number();
                        if self.chars.next() != Some('}') {
                            self.fail("unclosed {m,n} repeat");
                        }
                        max
                    }
                    _ => self.fail("malformed {..} repeat"),
                };
                if min > max {
                    self.fail(&format!("inverted repeat {{{min},{max}}}"));
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(&c) = self.chars.peek() {
            match c.to_digit(10) {
                Some(d) => {
                    self.chars.next();
                    n = n.checked_mul(10).and_then(|n| n.checked_add(d)).unwrap_or_else(|| {
                        self.fail("repeat count overflow");
                    });
                    any = true;
                }
                None => break,
            }
        }
        if !any {
            self.fail("expected repeat count");
        }
        n
    }
}

fn parse(pattern: &str) -> Node {
    let mut p = Parser::new(pattern);
    let node = p.parse_alt();
    if p.chars.next().is_some() {
        p.fail("trailing characters (unbalanced ')'?)");
    }
    node
}

fn gen_any_char(runner: &mut TestRunner) -> char {
    // Weighted toward printable ASCII like upstream, with some unicode and
    // control characters mixed in; never '\n' (regex `.` excludes it).
    loop {
        let c = match runner.below(100) {
            0..=69 => char::from_u32(0x20 + runner.below(0x5F) as u32),
            70..=89 => {
                // Low BMP unicode: Latin-1 supplement through Greek.
                char::from_u32(0xA1 + runner.below(0x340) as u32)
            }
            _ => char::from_u32(runner.below(0xD800) as u32),
        };
        match c {
            Some('\n') | None => continue,
            Some(c) => return c,
        }
    }
}

fn generate_into(node: &Node, runner: &mut TestRunner, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for part in parts {
                generate_into(part, runner, out);
            }
        }
        Node::Alt(arms) => {
            let pick = runner.below(arms.len() as u64) as usize;
            generate_into(&arms[pick], runner, out);
        }
        Node::Class(ranges) => {
            // Weight each range by its width so e.g. [a-z0] is not half '0'.
            let total: u64 = ranges.iter().map(|&(lo, hi)| (hi as u64 - lo as u64) + 1).sum();
            let mut pick = runner.below(total);
            for &(lo, hi) in ranges {
                let width = (hi as u64 - lo as u64) + 1;
                if pick < width {
                    let c = char::from_u32(lo as u32 + pick as u32)
                        .expect("class range crosses surrogate block");
                    out.push(c);
                    break;
                }
                pick -= width;
            }
        }
        Node::AnyChar => out.push(gen_any_char(runner)),
        Node::Lit(c) => out.push(*c),
        Node::Repeat(inner, min, max) => {
            let n = *min as u64 + runner.below((*max - *min) as u64 + 1);
            for _ in 0..n {
                generate_into(inner, runner, out);
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        let node = parse(self);
        let mut out = String::new();
        generate_into(&node, runner, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        self.as_str().generate(runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        let mut r = TestRunner::new("string-tests");
        r.begin_case(0);
        r
    }

    #[test]
    fn literal_and_exact_repeat() {
        let mut r = runner();
        assert_eq!("abc".generate(&mut r), "abc");
        let s = "JW[0-9]{4}".generate(&mut r);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("JW") && s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn alternation_with_repeat_range() {
        let mut r = runner();
        for _ in 0..200 {
            let s = "(gene|protein|JW[0-9]{4}| |[a-z]{2,6}){0,40}".generate(&mut r);
            // Every generated char must come from one of the arms.
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == ' '
                    || c == 'J'
                    || c == 'W'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_with_unicode_and_space() {
        let mut r = runner();
        let mut seen_unicode = false;
        for _ in 0..400 {
            let s = "[a-zA-Z0-9 àé]{0,10}".generate(&mut r);
            assert!(s.chars().count() <= 10);
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == 'à' || c == 'é'),
                "{s:?}"
            );
            seen_unicode |= s.contains(['à', 'é']);
        }
        assert!(seen_unicode, "unicode class members never generated");
    }

    #[test]
    fn dot_never_yields_newline() {
        let mut r = runner();
        for _ in 0..50 {
            let s = ".{0,300}".generate(&mut r);
            assert!(!s.contains('\n'));
            assert!(s.chars().count() <= 300);
        }
    }

    #[test]
    fn optional_star_plus() {
        let mut r = runner();
        for _ in 0..100 {
            let s = "ab?c*d+".generate(&mut r);
            assert!(s.starts_with('a'));
            assert!(s.trim_start_matches('a').trim_start_matches('b').starts_with(['c', 'd']));
            assert!(s.ends_with('d'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex pattern")]
    fn unbalanced_group_panics() {
        let mut r = runner();
        let _ = "(ab".generate(&mut r);
    }
}

//! Minimal std-only stand-in for the `proptest` crate, covering the API
//! surface this workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(...)]`, `#[test]`
//!   pass-through, and `name in strategy` / `mut name in strategy` args),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - strategies: integer/float ranges, regex-subset string literals,
//!   tuples, [`collection::vec`], [`arbitrary::any`], [`strategy::Just`],
//!   `prop_map`, [`prop_oneof!`], and [`sample::Index`],
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream: generation is seeded deterministically from
//! the test name (same inputs every run — failures are always
//! reproducible), and there is no shrinking — a failing case reports the
//! generated inputs as-is. See `shims/README.md`.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs in one import.
pub mod prelude {
    /// The `prop::` alias for the crate root (`prop::sample::Index`,
    /// `prop::collection::vec`, ...).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The property-test entry point: wraps `fn name(binding in strategy, ...)
/// { body }` items into `#[test]` functions that run the body over many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                __runner.begin_case(__case as u64);
                let __result: Result<(), $crate::test_runner::TestCaseError> =
                    (|__r: &mut $crate::test_runner::TestRunner| {
                        $crate::__pt_bind!(__r; $($args)*);
                        { $body };
                        Ok(())
                    })(&mut __runner);
                if let Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\ngenerated inputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e,
                        __runner.inputs_description()
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    ($r:expr;) => {};
    ($r:expr; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__pt_bind!($r; mut $name in $strat);
        $crate::__pt_bind!($r; $($rest)*);
    };
    ($r:expr; mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $r);
        $r.record_input(stringify!($name), format!("{:?}", $name));
    };
    ($r:expr; $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__pt_bind!($r; $name in $strat);
        $crate::__pt_bind!($r; $($rest)*);
    };
    ($r:expr; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $r);
        $r.record_input(stringify!($name), format!("{:?}", $name));
    };
}

/// Fallible assertion: fails the current case (reporting the generated
/// inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in -4i64..=4, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn regex_shapes(id in "JW[0-9]{4}", words in "[a-c]{1,3}( [a-c]{1,3}){0,2}") {
            prop_assert_eq!(id.len(), 6);
            prop_assert!(id.starts_with("JW"));
            prop_assert!(id[2..].chars().all(|c| c.is_ascii_digit()));
            prop_assert!(!words.is_empty() && words.len() <= 15, "{words}");
            prop_assert!(words.chars().all(|c| ('a'..='c').contains(&c) || c == ' '));
        }

        #[test]
        fn vec_and_tuples(
            rows in crate::collection::vec(("[a-d]{1,4}", 0i64..4), 1..16),
            mut picks in crate::collection::vec(any::<crate::sample::Index>(), 1..6),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 16);
            for (s, n) in &rows {
                prop_assert!((1..=4).contains(&s.len()));
                prop_assert!((0..4).contains(n));
            }
            picks.truncate(3);
            for ix in &picks {
                prop_assert!(ix.index(rows.len()) < rows.len());
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(-1i64),
            (0u8..10).prop_map(|x| x as i64 * 100),
            any::<i64>(),
        ]) {
            // All three arms produce i64; nothing else to check beyond
            // reaching here with a valid value.
            let _ = v;
        }
    }

    #[test]
    // The nested proptest! emits an inner #[test] fn we invoke by hand.
    #[allow(unnameable_test_items)]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("failed at case"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen_once = || {
            let mut r = crate::test_runner::TestRunner::new("det");
            r.begin_case(0);
            ".{0,40}".generate(&mut r)
        };
        assert_eq!(gen_once(), gen_once());
    }
}

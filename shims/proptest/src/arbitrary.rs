//! [`any`] and the [`Arbitrary`] trait: default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The canonical strategy for `A`: `any::<A>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<fn() -> A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, runner: &mut TestRunner) -> A {
        A::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                // Bias 1-in-8 toward the edge values that shake out
                // overflow and sentinel bugs, like upstream does.
                if runner.below(8) == 0 {
                    const SPECIAL: [$t; 4] = [0, 1, <$t>::MIN, <$t>::MAX];
                    SPECIAL[runner.below(4) as usize]
                } else {
                    runner.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        // Finite values only (no NaN/inf): special values 1-in-8, else a
        // sign/magnitude spread across many orders of magnitude.
        if runner.below(8) == 0 {
            const SPECIAL: [f64; 6] = [0.0, -0.0, 1.0, -1.0, f64::MIN_POSITIVE, f64::MAX];
            SPECIAL[runner.below(6) as usize]
        } else {
            let sign = if runner.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            let exponent = runner.below(613) as i32 - 306; // 1e-306..=1e306
            sign * runner.unit_f64() * 10f64.powi(exponent)
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(runner: &mut TestRunner) -> char {
        loop {
            if let Some(c) = char::from_u32(runner.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        let mut r = TestRunner::new("arbitrary-tests");
        r.begin_case(0);
        r
    }

    #[test]
    fn bools_take_both_values() {
        let mut r = runner();
        let trues = (0..100).filter(|_| bool::arbitrary(&mut r)).count();
        assert!((20..80).contains(&trues));
    }

    #[test]
    fn ints_hit_edge_values() {
        let mut r = runner();
        let mut saw_max = false;
        for _ in 0..1_000 {
            saw_max |= i64::arbitrary(&mut r) == i64::MAX;
        }
        assert!(saw_max);
    }

    #[test]
    fn floats_are_finite() {
        let mut r = runner();
        for _ in 0..10_000 {
            assert!(f64::arbitrary(&mut r).is_finite());
        }
    }

    #[test]
    fn any_is_a_strategy() {
        let mut r = runner();
        let _: u8 = any::<u8>().generate(&mut r);
    }
}

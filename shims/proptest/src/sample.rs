//! Sampling helpers: [`Index`], a length-agnostic collection index.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRunner;

/// An abstract index resolved against a concrete collection length with
/// [`Index::index`], so one generated value can index collections of any
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of `len` elements; uniform in
    /// `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        // Multiply-shift keeps the high bits relevant (plain modulo would
        // only use the low bits' distribution).
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(runner: &mut TestRunner) -> Index {
        Index(runner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds_and_covers() {
        let mut r = TestRunner::new("index-tests");
        r.begin_case(0);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let ix = Index::arbitrary(&mut r);
            let i = ix.index(5);
            assert!(i < 5);
            seen[i] = true;
            assert!(ix.index(1) == 0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_len_panics() {
        Index(0).index(0);
    }
}

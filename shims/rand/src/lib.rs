//! Minimal std-only stand-in for the `rand` crate, covering the API
//! surface this workspace uses: a seedable deterministic [`rngs::StdRng`]
//! plus [`Rng::gen_range`] / [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for synthetic-data
//! generation, deterministic across platforms, and dependency-free. It is
//! *not* the same stream as the real crate's StdRng, so datasets generated
//! from a given seed differ from upstream-rand builds; everything in this
//! workspace derives expectations from the generated data itself, never
//! from a hard-coded stream. See `shims/README.md`.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, `rand`-style: implemented by the range types
/// accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `low..high` or `low..=high`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, same construction as the real crate.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform draw in `[0, n)` without modulo bias (Lemire's multiply-shift
/// with rejection).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    let threshold = n.wrapping_neg() % n; // 2^64 mod n
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Element types with a uniform range sampler. The two [`SampleRange`]
/// impls below are blanket impls over this trait — a single applicable
/// impl per range shape, so type inference can flow from the usage site
/// into integer literals exactly like it does with the real crate.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]`.
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full-width range: every word is a valid sample.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, inclusive: bool, rng: &mut dyn RngCore) -> f64 {
        if inclusive {
            assert!(lo <= hi, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        } else {
            assert!(lo < hi, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize =
            (0..100).filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000)).count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3i64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Inclusive endpoints are reachable.
        let mut hit_hi = false;
        for _ in 0..10_000 {
            if rng.gen_range(0u8..=3) == 3 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}

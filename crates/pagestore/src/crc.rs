//! CRC32C (Castagnoli), the per-page checksum.
//!
//! Same table-driven, compile-time construction as the durability
//! layer's WAL checksum; duplicated here (≈30 lines) rather than
//! imported so the page store stays independent of `nebula-durable` —
//! the durability layer must be able to grow a page-file scrub without a
//! dependency cycle.

const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The CRC contribution of a lone error byte `1 << bit` with nothing
/// after it (zero initial state, no final inversion). CRC is affine, so
/// `crc(data ⊕ e) ⊕ crc(data)` equals the pure-linear CRC of the error
/// pattern `e` — the init and final inversions cancel under XOR. This
/// seed plus [`advance_zero`] walks that contribution backwards through
/// the page, which is what makes single-bit rot correctable in O(page).
pub(crate) fn bit_seed(bit: usize) -> u32 {
    TABLE[1usize << bit]
}

/// Advance a pure-linear CRC state through one zero byte.
pub(crate) fn advance_zero(state: u32) -> u32 {
    TABLE[(state & 0xFF) as usize] ^ (state >> 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) test vectors — must agree with the durability
        // layer's implementation.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }
}

//! The on-disk page file and its torn-page-safe commit discipline.
//!
//! A [`PageFile`] never overwrites pages in place directly. Every flush
//! goes through a **shadow commit** (the same discipline the durability
//! layer's checkpoints established):
//!
//! 1. the batch of dirty pages is serialized into `pages.shadow.tmp`
//!    (magic + CRC32C over the whole body),
//! 2. the shadow is fsynced, read back, and byte-verified,
//! 3. `pages.shadow.tmp` is renamed to `pages.shadow.commit` — the
//!    commit point,
//! 4. each page is written in place into `pages.neb` and the file is
//!    fsynced,
//! 5. `pages.shadow.commit` is deleted.
//!
//! A crash before step 3 loses nothing (the old image is intact); a
//! crash after step 3 — including a torn in-place write — is repaired by
//! [`PageFile::open`], which idempotently re-applies a valid
//! `pages.shadow.commit`. The [`CrashPoint`] API tears the sequence at
//! any byte for the crash-point harness.
//!
//! Every syscall rolls one of the `Page*` fault sites against the file's
//! own [`FaultPlan`] (two draws per roll, owned-plan discipline).

use crate::page::{self, PageBuf, PAGE_SIZE};
use crate::{counters, PageStoreError};
use nebula_govern::{FaultPlan, FaultSite, PageFault};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Base name of the page file inside its directory.
pub const FILE_NAME: &str = "pages.neb";

/// Shadow image mid-write (not yet committed; discardable).
pub const SHADOW_TMP: &str = "pages.shadow.tmp";

/// Committed shadow image (must be re-applied on open).
pub const SHADOW_COMMIT: &str = "pages.shadow.commit";

/// Magic at the start of a shadow image.
const SHADOW_MAGIC: &[u8; 8] = b"NEBSHDW1";

/// Read retries against transient injected read faults.
const READ_ATTEMPTS: u32 = 3;

/// Where to tear a [`PageFile::commit_batch_crash`] run, for the
/// crash-point harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after `n` bytes of the shadow image reached `pages.shadow.tmp`
    /// (before the rename): the commit never happened.
    Shadow(usize),
    /// Crash after `n` bytes of the in-place apply reached the page file
    /// (after the rename): the commit must be re-driven on open.
    Apply(usize),
}

/// Result of a read-only CRC walk over a page file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageScrubReport {
    /// Pages in the file (including the header page).
    pub pages: u32,
    /// Page ids whose checksum or structure failed verification.
    pub corrupt: Vec<u32>,
    /// Whether a committed shadow image is waiting to be re-applied.
    pub pending_shadow: bool,
}

impl PageScrubReport {
    /// True when every page verified clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Running tally of injected page faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Faults that fired (all four sites).
    pub injected: u64,
    /// Read retries that recovered from a transient read fault.
    pub retries: u64,
}

/// An open page file plus the fault plan its syscalls roll against.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    dir: PathBuf,
    plan: Option<FaultPlan>,
    tally: FaultTally,
}

impl PageFile {
    /// Create a fresh page file in `dir` (the directory must exist and
    /// must not already hold one). Writes the header page for an empty
    /// store.
    pub fn create(dir: &Path) -> Result<PageFile, PageStoreError> {
        let path = dir.join(FILE_NAME);
        if path.exists() {
            return Err(PageStoreError::Io(format!("{} already exists", path.display())));
        }
        // Stale shadow state from a previous file in this directory must
        // not outlive it — a later open would re-apply it onto the new
        // file's pages.
        let _ = std::fs::remove_file(dir.join(SHADOW_TMP));
        let _ = std::fs::remove_file(dir.join(SHADOW_COMMIT));
        let mut file = OpenOptions::new().read(true).write(true).create_new(true).open(&path)?;
        let header = page::encode_header_page(1, 0);
        file.write_all(&header[..])?;
        file.sync_all()?;
        Ok(PageFile { file, dir: dir.to_path_buf(), plan: None, tally: FaultTally::default() })
    }

    /// Open an existing page file, first re-applying (or discarding) any
    /// shadow image left by a crash. Returns the file plus the header's
    /// `(page_count, watermark)`.
    pub fn open(dir: &Path) -> Result<(PageFile, u32, u64), PageStoreError> {
        recover_dir(dir)?;
        let path = dir.join(FILE_NAME);
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut pf =
            PageFile { file, dir: dir.to_path_buf(), plan: None, tally: FaultTally::default() };
        let header = pf.read_page_unfaulted(0)?;
        let (page_count, watermark) = page::decode_header_page(&header)?;
        Ok((pf, page_count, watermark))
    }

    /// Install (or clear) the fault plan page I/O rolls against.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// Injected-fault tally since open.
    pub fn fault_tally(&self) -> FaultTally {
        self.tally
    }

    /// The directory this file lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn roll(&mut self, site: FaultSite) -> Option<PageFault> {
        let fault = self.plan.as_mut()?.roll_page(site, PAGE_SIZE);
        if fault.is_some() {
            self.tally.injected += 1;
            nebula_obs::counter_add(counters::FAULTS_INJECTED, 1);
        }
        fault
    }

    /// Read one page without fault injection or CRC verification (used
    /// by recovery and the scrubber, which must see damage raw).
    fn read_page_raw(&mut self, id: u32) -> Result<PageBuf, PageStoreError> {
        let mut buf = page::zeroed();
        self.file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf[..])?;
        Ok(buf)
    }

    fn read_page_unfaulted(&mut self, id: u32) -> Result<PageBuf, PageStoreError> {
        let buf = self.read_page_raw(id)?;
        if !page::verify(&buf) {
            return Err(PageStoreError::Corrupt(format!("page {id} checksum mismatch")));
        }
        Ok(buf)
    }

    /// Read and verify one page, rolling the `PageRead` site per attempt.
    /// Transient injected read faults are retried up to three times.
    pub fn read_page(&mut self, id: u32) -> Result<PageBuf, PageStoreError> {
        for attempt in 0..READ_ATTEMPTS {
            if self.roll(FaultSite::PageRead).is_some() {
                if attempt + 1 == READ_ATTEMPTS {
                    return Err(PageStoreError::Io(format!(
                        "injected read fault on page {id} persisted through \
                         {READ_ATTEMPTS} attempts"
                    )));
                }
                self.tally.retries += 1;
                nebula_obs::counter_add(counters::RETRIES, 1);
                continue;
            }
            return self.read_page_unfaulted(id);
        }
        unreachable!("loop returns on last attempt")
    }

    /// Serialize a batch into shadow-image bytes.
    fn shadow_bytes(pages: &[(u32, &PageBuf)]) -> Vec<u8> {
        let mut body = Vec::with_capacity(12 + pages.len() * (4 + PAGE_SIZE));
        body.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for (id, buf) in pages {
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&buf[..]);
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(SHADOW_MAGIC);
        out.extend_from_slice(&crate::crc::crc32c(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Commit a batch of sealed pages atomically. On an error during the
    /// shadow phase nothing has changed; on an error during the apply
    /// phase the committed shadow image remains and the next
    /// [`PageFile::open`] (or [`PageFile::recover`]) completes the
    /// commit.
    pub fn commit_batch(&mut self, pages: &[(u32, &PageBuf)]) -> Result<(), PageStoreError> {
        self.commit_inner(pages, None)
    }

    /// [`PageFile::commit_batch`], torn at `crash` for the crash-point
    /// harness: the function stops dead (returning `Err`) once the tear
    /// point is reached, leaving whatever bytes a real power cut would.
    pub fn commit_batch_crash(
        &mut self,
        pages: &[(u32, &PageBuf)],
        crash: CrashPoint,
    ) -> Result<(), PageStoreError> {
        self.commit_inner(pages, Some(crash))
    }

    fn commit_inner(
        &mut self,
        pages: &[(u32, &PageBuf)],
        crash: Option<CrashPoint>,
    ) -> Result<(), PageStoreError> {
        for (id, buf) in pages {
            debug_assert!(page::verify(buf), "page {id} committed unsealed");
        }
        // Disk-full is checked before any byte moves: an ENOSPC flush
        // must degrade to a typed error with the old image untouched,
        // never a half-written shadow.
        if matches!(self.roll(FaultSite::Enospc), Some(PageFault::NoSpace)) {
            return Err(PageStoreError::NoSpace);
        }
        let shadow = Self::shadow_bytes(pages);
        let tmp = self.dir.join(SHADOW_TMP);
        let commit = self.dir.join(SHADOW_COMMIT);

        // Phase 1: shadow write. Any failure here aborts cleanly.
        let abort = |e: PageStoreError, tmp: &Path| {
            let _ = std::fs::remove_file(tmp);
            Err(e)
        };
        {
            let mut f = match File::create(&tmp) {
                Ok(f) => f,
                Err(e) => return abort(e.into(), &tmp),
            };
            let keep = match crash {
                Some(CrashPoint::Shadow(n)) => n.min(shadow.len()),
                _ => shadow.len(),
            };
            if self.roll(FaultSite::PageWrite).is_some() {
                return abort(
                    PageStoreError::Io("injected write fault on shadow image".into()),
                    &tmp,
                );
            }
            if let Err(e) = f.write_all(&shadow[..keep]) {
                return abort(e.into(), &tmp);
            }
            if matches!(crash, Some(CrashPoint::Shadow(_))) {
                let _ = f.sync_all();
                return Err(PageStoreError::Io("simulated crash during shadow write".into()));
            }
            if self.roll(FaultSite::PageFsync).is_some() {
                return abort(
                    PageStoreError::Io("injected fsync fault on shadow image".into()),
                    &tmp,
                );
            }
            if let Err(e) = f.sync_all() {
                return abort(e.into(), &tmp);
            }
        }
        // Read back and verify before the rename makes it authoritative.
        {
            let mut back = Vec::new();
            let read_ok = File::open(&tmp).and_then(|mut f| f.read_to_end(&mut back));
            if let Err(e) = read_ok {
                return abort(e.into(), &tmp);
            }
            if back != shadow {
                return abort(
                    PageStoreError::Corrupt("shadow image failed read-back verification".into()),
                    &tmp,
                );
            }
        }
        if let Err(e) = std::fs::rename(&tmp, &commit) {
            return abort(e.into(), &tmp);
        }

        // Phase 2: in-place apply. Failures leave the committed shadow
        // for recovery to re-drive.
        self.apply_pages(pages, crash)?;
        std::fs::remove_file(&commit)?;
        Ok(())
    }

    /// Write pages in place, optionally tearing after `Apply(n)` bytes.
    fn apply_pages(
        &mut self,
        pages: &[(u32, &PageBuf)],
        crash: Option<CrashPoint>,
    ) -> Result<(), PageStoreError> {
        let mut budget = match crash {
            Some(CrashPoint::Apply(n)) => Some(n),
            _ => None,
        };
        for (id, buf) in pages {
            if self.roll(FaultSite::PageWrite).is_some() {
                return Err(PageStoreError::Io(format!(
                    "injected write fault applying page {id} (shadow image retained)"
                )));
            }
            self.file.seek(SeekFrom::Start(u64::from(*id) * PAGE_SIZE as u64))?;
            match budget {
                Some(n) if n < PAGE_SIZE => {
                    // Torn in-place write: only a prefix of this page
                    // lands, then the "machine" dies.
                    self.file.write_all(&buf[..n])?;
                    let _ = self.file.sync_all();
                    return Err(PageStoreError::Io("simulated crash during apply".into()));
                }
                Some(n) => {
                    self.file.write_all(&buf[..])?;
                    budget = Some(n - PAGE_SIZE);
                }
                None => self.file.write_all(&buf[..])?,
            }
        }
        if budget.is_some() {
            // The tear point fell at or past the end of the apply bytes:
            // crash before the final fsync/cleanup.
            let _ = self.file.sync_all();
            return Err(PageStoreError::Io("simulated crash before commit cleanup".into()));
        }
        if self.roll(FaultSite::PageFsync).is_some() {
            return Err(PageStoreError::Io(
                "injected fsync fault after apply (shadow image retained)".into(),
            ));
        }
        self.file.sync_all()?;
        Ok(())
    }

    /// Re-apply (or discard) shadow state for this file's directory.
    pub fn recover(&mut self) -> Result<bool, PageStoreError> {
        recover_dir(&self.dir)?;
        // Reopen so this handle sees the repaired bytes.
        self.file = OpenOptions::new().read(true).write(true).open(self.dir.join(FILE_NAME))?;
        Ok(true)
    }

    /// Flip one at-rest bit if the plan's `PageRot` site fires. The
    /// page is chosen from the plan's parameter stream among pages
    /// `1..page_count` (the header page is spared so the store stays
    /// openable; rot there is caught by open instead). Returns the
    /// flipped `(page, bit)`.
    pub fn inject_rot(&mut self, page_count: u32) -> Result<Option<(u32, usize)>, PageStoreError> {
        let Some(fault) = self.roll(FaultSite::PageRot) else { return Ok(None) };
        let PageFault::Rot { bit } = fault else { return Ok(None) };
        if page_count <= 1 {
            return Ok(None);
        }
        // Derive the target page from the same parameter draw (mixed so
        // page and bit position decorrelate) — rolling again would break
        // the two-draw-per-site discipline.
        let pick = (bit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        let target = 1 + (pick % u64::from(page_count - 1)) as u32;
        let mut buf = self.read_page_raw(target)?;
        buf[bit / 8] ^= 1 << (bit % 8);
        self.file.seek(SeekFrom::Start(u64::from(target) * PAGE_SIZE as u64))?;
        self.file.write_all(&buf[..])?;
        self.file.sync_all()?;
        Ok(Some((target, bit)))
    }
}

/// Apply (or discard) shadow state in `dir`, without needing an open
/// [`PageFile`]. A valid `pages.shadow.commit` is re-applied page by
/// page and deleted; an invalid one (torn before it was renamed — which
/// cannot happen — or rotted at rest) is deleted; a stray
/// `pages.shadow.tmp` is always deleted.
pub fn recover_dir(dir: &Path) -> Result<(), PageStoreError> {
    let tmp = dir.join(SHADOW_TMP);
    if tmp.exists() {
        std::fs::remove_file(&tmp)?;
    }
    let commit = dir.join(SHADOW_COMMIT);
    if !commit.exists() {
        return Ok(());
    }
    match parse_shadow(&std::fs::read(&commit)?) {
        Some(pages) => {
            let path = dir.join(FILE_NAME);
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            for (id, buf) in pages {
                file.seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))?;
                file.write_all(&buf[..])?;
            }
            file.sync_all()?;
            std::fs::remove_file(&commit)?;
        }
        None => {
            // A commit image that fails verification can only be at-rest
            // rot (the rename happened after read-back verification).
            // The in-place image is intact or repairable by scrub.
            std::fs::remove_file(&commit)?;
        }
    }
    Ok(())
}

/// Parse and verify a shadow image. Hostile-byte safe: the page count is
/// validated against the actual byte length before any allocation.
fn parse_shadow(bytes: &[u8]) -> Option<Vec<(u32, PageBuf)>> {
    if bytes.len() < 16 || &bytes[..8] != SHADOW_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let body = &bytes[12..];
    if crate::crc::crc32c(body) != stored {
        return None;
    }
    let count = u32::from_le_bytes(body[..4].try_into().ok()?) as usize;
    let rest = &body[4..];
    if count != rest.len() / (4 + PAGE_SIZE) || !rest.len().is_multiple_of(4 + PAGE_SIZE) {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for chunk in rest.chunks_exact(4 + PAGE_SIZE) {
        let id = u32::from_le_bytes(chunk[..4].try_into().ok()?);
        let mut buf = page::zeroed();
        buf.copy_from_slice(&chunk[4..]);
        if !page::verify(&buf) {
            return None;
        }
        out.push((id, buf));
    }
    Some(out)
}

/// Read-only CRC walk over the page file in `dir`: every page is
/// verified against its checksum; the header page additionally against
/// its magic/version. No faults roll (the scrubber must see the medium
/// raw) and nothing is modified.
pub fn scrub_dir(dir: &Path) -> Result<PageScrubReport, PageStoreError> {
    let path = dir.join(FILE_NAME);
    let bytes = std::fs::read(&path)?;
    if bytes.len() % PAGE_SIZE != 0 {
        return Err(PageStoreError::Corrupt(format!(
            "page file length {} is not a whole number of pages",
            bytes.len()
        )));
    }
    let mut report = PageScrubReport {
        pages: (bytes.len() / PAGE_SIZE) as u32,
        corrupt: Vec::new(),
        pending_shadow: dir.join(SHADOW_COMMIT).exists(),
    };
    for (id, chunk) in bytes.chunks_exact(PAGE_SIZE).enumerate() {
        let buf: &[u8; PAGE_SIZE] = chunk.try_into().expect("exact chunk");
        nebula_obs::counter_add(counters::SCRUB_PAGES, 1);
        let clean = if id == 0 { page::decode_header_page(buf).is_ok() } else { page::verify(buf) };
        if !clean {
            report.corrupt.push(id as u32);
            nebula_obs::counter_add(counters::SCRUB_CORRUPT, 1);
        }
    }
    Ok(report)
}

/// Outcome of a repair walk over a page file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageRepairReport {
    /// Pages healed in place by single-bit CRC correction.
    pub repaired: Vec<u32>,
    /// Pages whose damage exceeds one bit (content unrecoverable from
    /// the file alone).
    pub unrecoverable: Vec<u32>,
}

/// Walk the page file in `dir` and heal single-bit rot **in place**:
/// every page failing its checksum is run through the CRC-linearity
/// corrector ([`page::correct_single_bit`]) and, when exactly one bit
/// was flipped, rewritten byte-identical to its sealed image. Damage
/// wider than one bit is reported as unrecoverable — the caller decides
/// whether to rebuild from live state or restore from a checkpoint.
pub fn repair_dir(dir: &Path) -> Result<PageRepairReport, PageStoreError> {
    let path = dir.join(FILE_NAME);
    let bytes = std::fs::read(&path)?;
    if !bytes.len().is_multiple_of(PAGE_SIZE) {
        return Err(PageStoreError::Corrupt(format!(
            "page file length {} is not a whole number of pages",
            bytes.len()
        )));
    }
    let mut report = PageRepairReport::default();
    let mut fixed: Vec<(u32, PageBuf)> = Vec::new();
    for (id, chunk) in bytes.chunks_exact(PAGE_SIZE).enumerate() {
        let buf: &[u8; PAGE_SIZE] = chunk.try_into().expect("exact chunk");
        if page::verify(buf) {
            continue;
        }
        let mut candidate = page::zeroed();
        candidate.copy_from_slice(buf);
        if page::correct_single_bit(&mut candidate).is_some() && page::verify(&candidate) {
            report.repaired.push(id as u32);
            fixed.push((id as u32, candidate));
        } else {
            report.unrecoverable.push(id as u32);
        }
    }
    if !fixed.is_empty() {
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        for (id, buf) in &fixed {
            file.seek(SeekFrom::Start(u64::from(*id) * PAGE_SIZE as u64))?;
            file.write_all(&buf[..])?;
        }
        file.sync_all()?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{encode_header_page, seal, set_page_type, zeroed, TYPE_HEAP};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nebula-pagefile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn heap_page(fill: u8) -> PageBuf {
        let mut p = zeroed();
        set_page_type(&mut p, TYPE_HEAP);
        crate::slotted::init(&mut p);
        crate::slotted::insert(&mut p, &[fill; 64]).unwrap();
        seal(&mut p);
        p
    }

    #[test]
    fn create_commit_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut pf = PageFile::create(&dir).unwrap();
        let header = encode_header_page(3, 7);
        let p1 = heap_page(1);
        let p2 = heap_page(2);
        pf.commit_batch(&[(0, &header), (1, &p1), (2, &p2)]).unwrap();
        drop(pf);
        let (mut pf, pages, watermark) = PageFile::open(&dir).unwrap();
        assert_eq!((pages, watermark), (3, 7));
        assert_eq!(pf.read_page(1).unwrap()[..], p1[..]);
        assert_eq!(pf.read_page(2).unwrap()[..], p2[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_shadow_write_loses_nothing() {
        let dir = tmpdir("torn-shadow");
        let mut pf = PageFile::create(&dir).unwrap();
        let h2 = encode_header_page(2, 1);
        let p1 = heap_page(9);
        pf.commit_batch(&[(0, &h2), (1, &p1)]).unwrap();
        // Tear a second commit at every interesting shadow offset.
        let h3 = encode_header_page(2, 2);
        let p1b = heap_page(13);
        for cut in [0, 7, 12, 100, PAGE_SIZE, PAGE_SIZE + 17, 2 * PAGE_SIZE + 19] {
            assert!(pf
                .commit_batch_crash(&[(0, &h3), (1, &p1b)], CrashPoint::Shadow(cut))
                .is_err());
            drop(pf);
            let (reopened, pages, watermark) = PageFile::open(&dir).unwrap();
            pf = reopened;
            assert_eq!((pages, watermark), (2, 1), "old image intact at cut {cut}");
            assert_eq!(pf.read_page(1).unwrap()[..], p1[..]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_apply_recovers_to_new_image() {
        let dir = tmpdir("torn-apply");
        let mut pf = PageFile::create(&dir).unwrap();
        let h2 = encode_header_page(2, 1);
        let p1 = heap_page(9);
        pf.commit_batch(&[(0, &h2), (1, &p1)]).unwrap();
        let h3 = encode_header_page(2, 2);
        let p1b = heap_page(13);
        // Tear the in-place apply at page boundaries and mid-page.
        for cut in [0, 1, PAGE_SIZE / 2, PAGE_SIZE, PAGE_SIZE + PAGE_SIZE / 2, 2 * PAGE_SIZE] {
            assert!(pf.commit_batch_crash(&[(0, &h3), (1, &p1b)], CrashPoint::Apply(cut)).is_err());
            drop(pf);
            let (reopened, pages, watermark) = PageFile::open(&dir).unwrap();
            pf = reopened;
            assert_eq!((pages, watermark), (2, 2), "new image recovered at cut {cut}");
            assert_eq!(pf.read_page(1).unwrap()[..], p1b[..], "cut {cut}");
            // Restore the old image for the next iteration.
            pf.commit_batch(&[(0, &h2), (1, &p1)]).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_finds_injected_rot_exactly() {
        let dir = tmpdir("scrub");
        let mut pf = PageFile::create(&dir).unwrap();
        let header = encode_header_page(4, 0);
        let pages: Vec<PageBuf> = (1..4).map(|i| heap_page(i as u8)).collect();
        let batch: Vec<(u32, &PageBuf)> = std::iter::once((0, &header))
            .chain(pages.iter().enumerate().map(|(i, p)| (i as u32 + 1, p)))
            .collect();
        pf.commit_batch(&batch).unwrap();
        assert!(scrub_dir(&dir).unwrap().is_clean());
        // Seeded rot at rate 1.0 flips exactly one bit per call. Track
        // the net damage per page (the same bit flipped twice cancels).
        pf.set_fault_plan(Some(FaultPlan::new(0xD15C).with_pages(0.0, 0.0, 0.0, 1.0)));
        let mut flips: std::collections::BTreeMap<u32, std::collections::BTreeSet<usize>> =
            std::collections::BTreeMap::new();
        for _ in 0..8 {
            let (page, bit) = pf.inject_rot(4).unwrap().expect("rate 1.0 fires");
            assert!((1..4).contains(&page), "header page spared");
            let set = flips.entry(page).or_default();
            if !set.insert(bit) {
                set.remove(&bit);
            }
        }
        let corrupt_expected: std::collections::BTreeSet<u32> =
            flips.iter().filter(|(_, s)| !s.is_empty()).map(|(&p, _)| p).collect();
        let one_bit: std::collections::BTreeSet<u32> =
            flips.iter().filter(|(_, s)| s.len() == 1).map(|(&p, _)| p).collect();
        let multi_bit: std::collections::BTreeSet<u32> =
            flips.iter().filter(|(_, s)| s.len() >= 2).map(|(&p, _)| p).collect();
        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.pages, 4);
        assert_eq!(
            report.corrupt.iter().copied().collect::<std::collections::BTreeSet<_>>(),
            corrupt_expected,
            "scrub finds exactly the rotted pages: no misses, no false positives"
        );
        // Single-bit rot heals in place via CRC linearity; wider damage
        // is reported unrecoverable, never silently "fixed".
        let healed = repair_dir(&dir).unwrap();
        assert_eq!(
            healed.repaired.iter().copied().collect::<std::collections::BTreeSet<_>>(),
            one_bit
        );
        assert_eq!(
            healed.unrecoverable.iter().copied().collect::<std::collections::BTreeSet<_>>(),
            multi_bit
        );
        assert_eq!(
            scrub_dir(&dir)
                .unwrap()
                .corrupt
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>(),
            multi_bit,
            "after repair only multi-bit pages remain corrupt"
        );
        drop(pf);
        let (mut pf, _, _) = PageFile::open(&dir).unwrap();
        for (i, p) in pages.iter().enumerate() {
            let id = i as u32 + 1;
            if !multi_bit.contains(&id) {
                assert_eq!(pf.read_page(id).unwrap()[..], p[..], "page {id} restored");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_read_faults_retry_then_surface() {
        let dir = tmpdir("read-faults");
        let mut pf = PageFile::create(&dir).unwrap();
        let p1 = heap_page(5);
        pf.commit_batch(&[(0, &encode_header_page(2, 0)), (1, &p1)]).unwrap();
        // Rate 0.5: reads eventually succeed via retries.
        pf.set_fault_plan(Some(FaultPlan::new(77).with_pages(0.5, 0.0, 0.0, 0.0)));
        let mut survived = 0;
        for _ in 0..32 {
            if pf.read_page(1).is_ok() {
                survived += 1;
            }
        }
        assert!(survived > 20, "retries absorb most transient read faults: {survived}/32");
        assert!(pf.fault_tally().retries > 0);
        // Rate 1.0: the fault persists through every retry and surfaces.
        pf.set_fault_plan(Some(FaultPlan::new(77).with_pages(1.0, 0.0, 0.0, 0.0)));
        assert!(matches!(pf.read_page(1), Err(PageStoreError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_aborts_a_flush_typed_with_the_old_image_intact() {
        let dir = tmpdir("enospc");
        let mut pf = PageFile::create(&dir).unwrap();
        let p1 = heap_page(5);
        pf.commit_batch(&[(0, &encode_header_page(2, 1)), (1, &p1)]).unwrap();
        // A full disk surfaces as a typed error, not a panic, and not a
        // stringly Io error callers would blindly retry.
        pf.set_fault_plan(Some(FaultPlan::new(11).with_page_enospc(1.0)));
        let p1b = heap_page(6);
        for _ in 0..4 {
            let err = pf.commit_batch(&[(0, &encode_header_page(2, 2)), (1, &p1b)]).unwrap_err();
            assert_eq!(err, PageStoreError::NoSpace);
        }
        assert!(pf.fault_tally().injected >= 4);
        // Nothing reached disk: no shadow debris, old image byte-intact.
        assert!(!dir.join(SHADOW_TMP).exists());
        assert!(!dir.join(SHADOW_COMMIT).exists());
        drop(pf);
        let (mut pf, _, watermark) = PageFile::open(&dir).unwrap();
        assert_eq!(watermark, 1, "aborted flush changed nothing");
        assert_eq!(pf.read_page(1).unwrap()[..], p1[..]);
        // Space frees (plan cleared): the same flush succeeds.
        pf.set_fault_plan(None);
        pf.commit_batch(&[(0, &encode_header_page(2, 2)), (1, &p1b)]).unwrap();
        assert_eq!(pf.read_page(1).unwrap()[..], p1b[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_fault_during_apply_is_recoverable() {
        let dir = tmpdir("write-fault");
        let mut pf = PageFile::create(&dir).unwrap();
        let p1 = heap_page(5);
        pf.commit_batch(&[(0, &encode_header_page(2, 1)), (1, &p1)]).unwrap();
        let p1b = heap_page(6);
        // First PageWrite roll (shadow) passes, second (apply) fires:
        // craft via rate 1.0 but shadow roll disabled is not possible —
        // instead use rate 1.0 and accept the clean abort, then verify
        // nothing changed.
        pf.set_fault_plan(Some(FaultPlan::new(3).with_pages(0.0, 1.0, 0.0, 0.0)));
        assert!(pf.commit_batch(&[(0, &encode_header_page(2, 2)), (1, &p1b)]).is_err());
        pf.set_fault_plan(None);
        drop(pf);
        let (mut pf, _, watermark) = PageFile::open(&dir).unwrap();
        assert_eq!(watermark, 1, "aborted commit changed nothing");
        assert_eq!(pf.read_page(1).unwrap()[..], p1[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

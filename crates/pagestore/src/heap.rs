//! The record heap: stable `u64` record ids over slotted pages, with
//! overflow chains for records larger than a page.
//!
//! A record id is `(page << 16) | slot`. Records small enough to fit a
//! page are stored as a single segment; larger records chain segments
//! across pages, each segment carrying a 1- or 9-byte header:
//!
//! ```text
//! [0]      u8   flags (bit 0: a next-segment id follows)
//! [1..9)   u64  next segment's record id (only when bit 0 set)
//! [..]          payload chunk
//! ```
//!
//! Placement is deterministic: the free-space index is a `BTreeMap`
//! walked in ascending page order, so the same insert sequence always
//! lands records on the same pages — a prerequisite for the golden page
//! file and for mem-vs-paged digest identity.

use crate::file::{CrashPoint, FaultTally, PageScrubReport};
use crate::page::PAYLOAD_SIZE;
use crate::pool::{BufferPool, PoolStats};
use crate::{slotted, PageStoreError};
use nebula_govern::FaultPlan;
use std::collections::BTreeMap;

/// Segment header cost reserved when sizing chunks (flags + next id).
const SEG_HEADER: usize = 9;

/// Slot directory cost per record.
const SLOT_COST: usize = 4;

/// Largest payload chunk one segment carries.
const MAX_CHUNK: usize = PAYLOAD_SIZE - SLOT_COST - SEG_HEADER;

fn record_id(page: u32, slot: usize) -> u64 {
    (u64::from(page) << 16) | slot as u64
}

fn split_id(id: u64) -> (u32, usize) {
    ((id >> 16) as u32, (id & 0xFFFF) as usize)
}

/// A heap of variable-length records over a [`BufferPool`].
#[derive(Debug)]
pub struct RecordHeap {
    pool: BufferPool,
    /// Conservative free bytes per page, ascending page order.
    free: BTreeMap<u32, usize>,
}

impl RecordHeap {
    /// Open (or create) a heap over the page file in `dir`. Reopening an
    /// existing file rebuilds the free-space index with one read pass.
    pub fn open(dir: &std::path::Path, pool_frames: usize) -> Result<RecordHeap, PageStoreError> {
        let mut pool = BufferPool::open(dir, pool_frames)?;
        let mut free = BTreeMap::new();
        for page in 1..pool.page_count() {
            let bytes = pool.with_page(page, slotted::free_bytes)?;
            free.insert(page, bytes);
        }
        Ok(RecordHeap { pool, free })
    }

    /// Insert a record, returning its stable id.
    pub fn insert(&mut self, bytes: &[u8]) -> Result<u64, PageStoreError> {
        if bytes.len() <= MAX_CHUNK {
            let mut seg = Vec::with_capacity(1 + bytes.len());
            seg.push(0u8);
            seg.extend_from_slice(bytes);
            return self.place_segment(&seg);
        }
        // Chain: place the tail chunk first so each earlier segment can
        // embed its successor's id.
        let chunks: Vec<&[u8]> = bytes.chunks(MAX_CHUNK).collect();
        let mut next: Option<u64> = None;
        for chunk in chunks.iter().rev() {
            let mut seg = Vec::with_capacity(SEG_HEADER + chunk.len());
            match next {
                Some(id) => {
                    seg.push(1u8);
                    seg.extend_from_slice(&id.to_le_bytes());
                }
                None => seg.push(0u8),
            }
            seg.extend_from_slice(chunk);
            next = Some(self.place_segment(&seg)?);
        }
        next.ok_or_else(|| PageStoreError::Io("empty overflow chain".into()))
    }

    /// Read a record's full bytes. `Ok(None)` when the id does not
    /// resolve (deleted, or damaged beyond the page CRC's reach).
    pub fn get(&mut self, id: u64) -> Result<Option<Vec<u8>>, PageStoreError> {
        let mut out = Vec::new();
        let mut cursor = Some(id);
        let mut visited = std::collections::HashSet::new();
        while let Some(seg_id) = cursor {
            if !visited.insert(seg_id) {
                return Err(PageStoreError::Corrupt(format!(
                    "overflow chain cycle at record {seg_id:#x}"
                )));
            }
            let (page, slot) = split_id(seg_id);
            self.pool.pin(page)?;
            let parsed = self.pool.with_page(page, |p| {
                slotted::read(p, slot)
                    .and_then(parse_segment)
                    .map(|(next, chunk)| (next, chunk.to_vec()))
            });
            self.pool.unpin(page);
            match parsed? {
                Some((next, chunk)) => {
                    out.extend_from_slice(&chunk);
                    cursor = next;
                }
                None if seg_id == id => return Ok(None),
                None => {
                    return Err(PageStoreError::Corrupt(format!(
                        "overflow chain broken at segment {seg_id:#x}"
                    )))
                }
            }
        }
        Ok(Some(out))
    }

    /// Delete a record (and its whole chain). Idempotent: deleting an
    /// unknown id reports `Ok(false)`.
    pub fn delete(&mut self, id: u64) -> Result<bool, PageStoreError> {
        let mut cursor = Some(id);
        let mut removed = false;
        let mut visited = std::collections::HashSet::new();
        while let Some(seg_id) = cursor {
            if !visited.insert(seg_id) {
                break;
            }
            let (page, slot) = split_id(seg_id);
            let next = match self.pool.with_page(page, |p| {
                slotted::read(p, slot).and_then(parse_segment).map(|(next, _)| next)
            }) {
                Ok(Some(next)) => next,
                Ok(None) => break,
                Err(PageStoreError::UnknownRecord(_)) => break,
                Err(e) => return Err(e),
            };
            self.pool.with_page_mut(page, |p| slotted::remove(p, slot))?;
            self.refresh_free(page)?;
            removed = true;
            cursor = next;
        }
        Ok(removed)
    }

    /// Replace a record's bytes. The id may change (relocation); the new
    /// id is returned and the old one is dead.
    pub fn update(&mut self, id: u64, bytes: &[u8]) -> Result<u64, PageStoreError> {
        self.delete(id)?;
        self.insert(bytes)
    }

    /// Place one encoded segment on the lowest page that fits, growing
    /// the file when none does.
    fn place_segment(&mut self, seg: &[u8]) -> Result<u64, PageStoreError> {
        let need = seg.len();
        let candidate = self.free.iter().find(|(_, &free)| free >= need).map(|(&page, _)| page);
        if let Some(page) = candidate {
            let fits = self.pool.with_page(page, |p| slotted::fits(p, seg.len()))?;
            if fits {
                let slot = self.pool.with_page_mut(page, |p| slotted::insert(p, seg))?;
                if let Some(slot) = slot {
                    self.refresh_free(page)?;
                    return Ok(record_id(page, slot));
                }
            }
            // The index was optimistic (slot-cost edge): fall through to
            // a fresh page after correcting it.
            self.refresh_free(page)?;
        }
        let page = self.pool.allocate()?;
        let slot =
            self.pool.with_page_mut(page, |p| slotted::insert(p, seg))?.ok_or_else(|| {
                PageStoreError::Io(format!("segment of {} bytes missed a fresh page", seg.len()))
            })?;
        self.refresh_free(page)?;
        Ok(record_id(page, slot))
    }

    fn refresh_free(&mut self, page: u32) -> Result<(), PageStoreError> {
        let bytes = self.pool.with_page(page, slotted::free_bytes)?;
        self.free.insert(page, bytes);
        Ok(())
    }

    /// Flush dirty pages through one shadow commit, stamping `watermark`.
    pub fn flush(&mut self, watermark: u64) -> Result<(), PageStoreError> {
        self.pool.set_watermark(watermark);
        self.pool.flush()
    }

    /// [`RecordHeap::flush`] torn for the crash-point harness.
    pub fn flush_crash(&mut self, watermark: u64, crash: CrashPoint) -> Result<(), PageStoreError> {
        self.pool.set_watermark(watermark);
        self.pool.flush_crash(crash)
    }

    /// The durable watermark as of the last flush (or open).
    pub fn watermark(&self) -> u64 {
        self.pool.watermark()
    }

    /// Pages in the file, including the header page.
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Injected-fault tally.
    pub fn fault_tally(&self) -> FaultTally {
        self.pool.fault_tally()
    }

    /// Dirty pages awaiting a flush.
    pub fn dirty_pages(&self) -> u64 {
        self.pool.dirty_pages()
    }

    /// Resident frames.
    pub fn resident_pages(&self) -> u64 {
        self.pool.resident_pages()
    }

    /// The frame budget the pool was opened with.
    pub fn pool_frames(&self) -> usize {
        self.pool.capacity()
    }

    /// Install (or clear) the fault plan page I/O rolls against.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.pool.set_fault_plan(plan);
    }

    /// Read-only CRC walk over the (flushed) page file.
    pub fn scrub(&mut self) -> Result<PageScrubReport, PageStoreError> {
        crate::file::scrub_dir(&self.pool.dir())
    }

    /// Roll the `PageRot` site; on a hit one at-rest bit flips on disk.
    pub fn inject_rot(&mut self) -> Result<Option<(u32, usize)>, PageStoreError> {
        self.pool.inject_rot()
    }
}

/// Parse a segment into `(next, chunk)`. Hostile-byte safe.
fn parse_segment(seg: &[u8]) -> Option<(Option<u64>, &[u8])> {
    let (&flags, rest) = seg.split_first()?;
    if flags & 1 == 1 {
        if rest.len() < 8 {
            return None;
        }
        let next = u64::from_le_bytes(rest[..8].try_into().ok()?);
        Some((Some(next), &rest[8..]))
    } else {
        Some((None, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-heap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn small_records_roundtrip_and_survive_reopen() {
        let dir = tmpdir("small");
        let mut heap = RecordHeap::open(&dir, 8).unwrap();
        let ids: Vec<u64> = (0u8..50).map(|i| heap.insert(&[i; 40]).unwrap()).collect();
        heap.flush(1).unwrap();
        drop(heap);
        let mut heap = RecordHeap::open(&dir, 8).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(heap.get(*id).unwrap().as_deref(), Some(&[i as u8; 40][..]));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overflow_chains_span_pages() {
        let dir = tmpdir("overflow");
        let mut heap = RecordHeap::open(&dir, 8).unwrap();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let id = heap.insert(&big).unwrap();
        assert!(heap.page_count() > 5, "20 KB must span pages");
        assert_eq!(heap.get(id).unwrap().as_deref(), Some(&big[..]));
        heap.flush(1).unwrap();
        drop(heap);
        let mut heap = RecordHeap::open(&dir, 4).unwrap();
        assert_eq!(heap.get(id).unwrap().as_deref(), Some(&big[..]));
        // Deleting reclaims every segment for reuse.
        assert!(heap.delete(id).unwrap());
        assert_eq!(heap.get(id).unwrap(), None);
        let pages_before = heap.page_count();
        let id2 = heap.insert(&big).unwrap();
        assert_eq!(heap.page_count(), pages_before, "chain reused freed pages");
        assert_eq!(heap.get(id2).unwrap().as_deref(), Some(&big[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_relocates_and_old_id_dies() {
        let dir = tmpdir("update");
        let mut heap = RecordHeap::open(&dir, 8).unwrap();
        let id = heap.insert(b"short").unwrap();
        let id2 = heap.update(id, &[9u8; 6000]).unwrap();
        assert_eq!(heap.get(id2).unwrap().as_deref(), Some(&[9u8; 6000][..]));
        // The old id's slot may be reused (by a new record or an interior
        // chain segment) — what must not happen is the old bytes surviving.
        if id != id2 {
            assert_ne!(
                heap.get(id).unwrap().as_deref(),
                Some(&b"short"[..]),
                "old bytes must not survive an update"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn placement_is_deterministic_across_runs() {
        let run = |tag: &str| -> Vec<u64> {
            let dir = tmpdir(tag);
            let mut heap = RecordHeap::open(&dir, 4).unwrap();
            let mut ids = Vec::new();
            for i in 0u32..200 {
                ids.push(
                    heap.insert(&vec![(i % 256) as u8; 17 + (i as usize * 13) % 300]).unwrap(),
                );
                if i % 7 == 0 {
                    let victim = ids[(i as usize) / 2];
                    let _ = heap.delete(victim).unwrap();
                }
            }
            heap.flush(1).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            ids
        };
        assert_eq!(run("det-a"), run("det-b"), "same sequence, same ids");
    }

    #[test]
    fn deleted_ids_resolve_to_none_not_panic() {
        let dir = tmpdir("deleted");
        let mut heap = RecordHeap::open(&dir, 8).unwrap();
        let id = heap.insert(b"x").unwrap();
        assert!(heap.delete(id).unwrap());
        assert!(!heap.delete(id).unwrap(), "second delete is a no-op");
        assert_eq!(heap.get(id).unwrap(), None);
        // An id on a page that does not exist.
        assert!(matches!(heap.get(record_id(999, 0)), Err(PageStoreError::UnknownRecord(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

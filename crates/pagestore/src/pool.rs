//! The buffer pool: a bounded set of resident page frames over a
//! [`PageFile`], with pin/unpin and deterministic clock-hand
//! (second-chance) eviction.
//!
//! The pool is the only path to page bytes. Reads land in a frame
//! (counting a hit or a miss); mutations mark the frame dirty; the dirty
//! set reaches disk only through [`BufferPool::flush`], which seals every
//! dirty page (CRC + LSN watermark) and hands the batch — header page
//! first, then dirty pages sorted by page id — to the page file's
//! shadow-commit discipline. That ordering is the log-before-apply
//! contract: the durable watermark in the header page and the page
//! images it covers move in one atomic commit.
//!
//! Eviction is deterministic: the clock hand sweeps frames in index
//! order, clearing reference bits, and the first unpinned, unreferenced
//! frame is the victim. Evicting a dirty victim first flushes the whole
//! dirty set (never a lone page — single-page write-back would let page
//! images outrun the watermark).

use crate::file::{CrashPoint, FaultTally, PageFile};
use crate::page::{self, PageBuf, PAGE_SIZE};
use crate::{counters, PageStoreError};
use nebula_govern::FaultPlan;
use std::collections::HashMap;

/// Fewest frames a pool will run with (one victim + one pinned page).
pub const MIN_FRAMES: usize = 2;

/// Default frame budget when the caller does not size the pool.
pub const DEFAULT_FRAMES: usize = 256;

#[derive(Debug)]
struct Frame {
    page_id: u32,
    buf: PageBuf,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// Pool counters, mirrored into the obs registry as `page.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Accesses that had to read the page file.
    pub misses: u64,
    /// Frames recycled by the clock hand.
    pub evictions: u64,
    /// Shadow-commit flushes.
    pub flushes: u64,
    /// Dirty pages written back across all flushes.
    pub write_backs: u64,
}

/// A bounded page cache over one [`PageFile`].
#[derive(Debug)]
pub struct BufferPool {
    file: PageFile,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    hand: usize,
    page_count: u32,
    watermark: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Open (or create) the page file in `dir` with room for `capacity`
    /// resident frames. The header page is read eagerly; data pages
    /// fault in on demand.
    pub fn open(dir: &std::path::Path, capacity: usize) -> Result<BufferPool, PageStoreError> {
        let capacity = capacity.max(MIN_FRAMES);
        let (file, page_count, watermark) = if dir.join(crate::file::FILE_NAME).exists() {
            PageFile::open(dir)?
        } else {
            (PageFile::create(dir)?, 1, 0)
        };
        Ok(BufferPool {
            file,
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            page_count,
            watermark,
            stats: PoolStats::default(),
        })
    }

    /// Pages in the file, including the header page.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// The durable LSN watermark as of the last flush (or open).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Advance the watermark; it reaches disk with the next flush.
    pub fn set_watermark(&mut self, lsn: u64) {
        self.watermark = self.watermark.max(lsn);
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Injected-fault tally from the underlying file.
    pub fn fault_tally(&self) -> FaultTally {
        self.file.fault_tally()
    }

    /// Install (or clear) the fault plan page I/O rolls against.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.file.set_fault_plan(plan);
    }

    /// The directory the page file lives in.
    pub fn dir(&self) -> std::path::PathBuf {
        self.file.dir().to_path_buf()
    }

    /// Roll the `PageRot` site and, if it fires, flip one at-rest bit in
    /// a data page on disk. Resident frames are invalidated so the rot
    /// is observed (by the scrubber or a checksum failure), not masked
    /// by the cache.
    pub fn inject_rot(&mut self) -> Result<Option<(u32, usize)>, PageStoreError> {
        let hit = self.file.inject_rot(self.page_count)?;
        if let Some((page, _)) = hit {
            if let Some(idx) = self.map.remove(&page) {
                // Keep the frame slot but forget the page: the next
                // access must re-read the rotted bytes.
                self.frames[idx].page_id = u32::MAX;
                self.frames[idx].dirty = false;
                self.frames[idx].pins = 0;
                self.frames[idx].referenced = false;
            }
        }
        Ok(hit)
    }

    /// Dirty pages currently awaiting a flush.
    pub fn dirty_pages(&self) -> u64 {
        self.frames.iter().filter(|f| f.dirty).count() as u64
    }

    /// Resident frames.
    pub fn resident_pages(&self) -> u64 {
        self.frames.len() as u64
    }

    /// The frame budget this pool was opened with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate a fresh heap page (zeroed, slotted-initialized, dirty).
    pub fn allocate(&mut self) -> Result<u32, PageStoreError> {
        // Find the frame first: if that triggers an eviction flush, the
        // header it writes must not yet claim the new page (a crash there
        // would otherwise leave a header counting a page the file lacks).
        let idx = self.free_frame()?;
        let id = self.page_count;
        self.page_count += 1;
        let mut buf = page::zeroed();
        page::set_page_type(&mut buf, page::TYPE_HEAP);
        crate::slotted::init(&mut buf);
        self.frames[idx] = Frame { page_id: id, buf, dirty: true, pins: 0, referenced: true };
        self.map.insert(id, idx);
        Ok(id)
    }

    /// Pin a page so eviction cannot recycle its frame. Every pin must
    /// be paired with [`BufferPool::unpin`].
    pub fn pin(&mut self, id: u32) -> Result<(), PageStoreError> {
        let idx = self.frame_for(id)?;
        self.frames[idx].pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&mut self, id: u32) {
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].pins = self.frames[idx].pins.saturating_sub(1);
        }
    }

    /// Read access to a page's bytes.
    pub fn with_page<R>(
        &mut self,
        id: u32,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, PageStoreError> {
        let idx = self.frame_for(id)?;
        Ok(f(&self.frames[idx].buf))
    }

    /// Mutable access to a page's bytes; the frame is marked dirty and
    /// the page reaches disk (sealed, LSN-stamped) at the next flush.
    pub fn with_page_mut<R>(
        &mut self,
        id: u32,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, PageStoreError> {
        let idx = self.frame_for(id)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].buf))
    }

    /// Flush the dirty set through one shadow commit: header page first,
    /// then dirty pages sorted by page id, each sealed with the current
    /// watermark as its LSN.
    pub fn flush(&mut self) -> Result<(), PageStoreError> {
        self.flush_inner(None)
    }

    /// [`BufferPool::flush`] torn at `crash` for the crash-point
    /// harness. The pool is poisoned for further use; reopen the
    /// directory to observe recovery.
    pub fn flush_crash(&mut self, crash: CrashPoint) -> Result<(), PageStoreError> {
        self.flush_inner(Some(crash))
    }

    fn flush_inner(&mut self, crash: Option<CrashPoint>) -> Result<(), PageStoreError> {
        let mut dirty: Vec<usize> =
            (0..self.frames.len()).filter(|&i| self.frames[i].dirty).collect();
        if dirty.is_empty() && crash.is_none() {
            return Ok(());
        }
        dirty.sort_by_key(|&i| self.frames[i].page_id);
        for &i in &dirty {
            let frame = &mut self.frames[i];
            page::set_lsn(&mut frame.buf, self.watermark);
            page::seal(&mut frame.buf);
        }
        let header = page::encode_header_page(self.page_count, self.watermark);
        let mut batch: Vec<(u32, &PageBuf)> = Vec::with_capacity(dirty.len() + 1);
        batch.push((0, &header));
        for &i in &dirty {
            batch.push((self.frames[i].page_id, &self.frames[i].buf));
        }
        match crash {
            Some(point) => self.file.commit_batch_crash(&batch, point)?,
            None => self.file.commit_batch(&batch)?,
        }
        let written = dirty.len() as u64;
        for i in dirty {
            self.frames[i].dirty = false;
        }
        self.stats.flushes += 1;
        self.stats.write_backs += written;
        nebula_obs::counter_add(counters::FLUSHES, 1);
        nebula_obs::counter_add(counters::WRITE_BACKS, written);
        Ok(())
    }

    /// Index of the frame holding `id`, faulting it in (and evicting if
    /// the pool is full) when absent.
    fn frame_for(&mut self, id: u32) -> Result<usize, PageStoreError> {
        if id == 0 || id >= self.page_count {
            return Err(PageStoreError::UnknownRecord(u64::from(id) << 16));
        }
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].referenced = true;
            self.stats.hits += 1;
            nebula_obs::counter_add(counters::HITS, 1);
            return Ok(idx);
        }
        self.stats.misses += 1;
        nebula_obs::counter_add(counters::MISSES, 1);
        let buf = self.file.read_page(id)?;
        if page::page_type(&buf) != page::TYPE_HEAP {
            return Err(PageStoreError::Corrupt(format!(
                "page {id} has type {} (expected heap)",
                page::page_type(&buf)
            )));
        }
        let idx = self.free_frame()?;
        self.frames[idx] = Frame { page_id: id, buf, dirty: false, pins: 0, referenced: true };
        self.map.insert(id, idx);
        Ok(idx)
    }

    /// A frame index free to overwrite: grows the pool while under
    /// budget, otherwise runs the clock hand.
    fn free_frame(&mut self) -> Result<usize, PageStoreError> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id: u32::MAX,
                buf: page::zeroed(),
                dirty: false,
                pins: 0,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Second-chance sweep. Two full passes guarantee a victim unless
        // every frame is pinned — that is a caller bug worth surfacing.
        for _ in 0..self.frames.len() * 2 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[idx];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if frame.dirty {
                // Never write back a lone page: flush the whole dirty
                // set so the on-disk image stays watermark-consistent.
                self.flush_inner(None)?;
            }
            let evicted = self.frames[idx].page_id;
            self.map.remove(&evicted);
            self.stats.evictions += 1;
            nebula_obs::counter_add(counters::EVICTIONS, 1);
            return Ok(idx);
        }
        Err(PageStoreError::Io(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-pool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn eviction_under_tiny_pool_preserves_every_page() {
        let dir = tmpdir("evict");
        let mut pool = BufferPool::open(&dir, MIN_FRAMES).unwrap();
        // Many more pages than frames.
        let pages: Vec<u32> = (0..16)
            .map(|i| {
                let id = pool.allocate().unwrap();
                pool.with_page_mut(id, |p| {
                    crate::slotted::insert(p, &[i as u8; 32]).unwrap();
                })
                .unwrap();
                id
            })
            .collect();
        pool.flush().unwrap();
        assert!(pool.stats().evictions > 0, "tiny pool must evict");
        // Every page reads back its record through the churn.
        for (i, id) in pages.iter().enumerate() {
            let ok = pool
                .with_page(*id, |p| crate::slotted::read(p, 0) == Some(&[i as u8; 32][..]))
                .unwrap();
            assert!(ok, "page {id} lost its record");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_frames_survive_the_clock_hand() {
        let dir = tmpdir("pin");
        let mut pool = BufferPool::open(&dir, MIN_FRAMES).unwrap();
        let keep = pool.allocate().unwrap();
        pool.flush().unwrap();
        pool.pin(keep).unwrap();
        for _ in 0..6 {
            pool.allocate().unwrap();
        }
        assert!(pool.with_page(keep, |_| ()).is_ok());
        assert_eq!(pool.stats().misses, 0, "pinned page never left the pool");
        pool.unpin(keep);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_then_reopen_restores_pages_and_watermark() {
        let dir = tmpdir("reopen");
        let mut pool = BufferPool::open(&dir, 8).unwrap();
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            crate::slotted::insert(p, b"durable").unwrap();
        })
        .unwrap();
        pool.set_watermark(42);
        pool.flush().unwrap();
        drop(pool);
        let mut pool = BufferPool::open(&dir, 8).unwrap();
        assert_eq!(pool.watermark(), 42);
        assert_eq!(pool.page_count(), 2);
        let bytes = pool.with_page(id, |p| crate::slotted::read(p, 0).map(<[u8]>::to_vec)).unwrap();
        assert_eq!(bytes.as_deref(), Some(&b"durable"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_changes_are_lost_flushed_changes_survive() {
        let dir = tmpdir("volatile");
        let mut pool = BufferPool::open(&dir, 8).unwrap();
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |p| {
            crate::slotted::insert(p, b"committed").unwrap();
        })
        .unwrap();
        pool.flush().unwrap();
        pool.with_page_mut(id, |p| {
            crate::slotted::insert(p, b"in-flight").unwrap();
        })
        .unwrap();
        drop(pool); // no flush: the second record must not survive
        let mut pool = BufferPool::open(&dir, 8).unwrap();
        let (first, second) = pool
            .with_page(id, |p| {
                (
                    crate::slotted::read(p, 0).map(<[u8]>::to_vec),
                    crate::slotted::read(p, 1).map(<[u8]>::to_vec),
                )
            })
            .unwrap();
        assert_eq!(first.as_deref(), Some(&b"committed"[..]));
        assert_eq!(second, None, "unflushed record leaked to disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

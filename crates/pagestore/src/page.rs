//! The fixed-size page format.
//!
//! Every page is [`PAGE_SIZE`] bytes with a 24-byte header:
//!
//! ```text
//! [0..4)    u32  crc32c of bytes [4..PAGE_SIZE)
//! [4..12)   u64  page LSN (mutation watermark when last dirtied)
//! [12..13)  u8   page type (1 = file header, 2 = heap)
//! [13..14)  u8   flags (reserved, zero)
//! [14..16)  u16  slot count (heap pages)
//! [16..18)  u16  free offset (start of the contiguous free tail)
//! [18..24)       reserved, zero
//! ```
//!
//! Page 0 is the **file header page**: its payload carries the magic
//! `NEBPAGE1`, a format version, the page size, the page count, and the
//! durable LSN watermark. Everything is little-endian. Decoders are
//! hostile-byte safe: every field is bounds-checked and no length read
//! from the page is trusted before validation.

use crate::crc::crc32c;
use crate::PageStoreError;

/// Page size in bytes. Fixed for the format's first version.
pub const PAGE_SIZE: usize = 4096;

/// Header bytes at the start of every page.
pub const HEADER_SIZE: usize = 24;

/// Payload bytes available to the slotted layout.
pub const PAYLOAD_SIZE: usize = PAGE_SIZE - HEADER_SIZE;

/// Magic at the start of the file-header page's payload.
pub const MAGIC: &[u8; 8] = b"NEBPAGE1";

/// Format version written by this crate.
pub const VERSION: u32 = 1;

/// Page type tag: the file-header page (page 0).
pub const TYPE_HEADER: u8 = 1;

/// Page type tag: a slotted heap page.
pub const TYPE_HEAP: u8 = 2;

/// One page's bytes, boxed to keep frames off the stack.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// A zeroed page.
pub fn zeroed() -> PageBuf {
    Box::new([0u8; PAGE_SIZE])
}

/// Read the page LSN field.
pub fn lsn(page: &[u8; PAGE_SIZE]) -> u64 {
    u64::from_le_bytes(page[4..12].try_into().expect("fixed slice"))
}

/// Stamp the page LSN field (the CRC must be resealed afterwards).
pub fn set_lsn(page: &mut [u8; PAGE_SIZE], lsn: u64) {
    page[4..12].copy_from_slice(&lsn.to_le_bytes());
}

/// Read the page type tag.
pub fn page_type(page: &[u8; PAGE_SIZE]) -> u8 {
    page[12]
}

/// Set the page type tag (the CRC must be resealed afterwards).
pub fn set_page_type(page: &mut [u8; PAGE_SIZE], ty: u8) {
    page[12] = ty;
}

/// Recompute and store the page CRC. Call after any mutation, before the
/// page reaches disk.
pub fn seal(page: &mut [u8; PAGE_SIZE]) {
    let crc = crc32c(&page[4..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
}

/// Verify the page CRC.
pub fn verify(page: &[u8; PAGE_SIZE]) -> bool {
    let stored = u32::from_le_bytes(page[0..4].try_into().expect("fixed slice"));
    crc32c(&page[4..]) == stored
}

/// Attempt to correct a **single** flipped bit anywhere in the page —
/// payload or the stored CRC itself — using CRC linearity: the XOR
/// difference between the stored and computed checksums uniquely
/// identifies a one-bit error position in O(page) (no brute-force
/// re-hashing). Returns the corrected absolute bit index, or `None` when
/// the page is clean or the damage is wider than one bit.
pub fn correct_single_bit(page: &mut [u8; PAGE_SIZE]) -> Option<usize> {
    let stored = u32::from_le_bytes(page[0..4].try_into().expect("fixed slice"));
    let computed = crc32c(&page[4..]);
    let diff = stored ^ computed;
    if diff == 0 {
        return None;
    }
    // One bit of difference in the checksum field itself: the payload is
    // fine, the stored CRC rotted.
    if diff.count_ones() == 1 {
        let bit = diff.trailing_zeros() as usize;
        page[bit / 8] ^= 1 << (bit % 8);
        return Some(bit);
    }
    // Walk the single-bit error signature backwards from the last payload
    // byte; the position whose signature matches `diff` is the culprit.
    let payload_len = PAGE_SIZE - 4;
    let mut effects: [u32; 8] = std::array::from_fn(crate::crc::bit_seed);
    for i in (0..payload_len).rev() {
        for (b, effect) in effects.iter().enumerate() {
            if *effect == diff {
                let byte = 4 + i;
                page[byte] ^= 1 << b;
                debug_assert!(verify(page), "corrected page must verify");
                return Some(byte * 8 + b);
            }
        }
        for effect in &mut effects {
            *effect = crate::crc::advance_zero(*effect);
        }
    }
    None
}

/// Build the file-header page for the given page count and watermark.
pub fn encode_header_page(page_count: u32, watermark: u64) -> PageBuf {
    let mut page = zeroed();
    set_page_type(&mut page, TYPE_HEADER);
    let p = HEADER_SIZE;
    page[p..p + 8].copy_from_slice(MAGIC);
    page[p + 8..p + 12].copy_from_slice(&VERSION.to_le_bytes());
    page[p + 12..p + 16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    page[p + 16..p + 20].copy_from_slice(&page_count.to_le_bytes());
    page[p + 20..p + 28].copy_from_slice(&watermark.to_le_bytes());
    seal(&mut page);
    page
}

/// Decode and validate the file-header page, returning
/// `(page_count, watermark)`.
pub fn decode_header_page(page: &[u8; PAGE_SIZE]) -> Result<(u32, u64), PageStoreError> {
    if !verify(page) {
        return Err(PageStoreError::Corrupt("file header page checksum mismatch".into()));
    }
    if page_type(page) != TYPE_HEADER {
        return Err(PageStoreError::Corrupt(format!(
            "page 0 has type {} (expected file header)",
            page_type(page)
        )));
    }
    let p = HEADER_SIZE;
    if &page[p..p + 8] != MAGIC {
        return Err(PageStoreError::Corrupt("not a nebula page file (bad magic)".into()));
    }
    let version = u32::from_le_bytes(page[p + 8..p + 12].try_into().expect("fixed slice"));
    if version != VERSION {
        return Err(PageStoreError::Corrupt(format!(
            "unsupported page format version {version} (this build reads {VERSION})"
        )));
    }
    let size = u32::from_le_bytes(page[p + 12..p + 16].try_into().expect("fixed slice"));
    if size as usize != PAGE_SIZE {
        return Err(PageStoreError::Corrupt(format!(
            "page size {size} differs from compiled {PAGE_SIZE}"
        )));
    }
    let page_count = u32::from_le_bytes(page[p + 16..p + 20].try_into().expect("fixed slice"));
    let watermark = u64::from_le_bytes(page[p + 20..p + 28].try_into().expect("fixed slice"));
    Ok((page_count, watermark))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_page_roundtrips() {
        let page = encode_header_page(17, 0xfeed);
        assert!(verify(&page));
        assert_eq!(decode_header_page(&page).unwrap(), (17, 0xfeed));
    }

    #[test]
    fn seal_and_verify_catch_every_bit_flip_in_a_sample() {
        let mut page = encode_header_page(3, 9);
        for bit in [0usize, 40, 4095 * 8 + 7, 12345] {
            let byte = bit / 8;
            page[byte] ^= 1 << (bit % 8);
            assert!(!verify(&page), "flip at bit {bit} undetected");
            page[byte] ^= 1 << (bit % 8);
            assert!(verify(&page));
        }
    }

    #[test]
    fn hostile_header_pages_rejected_cleanly() {
        let mut page = zeroed();
        assert!(decode_header_page(&page).is_err(), "zeroed page");
        // Sealed but wrong type/magic/version still rejected.
        set_page_type(&mut page, TYPE_HEAP);
        seal(&mut page);
        assert!(decode_header_page(&page).is_err());
        let mut page = encode_header_page(1, 0);
        page[HEADER_SIZE + 8] = 99; // version
        seal(&mut page);
        assert!(decode_header_page(&page).is_err());
    }

    #[test]
    fn single_bit_rot_is_corrected_exactly() {
        let clean = encode_header_page(5, 99);
        // Every region: payload start, middle, last byte, and the stored
        // CRC field itself.
        for bit in [32usize, 40, 777, 2048 * 8 + 3, PAGE_SIZE * 8 - 1, 0, 17, 31] {
            let mut page = clean.clone();
            page[bit / 8] ^= 1 << (bit % 8);
            assert!(!verify(&page), "bit {bit} flip must be detected");
            let fixed = correct_single_bit(&mut page).expect("one-bit rot is correctable");
            assert_eq!(fixed, bit, "corrector must name the exact bit");
            assert!(verify(&page));
            assert_eq!(page[..], clean[..], "byte-identical after correction");
        }
        // Two-bit damage in the payload is beyond a 1-bit corrector.
        let mut page = clean.clone();
        page[100] ^= 1;
        page[2000] ^= 8;
        assert!(correct_single_bit(&mut page).is_none());
        // A clean page is left alone.
        let mut page = clean.clone();
        assert!(correct_single_bit(&mut page).is_none());
        assert_eq!(page[..], clean[..]);
    }

    #[test]
    fn lsn_roundtrips() {
        let mut page = zeroed();
        set_lsn(&mut page, u64::MAX - 3);
        assert_eq!(lsn(&page), u64::MAX - 3);
    }
}

//! The slotted record layout inside a heap page.
//!
//! Records grow upward from the end of the page header; the slot
//! directory grows downward from the end of the page, 4 bytes per slot
//! (`u16` offset, `u16` length). Slot indices are stable for the life of
//! the page — deletion marks the slot dead (`offset == 0xFFFF`) and a
//! later insert may reuse it — so `(page, slot)` record ids survive
//! in-page compaction, which moves bytes but never renumbers slots.
//!
//! Every reader is hostile-byte safe: slot counts and offsets read from
//! the page are validated before use, so a corrupt page yields `None`
//! rather than a panic or an over-read.

use crate::page::{HEADER_SIZE, PAGE_SIZE};

/// Marker offset for a dead (deleted, reusable) slot.
const DEAD: u16 = 0xFFFF;

/// Bytes one slot directory entry costs.
const SLOT_COST: usize = 4;

/// Read the slot count from the page header.
pub fn slot_count(page: &[u8; PAGE_SIZE]) -> usize {
    u16::from_le_bytes([page[14], page[15]]) as usize
}

fn set_slot_count(page: &mut [u8; PAGE_SIZE], count: usize) {
    let bytes = (count as u16).to_le_bytes();
    page[14] = bytes[0];
    page[15] = bytes[1];
}

/// Read the free offset (start of the contiguous free tail).
fn free_off(page: &[u8; PAGE_SIZE]) -> usize {
    u16::from_le_bytes([page[16], page[17]]) as usize
}

fn set_free_off(page: &mut [u8; PAGE_SIZE], off: usize) {
    let bytes = (off as u16).to_le_bytes();
    page[16] = bytes[0];
    page[17] = bytes[1];
}

/// Initialize an empty heap payload (call on a fresh page after setting
/// the page type).
pub fn init(page: &mut [u8; PAGE_SIZE]) {
    set_slot_count(page, 0);
    set_free_off(page, HEADER_SIZE);
}

/// Slot entry `(offset, length)`, unvalidated.
fn slot_entry(page: &[u8; PAGE_SIZE], slot: usize) -> Option<(u16, u16)> {
    let base = PAGE_SIZE.checked_sub(SLOT_COST * (slot + 1))?;
    if base < HEADER_SIZE {
        return None;
    }
    let off = u16::from_le_bytes([page[base], page[base + 1]]);
    let len = u16::from_le_bytes([page[base + 2], page[base + 3]]);
    Some((off, len))
}

fn set_slot_entry(page: &mut [u8; PAGE_SIZE], slot: usize, off: u16, len: u16) {
    let base = PAGE_SIZE - SLOT_COST * (slot + 1);
    page[base..base + 2].copy_from_slice(&off.to_le_bytes());
    page[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
}

/// Where the slot directory starts for `count` slots.
fn dir_start(count: usize) -> usize {
    PAGE_SIZE.saturating_sub(SLOT_COST * count)
}

/// Read record `slot`, validating every field against the page bounds.
pub fn read(page: &[u8; PAGE_SIZE], slot: usize) -> Option<&[u8]> {
    let count = slot_count(page);
    if slot >= count || dir_start(count) < HEADER_SIZE {
        return None;
    }
    let (off, len) = slot_entry(page, slot)?;
    if off == DEAD {
        return None;
    }
    let (off, len) = (off as usize, len as usize);
    if off < HEADER_SIZE || off.checked_add(len)? > dir_start(count) {
        return None;
    }
    Some(&page[off..off + len])
}

/// Bytes occupied by live records.
fn live_bytes(page: &[u8; PAGE_SIZE]) -> usize {
    let count = slot_count(page);
    (0..count)
        .filter_map(|s| slot_entry(page, s))
        .filter(|(off, _)| *off != DEAD)
        .map(|(_, len)| len as usize)
        .sum()
}

/// Largest record this page can still accept (accounting for whether a
/// dead slot is reusable or a new directory entry must be paid for).
/// Agrees exactly with [`fits`]: `fits(page, n)` iff `n <= free_bytes`.
pub fn free_bytes(page: &[u8; PAGE_SIZE]) -> usize {
    let count = slot_count(page);
    if dir_start(count) < HEADER_SIZE {
        return 0;
    }
    let usable = PAGE_SIZE - HEADER_SIZE - SLOT_COST * count - live_bytes(page);
    let has_dead = (0..count).filter_map(|s| slot_entry(page, s)).any(|(off, _)| off == DEAD);
    if has_dead {
        usable
    } else {
        usable.saturating_sub(SLOT_COST)
    }
}

/// Whether a record of `len` bytes fits in this page (possibly after
/// compaction).
pub fn fits(page: &[u8; PAGE_SIZE], len: usize) -> bool {
    let count = slot_count(page);
    if dir_start(count) < HEADER_SIZE {
        return false; // corrupt count: never place data here
    }
    let has_dead = (0..count).filter_map(|s| slot_entry(page, s)).any(|(off, _)| off == DEAD);
    let slot_cost = if has_dead { 0 } else { SLOT_COST };
    let usable = PAGE_SIZE - HEADER_SIZE - SLOT_COST * count - live_bytes(page);
    usable >= len + slot_cost
}

/// Insert a record, returning its slot index. Reuses the lowest dead
/// slot, compacting the page first when the contiguous tail is too small
/// but enough dead bytes exist. Returns `None` when the record cannot
/// fit.
pub fn insert(page: &mut [u8; PAGE_SIZE], bytes: &[u8]) -> Option<usize> {
    if !fits(page, bytes.len()) {
        return None;
    }
    let count = slot_count(page);
    let dead = (0..count).find(|s| matches!(slot_entry(page, *s), Some((off, _)) if off == DEAD));
    let new_count = if dead.is_some() { count } else { count + 1 };
    if free_off(page) + bytes.len() > dir_start(new_count) {
        compact(page);
    }
    let off = free_off(page);
    if off + bytes.len() > dir_start(new_count) {
        return None; // accounting disagrees with the bytes: treat as full
    }
    page[off..off + bytes.len()].copy_from_slice(bytes);
    let slot = dead.unwrap_or(count);
    set_slot_count(page, new_count);
    set_slot_entry(page, slot, off as u16, bytes.len() as u16);
    set_free_off(page, off + bytes.len());
    Some(slot)
}

/// Mark a slot dead. Returns true if it held a live record. The slot
/// index stays valid (and reusable); the bytes are reclaimed by the next
/// compaction.
pub fn remove(page: &mut [u8; PAGE_SIZE], slot: usize) -> bool {
    let count = slot_count(page);
    if slot >= count || dir_start(count) < HEADER_SIZE {
        return false;
    }
    match slot_entry(page, slot) {
        Some((off, _)) if off != DEAD => {
            set_slot_entry(page, slot, DEAD, 0);
            true
        }
        _ => false,
    }
}

/// Replace a record in place **only if** the new bytes are no longer
/// than the old record (the common posting-block append path after a
/// compaction made room). Returns false when the caller must relocate.
pub fn replace(page: &mut [u8; PAGE_SIZE], slot: usize, bytes: &[u8]) -> bool {
    let count = slot_count(page);
    if slot >= count || dir_start(count) < HEADER_SIZE {
        return false;
    }
    let Some((off, len)) = slot_entry(page, slot) else { return false };
    if off == DEAD || (bytes.len() > len as usize) {
        return false;
    }
    let off = off as usize;
    if off < HEADER_SIZE || off + (len as usize) > dir_start(count) {
        return false;
    }
    page[off..off + bytes.len()].copy_from_slice(bytes);
    // Shrinking leaves a hole after the record; the entry's length
    // changes and compaction reclaims the difference later.
    set_slot_entry(page, slot, off as u16, bytes.len() as u16);
    true
}

/// Compact the data region: live records move down to be contiguous (in
/// slot-index order), dead bytes return to the free tail. Slot indices
/// are preserved.
pub fn compact(page: &mut [u8; PAGE_SIZE]) {
    let count = slot_count(page);
    if dir_start(count) < HEADER_SIZE {
        return;
    }
    let mut data = Vec::with_capacity(PAGE_SIZE);
    let mut entries = Vec::with_capacity(count);
    for slot in 0..count {
        match read(page, slot) {
            Some(bytes) => {
                let off = HEADER_SIZE + data.len();
                entries.push((slot, off as u16, bytes.len() as u16));
                data.extend_from_slice(bytes);
            }
            None => entries.push((slot, DEAD, 0)),
        }
    }
    page[HEADER_SIZE..HEADER_SIZE + data.len()].copy_from_slice(&data);
    for (slot, off, len) in entries {
        set_slot_entry(page, slot, off, len);
    }
    set_free_off(page, HEADER_SIZE + data.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed;

    #[test]
    fn insert_read_roundtrip() {
        let mut page = zeroed();
        init(&mut page);
        let a = insert(&mut page, b"alpha").unwrap();
        let b = insert(&mut page, b"").unwrap();
        let c = insert(&mut page, &[7u8; 100]).unwrap();
        assert_eq!(read(&page, a).unwrap(), b"alpha");
        assert_eq!(read(&page, b).unwrap(), b"");
        assert_eq!(read(&page, c).unwrap(), &[7u8; 100][..]);
        assert_eq!(slot_count(&page), 3);
    }

    #[test]
    fn remove_then_reuse_lowest_dead_slot() {
        let mut page = zeroed();
        init(&mut page);
        let a = insert(&mut page, b"one").unwrap();
        let b = insert(&mut page, b"two").unwrap();
        assert!(remove(&mut page, a));
        assert!(!remove(&mut page, a), "double remove is a no-op");
        assert!(read(&page, a).is_none());
        let c = insert(&mut page, b"three").unwrap();
        assert_eq!(c, a, "dead slot reused");
        assert_eq!(read(&page, b).unwrap(), b"two");
        assert_eq!(slot_count(&page), 2, "no new slot minted");
    }

    #[test]
    fn fills_to_capacity_and_compacts() {
        let mut page = zeroed();
        init(&mut page);
        // Fill with 100-byte records until full.
        let mut slots = Vec::new();
        while let Some(s) = insert(&mut page, &[9u8; 100]) {
            slots.push(s);
        }
        assert!(slots.len() >= 38, "expected ~39 records, got {}", slots.len());
        // Delete every other record, then a 150-byte record must fit via
        // compaction even though no single hole is big enough.
        for s in slots.iter().step_by(2) {
            remove(&mut page, *s);
        }
        let big = insert(&mut page, &[1u8; 150]).expect("fits after compaction");
        assert_eq!(read(&page, big).unwrap(), &[1u8; 150][..]);
        // Survivors still read back.
        for s in slots.iter().skip(1).step_by(2) {
            if *s != big {
                assert_eq!(read(&page, *s).map(<[u8]>::len), Some(100));
            }
        }
    }

    #[test]
    fn replace_in_place_only_when_it_fits() {
        let mut page = zeroed();
        init(&mut page);
        let a = insert(&mut page, &[1u8; 50]).unwrap();
        assert!(replace(&mut page, a, &[2u8; 50]));
        assert_eq!(read(&page, a).unwrap(), &[2u8; 50][..]);
        assert!(replace(&mut page, a, &[3u8; 10]), "shrink ok");
        assert_eq!(read(&page, a).unwrap(), &[3u8; 10][..]);
        assert!(!replace(&mut page, a, &[4u8; 11]), "grow needs relocation");
    }

    #[test]
    fn hostile_pages_never_panic() {
        // Absurd slot count.
        let mut page = zeroed();
        init(&mut page);
        page[14] = 0xFF;
        page[15] = 0xFF;
        assert!(read(&page, 0).is_none());
        assert!(!remove(&mut page, 0));
        assert!(!fits(&page, 1));
        assert_eq!(insert(&mut page, b"x"), None);
        compact(&mut page);
        // Offset pointing into the slot directory.
        let mut page = zeroed();
        init(&mut page);
        insert(&mut page, b"victim").unwrap();
        set_slot_entry(&mut page, 0, (PAGE_SIZE - 2) as u16, 40);
        assert!(read(&page, 0).is_none());
        // Offset/len overflowing u16 arithmetic.
        set_slot_entry(&mut page, 0, 0xFFFE, 0xFFFE);
        assert!(read(&page, 0).is_none());
    }
}

//! [`PagedStorage`]: the bridge between the page store and relstore's
//! [`StorageBackend`](relstore::StorageBackend) /
//! [`StorageFactory`](relstore::StorageFactory) traits.
//!
//! One [`PagedStorage`] owns one [`RecordHeap`] (one page file) shared by
//! every namespace the database opens — tables and the inverted index's
//! posting blocks interleave on the same pages, which keeps the file
//! compact and the placement deterministic. All access is serialized
//! through a mutex; the engine above already orders its storage calls
//! deterministically, so the lock adds safety, not ordering.
//!
//! Every mutation bumps an internal LSN; [`PagedStorage::flush`] stamps
//! it into the header-page watermark as part of the shadow commit, so
//! "how far did disk get" is always answerable after a crash.

use crate::file::{CrashPoint, FaultTally, PageRepairReport, PageScrubReport};
use crate::heap::RecordHeap;
use crate::pool::PoolStats;
use crate::PageStoreError;
use nebula_govern::FaultPlan;
use relstore::{StorageBackend, StorageError, StorageFactory};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// One snapshot of the store's counters and positions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageMetrics {
    /// Buffer-pool counters.
    pub pool: PoolStats,
    /// Injected page faults and retries.
    pub faults: FaultTally,
    /// Dirty pages awaiting a flush.
    pub dirty_pages: u64,
    /// Resident frames.
    pub resident_pages: u64,
    /// Pages in the file (including the header page).
    pub page_count: u32,
    /// Durable LSN watermark (last flushed).
    pub watermark: u64,
    /// In-memory LSN (mutations since open, plus the opened watermark).
    pub lsn: u64,
}

#[derive(Debug)]
struct Inner {
    heap: RecordHeap,
    lsn: u64,
}

/// A paged storage factory rooted at one directory.
#[derive(Debug, Clone)]
pub struct PagedStorage {
    inner: Arc<Mutex<Inner>>,
    dir: PathBuf,
}

impl PagedStorage {
    /// Open (or create) a paged store in `dir` with `pool_frames`
    /// resident frames.
    pub fn open(dir: &Path, pool_frames: usize) -> Result<PagedStorage, PageStoreError> {
        std::fs::create_dir_all(dir)?;
        let heap = RecordHeap::open(dir, pool_frames)?;
        let lsn = heap.watermark();
        Ok(PagedStorage {
            inner: Arc::new(Mutex::new(Inner { heap, lsn })),
            dir: dir.to_path_buf(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The directory this store pages into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The frame budget the buffer pool was opened with.
    pub fn pool_frames(&self) -> usize {
        self.lock().heap.pool_frames()
    }

    /// Counter/position snapshot.
    pub fn metrics(&self) -> StorageMetrics {
        let inner = self.lock();
        let snapshot = StorageMetrics {
            pool: inner.heap.stats(),
            faults: inner.heap.fault_tally(),
            dirty_pages: inner.heap.dirty_pages(),
            resident_pages: inner.heap.resident_pages(),
            page_count: inner.heap.page_count(),
            watermark: inner.heap.watermark(),
            lsn: inner.lsn,
        };
        nebula_obs::gauge_set("page.dirty_pages", snapshot.dirty_pages);
        nebula_obs::gauge_set("page.resident_pages", snapshot.resident_pages);
        nebula_obs::gauge_set("page.file_pages", u64::from(snapshot.page_count));
        snapshot
    }

    /// Install (or clear) the fault plan this store's page I/O rolls
    /// against. The plan is owned here — page faults never touch the
    /// engine's seeded stream.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.lock().heap.set_fault_plan(plan);
    }

    /// Flush the dirty set through one shadow commit, stamping the
    /// current LSN as the durable watermark.
    pub fn flush_pages(&self) -> Result<(), PageStoreError> {
        let mut inner = self.lock();
        let lsn = inner.lsn;
        inner.heap.flush(lsn)
    }

    /// [`PagedStorage::flush_pages`] torn at `crash` for the crash-point
    /// harness. The store should be dropped and reopened afterwards.
    pub fn flush_pages_crash(&self, crash: CrashPoint) -> Result<(), PageStoreError> {
        let mut inner = self.lock();
        let lsn = inner.lsn;
        inner.heap.flush_crash(lsn, crash)
    }

    /// Read-only CRC walk over the flushed page file.
    pub fn scrub(&self) -> Result<PageScrubReport, PageStoreError> {
        self.lock().heap.scrub()
    }

    /// Roll the `PageRot` site; on a hit one at-rest bit flips on disk.
    pub fn inject_rot(&self) -> Result<Option<(u32, usize)>, PageStoreError> {
        self.lock().heap.inject_rot()
    }

    /// Heal single-bit rot in place via CRC linearity. Pages with wider
    /// damage are reported unrecoverable and need a rebuild from live
    /// state. Holds the store lock so no flush races the in-place writes.
    pub fn repair(&self) -> Result<PageRepairReport, PageStoreError> {
        let _guard = self.lock();
        crate::file::repair_dir(&self.dir)
    }
}

impl StorageFactory for PagedStorage {
    fn open(&self, namespace: u32) -> Box<dyn StorageBackend> {
        Box::new(NamespaceBackend { store: self.clone(), namespace })
    }

    fn flush(&self) -> Result<(), StorageError> {
        self.flush_pages().map_err(StorageError::from)
    }

    fn describe(&self) -> String {
        format!("disk:{}", self.dir.display())
    }
}

/// One namespace's view of the shared heap (namespaces share the record
/// id space; the tag only labels diagnostics).
#[derive(Debug)]
struct NamespaceBackend {
    store: PagedStorage,
    namespace: u32,
}

impl StorageBackend for NamespaceBackend {
    fn insert(&self, bytes: &[u8]) -> Result<u64, StorageError> {
        let mut inner = self.store.lock();
        inner.lsn += 1;
        inner.heap.insert(bytes).map_err(StorageError::from)
    }

    fn get(&self, id: u64) -> Result<Option<Vec<u8>>, StorageError> {
        self.store.lock().heap.get(id).map_err(StorageError::from)
    }

    fn update(&self, id: u64, bytes: &[u8]) -> Result<u64, StorageError> {
        let mut inner = self.store.lock();
        inner.lsn += 1;
        inner.heap.update(id, bytes).map_err(StorageError::from)
    }

    fn delete(&self, id: u64) -> Result<(), StorageError> {
        let mut inner = self.store.lock();
        inner.lsn += 1;
        inner.heap.delete(id).map(|_| ()).map_err(StorageError::from)
    }

    fn label(&self) -> String {
        format!("paged:{}", self.namespace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Database, TableSchema, TupleId, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_db(db: &mut Database) -> Vec<TupleId> {
        db.create_table(
            TableSchema::builder("notes")
                .column("id", DataType::Int)
                .column("body", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        (0..30i64)
            .map(|i| {
                db.insert(
                    "notes",
                    vec![Value::Int(i), Value::text(format!("note body number {i} zebra"))],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn database_runs_on_paged_backend() {
        let dir = tmpdir("db");
        let store = PagedStorage::open(&dir, 8).unwrap();
        let mut db = Database::with_storage(Arc::new(store.clone()));
        let tids = seed_db(&mut db);
        assert_eq!(db.total_tuples(), 30);
        for (i, tid) in tids.iter().enumerate() {
            let tuple = db.get(*tid).expect("paged row readable");
            assert_eq!(tuple.get_by_name("id"), Some(&Value::Int(i as i64)));
        }
        let hits = db.inverted_index().lookup("zebra");
        assert_eq!(hits.len(), 30, "postings flow through the paged backend");
        store.flush_pages().unwrap();
        assert!(store.scrub().unwrap().is_clean());
        assert!(store.metrics().page_count > 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_database_matches_mem_database() {
        let dir = tmpdir("parity");
        let store = PagedStorage::open(&dir, 4).unwrap();
        let mut paged = Database::with_storage(Arc::new(store));
        let mut mem = Database::new();
        let mut all_tids = Vec::new();
        for db in [&mut paged, &mut mem] {
            let tids = seed_db(db);
            // Updates and deletes too, to cover relocation paths.
            for (i, tid) in tids.iter().enumerate().step_by(3) {
                db.update(*tid, vec![Value::Int(i as i64), Value::text(format!("rewritten {i}"))])
                    .unwrap();
            }
            for tid in tids.iter().skip(1).step_by(7) {
                assert!(db.delete(*tid));
            }
            all_tids.push(tids);
        }
        assert_eq!(all_tids[0], all_tids[1], "tuple ids identical across backends");
        for tid in &all_tids[0] {
            assert_eq!(mem.get(*tid), paged.get(*tid), "row state identical at {tid:?}");
        }
        for token in ["zebra", "rewritten", "note"] {
            assert_eq!(
                mem.inverted_index().lookup(token).to_vec(),
                paged.inverted_index().lookup(token).to_vec(),
                "postings identical for {token:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

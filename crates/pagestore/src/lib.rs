//! # nebula-pagestore — crash-safe paged storage
//!
//! Breaks the RAM ceiling of the relational substrate: row payloads and
//! inverted-index posting blocks move into a checksummed fixed-size-page
//! file behind a buffer pool, while the engine above stays byte-for-byte
//! deterministic. The crate provides:
//!
//! - a page [`format`](page) — magic + version + per-page CRC32C + LSN
//!   watermark, 4 KiB pages,
//! - a [`slotted`] record layout inside each page (stable slot indices,
//!   dead-slot reuse, in-page compaction),
//! - a [`PageFile`](file::PageFile) with torn-page defense: every flush
//!   is a shadow-write + fsync + read-back-verify + rename commit, and
//!   recovery idempotently re-applies a valid shadow image (the same
//!   commit discipline the durability layer's checkpoints use),
//! - a [`BufferPool`](pool::BufferPool) with pin/unpin and deterministic
//!   clock-hand (second-chance) eviction,
//! - a [`RecordHeap`](heap::RecordHeap) minting stable `u64` record ids,
//!   with overflow chains for records larger than a page,
//! - [`PagedStorage`](store::PagedStorage), which implements relstore's
//!   [`StorageBackend`](relstore::StorageBackend) /
//!   [`StorageFactory`](relstore::StorageFactory) traits so a `Database`
//!   pages to disk transparently.
//!
//! ## Fault discipline
//!
//! Every I/O syscall rolls the four `Page*` fault sites
//! ([`nebula_govern::FaultSite::PageRead`] and friends) against a fault
//! plan the store **owns** — never the engine's thread-local plan — so
//! page faults cannot shift the engine's seeded fault stream. That is
//! what keeps the paged backend digest-identical to the RAM backend for
//! a fixed seed even while page faults fire.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

mod crc;
pub mod file;
pub mod heap;
pub mod page;
pub mod pool;
pub mod slotted;
pub mod store;

pub use file::{PageFile, PageRepairReport, PageScrubReport};
pub use heap::RecordHeap;
pub use page::{PAGE_SIZE, PAYLOAD_SIZE};
pub use pool::{BufferPool, PoolStats};
pub use store::{PagedStorage, StorageMetrics};

use std::fmt;

/// Errors from the page store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageStoreError {
    /// An OS-level I/O failure (includes injected `PageWrite` /
    /// `PageFsync` faults, which surface exactly like real ones).
    Io(String),
    /// A page or shadow image failed checksum or structural verification.
    Corrupt(String),
    /// A record id does not resolve to a live record.
    UnknownRecord(u64),
    /// The filesystem is out of space (`ENOSPC`, real or injected via
    /// [`nebula_govern::FaultSite::Enospc`]). The flush aborted before
    /// any byte reached disk — the old page image is intact — and the
    /// caller should shed writes until space frees instead of retrying
    /// blindly.
    NoSpace,
}

impl fmt::Display for PageStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageStoreError::Io(msg) => write!(f, "page io error: {msg}"),
            PageStoreError::Corrupt(msg) => write!(f, "page corruption: {msg}"),
            PageStoreError::UnknownRecord(id) => write!(f, "unknown record id {id:#x}"),
            PageStoreError::NoSpace => {
                write!(f, "no space left on device (flush aborted; old image intact)")
            }
        }
    }
}

impl std::error::Error for PageStoreError {}

impl From<std::io::Error> for PageStoreError {
    fn from(e: std::io::Error) -> Self {
        PageStoreError::Io(e.to_string())
    }
}

impl From<PageStoreError> for relstore::StorageError {
    fn from(e: PageStoreError) -> Self {
        relstore::StorageError(e.to_string())
    }
}

/// Counter and gauge names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Buffer-pool hits (page already resident).
    pub const HITS: &str = "page.hits";
    /// Buffer-pool misses (page read from disk).
    pub const MISSES: &str = "page.misses";
    /// Frames evicted by the clock hand.
    pub const EVICTIONS: &str = "page.evictions";
    /// Shadow-commit flushes of the dirty set.
    pub const FLUSHES: &str = "page.flushes";
    /// Dirty pages written back across all flushes.
    pub const WRITE_BACKS: &str = "page.write_backs";
    /// Injected page faults that fired (all four sites).
    pub const FAULTS_INJECTED: &str = "page.faults_injected";
    /// Read retries after transient injected read faults.
    pub const RETRIES: &str = "page.retries";
    /// Pages walked by the page scrubber.
    pub const SCRUB_PAGES: &str = "page.scrub_pages";
    /// Corrupt pages the scrubber found.
    pub const SCRUB_CORRUPT: &str = "page.scrub_corrupt";
}

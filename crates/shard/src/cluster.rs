//! The sharded cluster: full-replica shards with slot ownership,
//! scatter-gather search, boundary-edge exchange, and per-shard fault
//! domains.
//!
//! ## Why full replicas
//!
//! Stage-2 search confidence is a function of *database-wide* statistics
//! (vocabulary, selectivity), and the pipeline's ACG/profile state feeds
//! every later annotation. Slicing the data itself would change those
//! statistics and break the keystone invariant (shard-count-independent
//! results). Instead every shard holds a byte-faithful replica of the
//! database and annotation store, and **ownership** — which shard
//! answers for which tuples, and which shard's digest slice covers which
//! annotations — is partitioned by the deterministic
//! [`ShardRouter`](nebula_ingest::ShardRouter). Search work is then
//! genuinely distributed (each shard reports only its owned slots; the
//! home merges disjoint lists), while correctness never depends on more
//! than one shard being reachable.
//!
//! ## Determinism
//!
//! Everything is single-threaded and cooperative: "the network" is a
//! [`SimTransport`] pumped in bounded rounds, deadlines are counted in
//! governed-clock ticks, and fault injection draws from seeded streams.
//! The same seed replays the same partition/heal/failover history.
//!
//! ## Degradation, not failure
//!
//! A sibling that cannot answer a probe before the deadline is recorded
//! in a typed [`Degradation::PartialShards`] note (drained into
//! `ProcessOutcome.degradations`), its breaker absorbs the failure, and
//! the merged result simply lacks that shard's owned slots. Nothing
//! hangs, panics, or silently pretends to be complete.

use annostore::{snapshot as astore_snapshot, Annotation, AnnotationId, AnnotationStore};
use annostore::{AttachmentTarget, StoreError};
use bytes::Bytes;
use nebula_core::{
    GroupSearch, Mutation, MutationSink, Nebula, NebulaConfig, NebulaError, NebulaMeta,
    ProcessOutcome, SinkError,
};
use nebula_durable::wal::{encode_record, read_wal};
use nebula_durable::{checkpoint, replay_op, WalOp};
use nebula_govern::{clock, Degradation, ExecutionBudget, FaultPlan, FaultSite};
use nebula_ingest::{BreakerConfig, BreakerState, CircuitBreaker, ShardHealth, ShardRouter};
use nebula_replica::{SimTransport, Transport, TransportStats};
use relstore::{Database, TupleId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use textsearch::{
    ExecutionMode, KeywordQuery, KeywordSearch, SearchError, SearchHit, SearchOptions, SearchStats,
};

use crate::counters;
use crate::frame::ShardFrame;

/// Everything that can go wrong at the cluster layer.
#[derive(Debug)]
pub enum ShardError {
    /// The home engine's pipeline failed.
    Engine(NebulaError),
    /// A mutation batch would not replay.
    Apply(String),
    /// A snapshot would not encode/decode/merge.
    Snapshot(String),
    /// The addressed shard does not exist or is down.
    ShardDown(usize),
    /// No shard is currently eligible to serve as home.
    ClusterDown,
    /// Seeding the cluster from a backup bundle failed (verification or
    /// restore).
    Seed(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Engine(e) => write!(f, "engine: {e}"),
            ShardError::Apply(m) => write!(f, "apply: {m}"),
            ShardError::Snapshot(m) => write!(f, "snapshot: {m}"),
            ShardError::ShardDown(s) => write!(f, "shard {s} is down"),
            ShardError::ClusterDown => write!(f, "no shard eligible to serve as home"),
            ShardError::Seed(m) => write!(f, "bundle seed failed: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<NebulaError> for ShardError {
    fn from(e: NebulaError) -> ShardError {
        ShardError::Engine(e)
    }
}

/// A seeded network fault profile for the shard fabric. The transport
/// owns its own [`FaultPlan`] stream, so network faults never perturb
/// the engine's fault draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// Seed for the transport's fault stream.
    pub seed: u64,
    /// Frame drop probability.
    pub drop: f64,
    /// Frame delay probability.
    pub delay: f64,
    /// Frame reorder probability.
    pub reorder: f64,
    /// Frame duplication probability.
    pub duplicate: f64,
}

impl NetProfile {
    /// A loss-free, in-order network (still deterministic).
    pub fn clean(seed: u64) -> NetProfile {
        NetProfile { seed, drop: 0.0, delay: 0.0, reorder: 0.0, duplicate: 0.0 }
    }

    /// A adversarial-but-livable network: some loss, delay, reordering,
    /// and duplication on every link.
    pub fn lossy(seed: u64) -> NetProfile {
        NetProfile { seed, drop: 0.15, delay: 0.2, reorder: 0.1, duplicate: 0.05 }
    }

    fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with_net(self.drop, self.delay, self.reorder, self.duplicate)
    }
}

/// Cluster tuning.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Shard count (clamped to `1..=SLOTS` by the router).
    pub shards: usize,
    /// Scatter deadline, counted in pump rounds; each round advances the
    /// governed clock by one `tick`. A sibling that has not replied when
    /// the rounds are exhausted is a typed partial-result miss.
    pub deadline_rounds: u32,
    /// Governed-clock advance per pump round.
    pub tick: Duration,
    /// Rounds the boundary-edge exchange retries unacked batches before
    /// declaring a shard lagging (it catches up on heal).
    pub replicate_rounds: u32,
    /// Per-shard breaker tuning for the scatter path.
    pub breaker: BreakerConfig,
    /// Per-shard probe-serving budget: each shard answers probes under
    /// its **own** budget scope, so one wedged shard cannot charge work
    /// to — or trip the budget of — the home that probed it.
    pub serve_budget: ExecutionBudget,
    /// Optional seeded network faults; `None` = reliable fabric.
    pub net: Option<NetProfile>,
}

impl ShardConfig {
    /// Defaults tuned for the deterministic tests: tight deadline, a
    /// breaker that opens after 3 misses, effectively-unbounded serving
    /// budget (bounded so the scope still *installs* and isolates).
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            deadline_rounds: 6,
            tick: Duration::from_millis(1),
            replicate_rounds: 16,
            breaker: BreakerConfig { failure_threshold: 3, open_shed_count: 4 },
            serve_budget: ExecutionBudget::unbounded().with_max_tuples(usize::MAX >> 1),
            net: None,
        }
    }
}

/// FNV-1a over a byte string.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of an annotation store's canonical snapshot encoding.
pub fn store_digest(store: &AnnotationStore) -> u64 {
    fnv64(astore_snapshot::save(store).as_ref())
}

/// One committed mutation batch: WAL records concatenated in commit
/// order, stamped with the shard that originated it.
#[derive(Debug, Clone)]
struct LogEntry {
    origin: usize,
    completed: bool,
    bytes: Vec<u8>,
}

/// Buffers the engine's committed mutations during one pipeline run; the
/// cluster drains it into a replication batch afterwards.
#[derive(Debug)]
struct ExchangeSink {
    ops: Arc<Mutex<Vec<WalOp>>>,
}

impl MutationSink for ExchangeSink {
    fn record(&mut self, mutation: &Mutation<'_>) -> Result<u64, SinkError> {
        let mut ops = self.ops.lock().expect("exchange buffer poisoned");
        ops.push(WalOp::from_mutation(mutation));
        Ok(ops.len() as u64)
    }

    fn checkpoint(&mut self, _db: &Database, _store: &AnnotationStore) -> Result<u64, SinkError> {
        Ok(0)
    }

    fn describe(&self) -> String {
        "shard exchange buffer".into()
    }
}

/// One shard: a full replica plus the engine state that has to stay
/// converged for any shard to serve as home.
#[derive(Debug)]
struct ShardNode {
    id: usize,
    /// Fencing epoch this incarnation joined at; frames minted under an
    /// older epoch are discarded.
    epoch: u64,
    /// Highest global batch sequence applied.
    applied_seq: u64,
    failed: bool,
    engine: Nebula,
    db: Database,
    store: AnnotationStore,
    serve_budget: ExecutionBudget,
    options: SearchOptions,
}

impl ShardNode {
    /// Replay one committed batch through the engine's mirror API.
    fn apply_batch(&mut self, bytes: &[u8], completed: bool) -> Result<(), ShardError> {
        replay_batch(&mut self.engine, &mut self.db, &mut self.store, bytes, completed)
    }
}

/// Replay one batch onto an engine + replica pair. The focal list for
/// profile updates is reconstructed from the batch's own `AttachTuple`
/// records (the store's focal set would wrongly include tuples accepted
/// by *earlier* annotations).
fn replay_batch(
    engine: &mut Nebula,
    db: &mut Database,
    store: &mut AnnotationStore,
    bytes: &[u8],
    completed: bool,
) -> Result<(), ShardError> {
    let (records, tail) = read_wal(bytes);
    if !tail.is_clean() {
        return Err(ShardError::Apply(format!("torn batch: {} bytes dropped", tail.dropped_bytes)));
    }
    let mut focal: Vec<TupleId> = Vec::new();
    for rec in &records {
        match &rec.op {
            WalOp::AddAnnotation { expected, text, author, kind } => {
                focal.clear();
                let next = AnnotationId(store.annotation_count() as u64);
                if *expected != next {
                    return Err(ShardError::Apply(format!(
                        "annotation id gap: batch expects {} but replica would assign {}",
                        expected.0, next.0
                    )));
                }
                store.add_annotation(Annotation {
                    text: text.clone(),
                    author: author.clone(),
                    kind: kind.clone(),
                });
            }
            WalOp::AttachTuple { annotation, tuple } => {
                engine.mirror_attach_focal(store, *annotation, *tuple)?;
                focal.push(*tuple);
            }
            WalOp::AcceptEdge { annotation, tuple } => {
                engine.mirror_accept(store, *annotation, *tuple, &focal)?;
            }
            WalOp::AttachPredicted { annotation, tuple, confidence } => {
                engine.mirror_attach_predicted(store, *annotation, *tuple, *confidence)?;
            }
            WalOp::AttachCell { annotation, tuple, column } => {
                store
                    .attach(*annotation, AttachmentTarget::cell(*tuple, *column))
                    .map_err(|e| ShardError::Apply(format!("attach cell: {e}")))?;
            }
            WalOp::RejectEdge { annotation, tuple } => {
                match store.discard_prediction(*annotation, *tuple) {
                    Ok(()) | Err(StoreError::UnknownEdge(..)) => {}
                    Err(e) => return Err(ShardError::Apply(format!("reject: {e}"))),
                }
            }
            WalOp::TupleDeleted { tuple } => {
                db.delete(*tuple);
                store.on_tuple_deleted(*tuple);
            }
        }
    }
    if completed {
        engine.mirror_annotation_done();
    }
    Ok(())
}

/// The shared fabric: the simulated network, the shard nodes, and the
/// home-side breakers. Lives behind `Arc<Mutex<..>>` because each home
/// engine's scatter backend reaches it from inside `process_annotation`.
#[derive(Debug)]
struct Fabric {
    transport: SimTransport,
    router: ShardRouter,
    nodes: Vec<Option<ShardNode>>,
    /// Home-side breaker per sibling shard: tracks *that shard's* probe
    /// behavior, trips independently of its siblings'.
    breakers: Vec<CircuitBreaker>,
    partitioned: Vec<bool>,
    epoch: u64,
    probe_seq: u64,
    deadline_rounds: u32,
    tick: Duration,
    /// Expected post-apply store digest per batch sequence (1-based).
    expected_digests: Vec<u64>,
    /// Shards whose acks ever disagreed with the durable history.
    divergent: BTreeSet<usize>,
}

impl Fabric {
    /// Drain every node's inbox once (except `exclude`), serving probes
    /// and applying batches. Failed nodes drain-and-drop. Bounded work:
    /// one pass over what is currently deliverable.
    fn pump(&mut self, exclude: usize) {
        for id in 0..self.nodes.len() {
            if id == exclude {
                continue;
            }
            while let Some((_from, bytes)) = self.transport.recv(id) {
                let Ok(frame) = ShardFrame::decode(&bytes) else { continue };
                self.handle_frame(id, frame);
            }
        }
    }

    fn handle_frame(&mut self, at: usize, frame: ShardFrame) {
        match frame {
            ShardFrame::ApplyAck { seq, shard, digest } => {
                nebula_obs::counter_add(counters::APPLY_ACKS, 1);
                if let Some(&expected) = self.expected_digests.get((seq.max(1) - 1) as usize) {
                    if digest != expected {
                        nebula_obs::counter_add(counters::DIGEST_DIVERGENCES, 1);
                        self.divergent.insert(shard);
                    }
                }
            }
            ShardFrame::ApplyNack { .. } => {
                // The retry loop works off authoritative applied
                // sequences; the nack is counted for observability.
                nebula_obs::counter_add(counters::APPLY_NACKS, 1);
            }
            ShardFrame::Probe { probe_id, origin, epoch, mode, queries } => {
                let Some(mut node) = self.nodes[at].take() else { return };
                if !node.failed && epoch >= node.epoch {
                    self.serve_probe(&mut node, probe_id, origin, mode, &queries);
                }
                self.nodes[at] = Some(node);
            }
            ShardFrame::Apply { seq, origin, epoch, completed, ops } => {
                let Some(mut node) = self.nodes[at].take() else { return };
                if !node.failed && epoch >= node.epoch {
                    self.handle_apply(&mut node, seq, origin, completed, &ops);
                }
                self.nodes[at] = Some(node);
            }
            ShardFrame::ProbeReply { .. } => {
                // A reply that reached a node with no scatter in flight is
                // stale (its scatter already timed out); drop it.
            }
        }
    }

    /// Serve one probe under the shard's own budget scope — the per-shard
    /// fault domain. A budget trip or injected fault yields an `ok=false`
    /// reply, never an error that crosses the shard boundary.
    fn serve_probe(
        &mut self,
        node: &mut ShardNode,
        probe_id: u64,
        origin: usize,
        mode: ExecutionMode,
        queries: &[KeywordQuery],
    ) {
        let reply = if nebula_govern::inject(FaultSite::ShardProbe).is_some() {
            nebula_obs::counter_add(counters::PROBE_SERVE_ERRORS, 1);
            ShardFrame::ProbeReply { probe_id, shard: node.id, ok: false, groups: Vec::new() }
        } else {
            let outcome = {
                let _scope = nebula_govern::begin_budget(&node.serve_budget);
                KeywordSearch::new(node.options.clone()).search_group(queries, &node.db, mode)
            };
            match outcome {
                Ok((mut groups, _stats)) => {
                    for g in &mut groups {
                        g.retain(|h| self.router.route_tuple(h.tuple) == node.id);
                    }
                    ShardFrame::ProbeReply { probe_id, shard: node.id, ok: true, groups }
                }
                Err(_) => {
                    nebula_obs::counter_add(counters::PROBE_SERVE_ERRORS, 1);
                    ShardFrame::ProbeReply {
                        probe_id,
                        shard: node.id,
                        ok: false,
                        groups: Vec::new(),
                    }
                }
            }
        };
        self.transport.send(node.id, origin, reply.encode());
    }

    fn handle_apply(
        &mut self,
        node: &mut ShardNode,
        seq: u64,
        origin: usize,
        completed: bool,
        ops: &[u8],
    ) {
        if seq <= node.applied_seq {
            // Duplicate delivery: re-ack so a retrying origin unblocks.
            let ack =
                ShardFrame::ApplyAck { seq, shard: node.id, digest: store_digest(&node.store) };
            self.transport.send(node.id, origin, ack.encode());
            return;
        }
        let refuse = seq > node.applied_seq + 1
            || nebula_govern::inject(FaultSite::ShardApply).is_some()
            || node.apply_batch(ops, completed).is_err();
        if refuse {
            let nack = ShardFrame::ApplyNack { seq, shard: node.id, applied: node.applied_seq };
            self.transport.send(node.id, origin, nack.encode());
            return;
        }
        node.applied_seq = seq;
        nebula_obs::counter_add(counters::BATCHES_APPLIED, 1);
        let ack = ShardFrame::ApplyAck { seq, shard: node.id, digest: store_digest(&node.store) };
        self.transport.send(node.id, origin, ack.encode());
    }

    /// Record a probe outcome on the shard's breaker, counting trips.
    fn breaker_outcome(&mut self, shard: usize, ok: bool) {
        if ok {
            self.breakers[shard].record_success();
            return;
        }
        let was_open = self.breakers[shard].state() == BreakerState::Open;
        self.breakers[shard].record_failure();
        if !was_open && self.breakers[shard].state() == BreakerState::Open {
            nebula_obs::counter_add(counters::BREAKER_OPENED, 1);
        }
    }

    /// Scatter one query group from `me` to every sibling and gather
    /// owned-slot replies until the governed deadline. Returns the
    /// replies plus the sorted list of shards that did not answer.
    fn scatter(
        &mut self,
        me: usize,
        queries: &[KeywordQuery],
        mode: ExecutionMode,
    ) -> (BTreeMap<usize, Vec<Vec<SearchHit>>>, Vec<usize>) {
        let total = self.router.shards();
        self.probe_seq += 1;
        let probe_id = self.probe_seq;
        let mut missing: BTreeSet<usize> = BTreeSet::new();
        let mut outstanding: BTreeSet<usize> = BTreeSet::new();
        for s in (0..total).filter(|&s| s != me) {
            if self.breakers[s].allows() {
                outstanding.insert(s);
            } else {
                // Breaker open: don't even probe; the shard is missing by
                // policy until its shed count re-arms the breaker.
                nebula_obs::counter_add(counters::PROBES_SKIPPED, 1);
                missing.insert(s);
            }
        }
        let frame = ShardFrame::Probe {
            probe_id,
            origin: me,
            epoch: self.epoch,
            mode,
            queries: queries.to_vec(),
        }
        .encode();
        for &s in &outstanding {
            self.transport.send(me, s, frame.clone());
            nebula_obs::counter_add(counters::PROBES_SENT, 1);
        }
        let mut replies: BTreeMap<usize, Vec<Vec<SearchHit>>> = BTreeMap::new();
        for _round in 0..self.deadline_rounds {
            if outstanding.is_empty() {
                break;
            }
            // One governed-clock tick per round: the deadline is virtual
            // time, not wall time, so it is identical on every run.
            clock::sleep(self.tick);
            self.pump(me);
            while let Some((_from, bytes)) = self.transport.recv(me) {
                let Ok(frame) = ShardFrame::decode(&bytes) else { continue };
                let ShardFrame::ProbeReply { probe_id: pid, shard, ok, groups } = frame else {
                    continue;
                };
                if pid != probe_id || !outstanding.remove(&shard) {
                    continue; // stale scatter round
                }
                if ok {
                    self.breaker_outcome(shard, true);
                    nebula_obs::counter_add(counters::PROBES_ANSWERED, 1);
                    replies.insert(shard, groups);
                } else {
                    self.breaker_outcome(shard, false);
                    missing.insert(shard);
                }
            }
        }
        for &s in &outstanding {
            self.breaker_outcome(s, false);
            nebula_obs::counter_add(counters::PROBES_TIMED_OUT, 1);
            missing.insert(s);
        }
        (replies, missing.into_iter().collect())
    }
}

/// The home-side search override installed into every shard's engine:
/// answers for the home's owned slots locally, gathers the siblings'
/// owned slots over the fabric, and merges.
#[derive(Debug)]
struct ScatterBackend {
    fabric: Arc<Mutex<Fabric>>,
    me: usize,
    options: SearchOptions,
}

impl GroupSearch for ScatterBackend {
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError> {
        // Local pass first — charged to the *home's* budget, identical to
        // the unsharded engine's work profile.
        let (mut groups, stats) =
            KeywordSearch::new(self.options.clone()).search_group(queries, db, mode)?;
        let mut fabric = self.fabric.lock().expect("shard fabric poisoned");
        let total = fabric.router.shards();
        if total == 1 {
            return Ok((groups, stats));
        }
        for g in &mut groups {
            g.retain(|h| fabric.router.route_tuple(h.tuple) == self.me);
        }
        let (replies, missing) = fabric.scatter(self.me, queries, mode);
        for (_shard, reply_groups) in replies {
            for (i, extra) in reply_groups.into_iter().enumerate() {
                if let Some(g) = groups.get_mut(i) {
                    g.extend(extra);
                }
            }
        }
        // Owned slot sets are disjoint, so re-sorting the union with the
        // engine's exact comparator reproduces the unsharded hit order.
        for g in &mut groups {
            g.sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then(a.tuple.cmp(&b.tuple)));
        }
        if !missing.is_empty() {
            nebula_govern::note_degradation(Degradation::PartialShards {
                answered: total - missing.len(),
                total,
                missing,
            });
            nebula_obs::counter_add(counters::PARTIAL_RESULTS, 1);
        }
        Ok((groups, stats))
    }

    fn label(&self) -> &'static str {
        "scatter-gather"
    }
}

fn build_node(
    id: usize,
    epoch: u64,
    genesis: &[u8],
    meta: &NebulaMeta,
    engine_config: &NebulaConfig,
    serve_budget: ExecutionBudget,
    fabric: &Arc<Mutex<Fabric>>,
) -> Result<ShardNode, ShardError> {
    let (_, db, store) =
        checkpoint::decode(genesis).map_err(|e| ShardError::Snapshot(e.to_string()))?;
    let mut engine = Nebula::new(engine_config.clone(), meta.clone());
    if store.annotation_count() > 0 {
        engine.bootstrap_acg(&store);
    }
    let options = SearchOptions { vocab: meta.to_vocabulary(&db), ..Default::default() };
    engine.set_group_search(Some(Box::new(ScatterBackend {
        fabric: fabric.clone(),
        me: id,
        options: options.clone(),
    })));
    Ok(ShardNode {
        id,
        epoch,
        applied_seq: 0,
        failed: false,
        engine,
        db,
        store,
        serve_budget,
        options,
    })
}

/// What one anti-entropy scrub pass found and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Live shards whose digests were checked.
    pub checked: usize,
    /// Shards whose replica disagreed with the durable history.
    pub divergent: Vec<usize>,
    /// Shards rebuilt from the durable history.
    pub repaired: Vec<usize>,
}

/// An unsharded engine rebuilt from a cluster's durable history — the
/// reference the byte-identity tests compare against.
#[derive(Debug)]
pub struct TwinEngine {
    /// The replayed engine (no scatter override installed).
    pub engine: Nebula,
    /// The replayed database.
    pub db: Database,
    /// The replayed annotation store.
    pub store: AnnotationStore,
}

impl TwinEngine {
    /// Canonical checkpoint image of the twin's state.
    pub fn checkpoint(&self) -> Vec<u8> {
        checkpoint::encode(0, &self.db, &self.store)
    }

    /// Process one annotation on the twin (sequential, unsharded path).
    pub fn process(
        &mut self,
        annotation: &Annotation,
        focal: &[TupleId],
    ) -> Result<ProcessOutcome, NebulaError> {
        self.engine.process_annotation(&self.db, &mut self.store, annotation, focal)
    }
}

/// The partition-tolerant sharded cluster.
pub struct ShardCluster {
    fabric: Arc<Mutex<Fabric>>,
    meta: NebulaMeta,
    engine_config: NebulaConfig,
    config: ShardConfig,
    /// Checkpoint image of the initial state every shard booted from.
    genesis: Vec<u8>,
    /// The global batch log: seq `i+1` is `log[i]`. This *is* the durable
    /// history — failover and scrub repair replay it from genesis.
    log: Vec<LogEntry>,
    /// Annotation id → the shard that processed (owns) it.
    homes: BTreeMap<u64, usize>,
    /// Shards behind the replication head (partitioned mid-exchange).
    lagging: BTreeSet<usize>,
}

impl std::fmt::Debug for ShardCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCluster")
            .field("shards", &self.config.shards)
            .field("batches", &self.log.len())
            .field("lagging", &self.lagging)
            .finish()
    }
}

impl ShardCluster {
    /// Boot `config.shards` shards, each a byte-faithful replica of
    /// `(db, store)` with a freshly bootstrapped engine.
    pub fn new(
        db: &Database,
        store: &AnnotationStore,
        meta: &NebulaMeta,
        engine_config: &NebulaConfig,
        config: ShardConfig,
    ) -> Result<ShardCluster, ShardError> {
        let genesis = checkpoint::encode(0, db, store);
        let router = ShardRouter::new(config.shards);
        let shards = router.shards();
        let transport = match &config.net {
            Some(profile) => SimTransport::new(shards, profile.plan()),
            None => SimTransport::reliable(shards),
        };
        let fabric = Arc::new(Mutex::new(Fabric {
            transport,
            router,
            nodes: (0..shards).map(|_| None).collect(),
            breakers: vec![CircuitBreaker::new(config.breaker); shards],
            partitioned: vec![false; shards],
            epoch: 0,
            probe_seq: 0,
            deadline_rounds: config.deadline_rounds,
            tick: config.tick,
            expected_digests: Vec::new(),
            divergent: BTreeSet::new(),
        }));
        for id in 0..shards {
            let node = build_node(
                id,
                0,
                &genesis,
                meta,
                engine_config,
                config.serve_budget.clone(),
                &fabric,
            )?;
            fabric.lock().expect("shard fabric poisoned").nodes[id] = Some(node);
        }
        nebula_obs::gauge_set(counters::SHARDS_GAUGE, shards as u64);
        nebula_obs::gauge_set(counters::EPOCH_GAUGE, 0);
        nebula_obs::gauge_set(counters::LAGGING_GAUGE, 0);
        Ok(ShardCluster {
            fabric,
            meta: meta.clone(),
            engine_config: engine_config.clone(),
            config,
            genesis,
            log: Vec::new(),
            homes: BTreeMap::new(),
            lagging: BTreeSet::new(),
        })
    }

    /// Boot a shard cluster from a verified backup bundle instead of a
    /// live store: the bundle restores to its head (manifest-verified,
    /// archived WAL replayed) and every shard starts as a byte-faithful
    /// replica of that restored state — cold-start disaster recovery
    /// with no source cluster in the loop.
    pub fn seed_from_bundle(
        bundle_dir: &std::path::Path,
        meta: &NebulaMeta,
        engine_config: &NebulaConfig,
        config: ShardConfig,
    ) -> Result<ShardCluster, ShardError> {
        let restored = nebula_backup::restore(bundle_dir, None)
            .map_err(|e| ShardError::Seed(e.to_string()))?;
        ShardCluster::new(&restored.db, &restored.store, meta, engine_config, config)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Fabric> {
        self.fabric.lock().expect("shard fabric poisoned")
    }

    /// Pick the shard that processes `focal`'s annotation. The router's
    /// choice stands unless that shard is failed, partitioned, or behind
    /// the replication head — then the lowest fully-caught-up shard takes
    /// over (full replicas make any caught-up shard a correct home).
    fn choose_home(&self, focal: &[TupleId]) -> Result<usize, ShardError> {
        let f = self.lock();
        let head = self.log.len() as u64;
        let eligible = |s: usize| {
            !f.partitioned[s]
                && f.nodes[s].as_ref().is_some_and(|n| !n.failed && n.applied_seq >= head)
        };
        let routed = f.router.route(focal);
        if eligible(routed) {
            return Ok(routed);
        }
        for s in 0..f.router.shards() {
            if eligible(s) {
                nebula_obs::counter_add(counters::HOME_FALLBACKS, 1);
                return Ok(s);
            }
        }
        Err(ShardError::ClusterDown)
    }

    /// Route one annotation to its home shard, run the full pipeline
    /// there (stage-2 full search scatter-gathers over the fabric), then
    /// replicate the committed mutation batch to every sibling.
    pub fn ingest(
        &mut self,
        annotation: &Annotation,
        focal: &[TupleId],
    ) -> Result<ProcessOutcome, ShardError> {
        let home = self.choose_home(focal)?;
        let mut node = self.lock().nodes[home].take().ok_or(ShardError::ShardDown(home))?;
        let buf: Arc<Mutex<Vec<WalOp>>> = Arc::default();
        node.engine.set_mutation_sink(Some(Box::new(ExchangeSink { ops: buf.clone() })));
        let result = node.engine.process_annotation(&node.db, &mut node.store, annotation, focal);
        node.engine.take_mutation_sink();
        let ops = std::mem::take(&mut *buf.lock().expect("exchange buffer poisoned"));
        let completed = result.is_ok();
        if ops.is_empty() {
            // Nothing committed (the pipeline failed before stage 0):
            // no batch to exchange.
            self.lock().nodes[home] = Some(node);
            return result.map_err(ShardError::Engine);
        }
        let seq = self.log.len() as u64 + 1;
        for op in &ops {
            if let WalOp::AddAnnotation { expected, .. } = op {
                self.homes.insert(expected.0, home);
            }
        }
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record((i + 1) as u64, op));
        }
        node.applied_seq = seq;
        let digest = store_digest(&node.store);
        {
            let mut f = self.lock();
            f.expected_digests.push(digest);
            f.nodes[home] = Some(node);
        }
        self.log.push(LogEntry { origin: home, completed, bytes });
        nebula_obs::counter_add(counters::ANNOTATIONS_ROUTED, 1);
        self.replicate();
        result.map_err(ShardError::Engine)
    }

    /// Push every live shard to the replication head with bounded
    /// nack-and-retry rounds. Shards still behind afterwards (partitioned
    /// mid-exchange) are recorded as lagging; [`ShardCluster::heal_shard`]
    /// re-runs this to catch them up.
    fn replicate(&mut self) {
        let head = self.log.len() as u64;
        if head == 0 {
            return;
        }
        let mut f = self.lock();
        let shards = f.router.shards();
        let behind = |f: &Fabric| -> Vec<usize> {
            (0..shards)
                .filter(|&s| f.nodes[s].as_ref().is_some_and(|n| !n.failed && n.applied_seq < head))
                .collect()
        };
        let mut round = 0u32;
        let still_behind;
        loop {
            let pending = behind(&f);
            if pending.is_empty() || round >= self.config.replicate_rounds {
                still_behind = pending;
                break;
            }
            if round > 0 {
                nebula_obs::counter_add(counters::APPLY_RETRIES, 1);
            }
            for &s in &pending {
                let from = f.nodes[s].as_ref().map_or(head, |n| n.applied_seq);
                for seq in (from + 1)..=head {
                    let e = &self.log[(seq - 1) as usize];
                    let frame = ShardFrame::Apply {
                        seq,
                        origin: e.origin,
                        epoch: f.epoch,
                        completed: e.completed,
                        ops: e.bytes.clone(),
                    };
                    f.transport.send(e.origin, s, frame.encode());
                    nebula_obs::counter_add(counters::APPLIES_SENT, 1);
                }
            }
            clock::sleep(self.config.tick);
            f.pump(usize::MAX);
            round += 1;
        }
        drop(f);
        self.lagging = still_behind.into_iter().collect();
        nebula_obs::gauge_set(counters::LAGGING_GAUGE, self.lagging.len() as u64);
    }

    /// Cut every link to shard `s` (it keeps its state but hears and
    /// answers nothing).
    pub fn partition_shard(&mut self, s: usize) {
        let mut f = self.lock();
        if s < f.partitioned.len() {
            f.transport.set_partitioned(s, true);
            f.partitioned[s] = true;
        }
    }

    /// Restore shard `s`'s links and catch it up on every batch it
    /// missed (resumed boundary-edge exchange).
    pub fn heal_shard(&mut self, s: usize) {
        {
            let mut f = self.lock();
            if s < f.partitioned.len() {
                f.transport.set_partitioned(s, false);
                f.partitioned[s] = false;
            }
        }
        self.replicate();
    }

    /// Crash shard `s`: it stops serving probes and applies until a
    /// promote rebuilds it.
    pub fn fail_shard(&mut self, s: usize) {
        let mut f = self.lock();
        if let Some(node) = f.nodes.get_mut(s).and_then(Option::as_mut) {
            node.failed = true;
        }
    }

    /// Epoch-fenced failover: bump the cluster epoch, rebuild shard `s`
    /// from genesis plus the durable batch log, and fence any frame still
    /// in flight from before the promote.
    pub fn promote_shard(&mut self, s: usize) -> Result<(), ShardError> {
        let epoch = {
            let mut f = self.lock();
            if s >= f.router.shards() {
                return Err(ShardError::ShardDown(s));
            }
            f.epoch += 1;
            let epoch = f.epoch;
            for node in f.nodes.iter_mut().flatten() {
                node.epoch = epoch;
            }
            epoch
        };
        let node = self.rebuild_node(s, epoch, self.log.len())?;
        {
            let mut f = self.lock();
            // Drop anything queued for the dead incarnation (each recv on
            // a held frame ticks its hold down, so this terminates).
            while f.transport.pending(s) > 0 {
                let _ = f.transport.recv(s);
            }
            f.breakers[s] = CircuitBreaker::new(self.config.breaker);
            f.nodes[s] = Some(node);
        }
        self.lagging.remove(&s);
        nebula_obs::counter_add(counters::FAILOVERS, 1);
        nebula_obs::gauge_set(counters::EPOCH_GAUGE, epoch);
        Ok(())
    }

    /// Rebuild shard `s` from the durable history: genesis image plus the
    /// first `upto` batches replayed through the mirror path.
    fn rebuild_node(&self, s: usize, epoch: u64, upto: usize) -> Result<ShardNode, ShardError> {
        let mut node = build_node(
            s,
            epoch,
            &self.genesis,
            &self.meta,
            &self.engine_config,
            self.config.serve_budget.clone(),
            &self.fabric,
        )?;
        for (i, e) in self.log.iter().take(upto).enumerate() {
            node.apply_batch(&e.bytes, e.completed)?;
            node.applied_seq = (i + 1) as u64;
        }
        Ok(node)
    }

    /// Flip bits on shard `s`'s replica (simulated silent corruption);
    /// the next [`ShardCluster::scrub`] detects and repairs it.
    pub fn corrupt_shard(&mut self, s: usize) -> Result<(), ShardError> {
        let mut f = self.lock();
        let node = f.nodes.get_mut(s).and_then(Option::as_mut).ok_or(ShardError::ShardDown(s))?;
        node.store.add_annotation(Annotation {
            text: "\u{0}bit-rot".into(),
            author: None,
            kind: None,
        });
        Ok(())
    }

    /// Anti-entropy scrub: compare every live shard's store digest
    /// against the durable history replayed to that shard's own applied
    /// watermark; rebuild any replica that disagrees.
    pub fn scrub(&mut self) -> Result<ScrubOutcome, ShardError> {
        let watermarks: BTreeSet<u64> = {
            let f = self.lock();
            f.nodes.iter().flatten().filter(|n| !n.failed).map(|n| n.applied_seq).collect()
        };
        // One replay pass over the history, capturing the reference
        // digest at every watermark a live shard sits at.
        let (_, mut db, mut store) =
            checkpoint::decode(&self.genesis).map_err(|e| ShardError::Snapshot(e.to_string()))?;
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        if watermarks.contains(&0) {
            reference.insert(0, store_digest(&store));
        }
        for (i, e) in self.log.iter().enumerate() {
            let (records, _) = read_wal(&e.bytes);
            for r in &records {
                replay_op(&mut db, &mut store, &r.op)
                    .map_err(|e| ShardError::Apply(e.to_string()))?;
            }
            let seq = (i + 1) as u64;
            if watermarks.contains(&seq) {
                reference.insert(seq, store_digest(&store));
            }
        }
        let mut outcome = ScrubOutcome::default();
        let shards = self.shards();
        for s in 0..shards {
            let (applied, epoch, digest) = {
                let f = self.lock();
                match f.nodes[s].as_ref() {
                    Some(n) if !n.failed => (n.applied_seq, n.epoch, store_digest(&n.store)),
                    _ => continue,
                }
            };
            outcome.checked += 1;
            let expected = reference.get(&applied).copied();
            if expected == Some(digest) {
                continue;
            }
            nebula_obs::counter_add(counters::DIGEST_DIVERGENCES, 1);
            outcome.divergent.push(s);
            // Repair at the shard's own watermark and epoch; a lagging
            // shard still catches up through the normal exchange later.
            let node = self.rebuild_node(s, epoch, applied as usize)?;
            self.lock().nodes[s] = Some(node);
            nebula_obs::counter_add(counters::REPAIRS, 1);
            outcome.repaired.push(s);
        }
        Ok(outcome)
    }

    /// Each shard's digest slice: the canonical partition slice covering
    /// the annotations it processed, computed from its **own** replica.
    pub fn shard_slices(&self) -> Result<Vec<Bytes>, ShardError> {
        let f = self.lock();
        let shards = f.router.shards();
        let homes = self.homes.clone();
        let assign = move |aid: AnnotationId| homes.get(&aid.0).copied().unwrap_or(0);
        let mut slices = Vec::with_capacity(shards);
        for s in 0..shards {
            let node = f.nodes[s].as_ref().ok_or(ShardError::ShardDown(s))?;
            let mut parts = astore_snapshot::partition(&node.store, shards, &assign);
            slices.push(parts.swap_remove(s));
        }
        Ok(slices)
    }

    /// FNV digests of the per-shard slices (what `SHOW SHARDS` prints).
    pub fn slice_digests(&self) -> Result<Vec<u64>, ShardError> {
        Ok(self.shard_slices()?.iter().map(|b| fnv64(b.as_ref())).collect())
    }

    /// Merge the per-shard slices back into one store. With no unhealed
    /// faults this is byte-identical to the unsharded engine's store.
    pub fn merged_store(&self) -> Result<AnnotationStore, ShardError> {
        astore_snapshot::merge(&self.shard_slices()?)
            .map_err(|e| ShardError::Snapshot(e.to_string()))
    }

    /// Canonical checkpoint image of (db, merged store) — the byte string
    /// the keystone invariant compares across shard counts.
    pub fn merged_checkpoint(&self) -> Result<Vec<u8>, ShardError> {
        let store = self.merged_store()?;
        let f = self.lock();
        let node = f.nodes.iter().flatten().next().ok_or(ShardError::ClusterDown)?;
        Ok(checkpoint::encode(0, &node.db, &store))
    }

    /// Rebuild an unsharded reference engine from the durable history.
    pub fn rebuild_twin(&self) -> Result<TwinEngine, ShardError> {
        let (_, mut db, mut store) =
            checkpoint::decode(&self.genesis).map_err(|e| ShardError::Snapshot(e.to_string()))?;
        let mut engine = Nebula::new(self.engine_config.clone(), self.meta.clone());
        if store.annotation_count() > 0 {
            engine.bootstrap_acg(&store);
        }
        for e in &self.log {
            replay_batch(&mut engine, &mut db, &mut store, &e.bytes, e.completed)?;
        }
        Ok(TwinEngine { engine, db, store })
    }

    /// Per-shard health rows for `SHOW SHARDS`.
    pub fn health(&self) -> Vec<ShardHealth> {
        let f = self.lock();
        (0..f.router.shards())
            .map(|s| match f.nodes[s].as_ref() {
                Some(n) => ShardHealth {
                    shard: s,
                    epoch: n.epoch,
                    applied_seq: n.applied_seq,
                    breaker: f.breakers[s].state(),
                    partitioned: f.partitioned[s],
                    failed: n.failed,
                },
                None => ShardHealth {
                    shard: s,
                    epoch: f.epoch,
                    applied_seq: 0,
                    breaker: f.breakers[s].state(),
                    partitioned: f.partitioned[s],
                    failed: true,
                },
            })
            .collect()
    }

    /// Multi-line cluster status for the shell.
    pub fn describe(&self) -> String {
        let f = self.lock();
        let spread = f.router.slots_per_shard();
        let mut out = format!(
            "{} shards, epoch {}, {} batches replicated, slots per shard {:?}\n",
            f.router.shards(),
            f.epoch,
            self.log.len(),
            spread
        );
        drop(f);
        for h in self.health() {
            out.push_str(&format!("  {h}\n"));
        }
        if !self.lagging.is_empty() {
            out.push_str(&format!("  lagging: {:?}\n", self.lagging));
        }
        out
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.lock().router.shards()
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Batches in the durable history.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Shards currently behind the replication head.
    pub fn lagging(&self) -> Vec<usize> {
        self.lagging.iter().copied().collect()
    }

    /// Shards whose acks ever disagreed with the durable history.
    pub fn divergent(&self) -> Vec<usize> {
        self.lock().divergent.iter().copied().collect()
    }

    /// The home-side breaker state for shard `s`.
    pub fn breaker_state(&self, s: usize) -> BreakerState {
        self.lock().breakers[s].state()
    }

    /// Replace shard `s`'s probe-serving budget (its fault domain).
    pub fn set_serve_budget(&mut self, s: usize, budget: ExecutionBudget) {
        if let Some(node) = self.lock().nodes.get_mut(s).and_then(Option::as_mut) {
            node.serve_budget = budget;
        }
    }

    /// A copy of the router (for tests and the shell).
    pub fn router(&self) -> ShardRouter {
        self.lock().router.clone()
    }

    /// Fabric delivery statistics.
    pub fn transport_stats(&self) -> TransportStats {
        self.lock().transport.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"nebula"), fnv64(b"nebula"));
        assert_ne!(fnv64(b"nebula"), fnv64(b"nebulb"));
    }

    #[test]
    fn batch_encoding_roundtrips_through_read_wal() {
        let ops = [
            WalOp::AddAnnotation {
                expected: AnnotationId(0),
                text: "check patient".into(),
                author: Some("alice".into()),
                kind: None,
            },
            WalOp::AttachTuple {
                annotation: AnnotationId(0),
                tuple: TupleId::new(relstore::schema::TableId(1), 7),
            },
        ];
        let mut bytes = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record((i + 1) as u64, op));
        }
        let (records, tail) = read_wal(&bytes);
        assert!(tail.is_clean());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, ops[0]);
        assert_eq!(records[1].op, ops[1]);
    }

    #[test]
    fn net_profiles_are_deterministic_constructors() {
        assert_eq!(NetProfile::clean(7), NetProfile::clean(7));
        let lossy = NetProfile::lossy(7);
        assert!(lossy.drop > 0.0 && lossy.delay > 0.0);
    }
}

//! nebula-shard: partition-tolerant sharded execution of the Nebula engine.
//!
//! The paper evaluates the annotation pipeline on a single engine; at
//! scale the relational store, annotation store, and ACG must be
//! partitioned across **shards** that fail, lag, and partition
//! independently. This crate composes the existing building blocks —
//! the deterministic shard router ([`nebula_ingest::ShardRouter`]), the
//! simulated network ([`nebula_replica::SimTransport`]), governed
//! budgets and breakers — into a sharded cluster with three properties:
//!
//! - **Determinism across shard counts.** Each shard holds a full
//!   byte-faithful replica and *owns* a disjoint set of hash slots.
//!   Stage-2 full search runs scatter-gather: the home shard answers for
//!   its owned slots, siblings answer probes for theirs, and the merged
//!   hit list is byte-identical to the unsharded engine's at any shard
//!   count (proved by `tests/sharding.rs`).
//! - **Typed partial results.** A probe that misses its governed-clock
//!   deadline (partitioned or wedged sibling) degrades the answer
//!   instead of hanging: the merged result carries a
//!   [`Degradation::PartialShards`](nebula_govern::Degradation) note
//!   naming exactly which shards are missing, surfaced through
//!   `ProcessOutcome.degradations`, EXPLAIN, and the `shard.*` metrics.
//! - **Per-shard fault domains.** Every shard serves probes under its
//!   own [`ExecutionBudget`](nebula_govern::ExecutionBudget) and is
//!   guarded by its own circuit breaker on the home side; one wedged
//!   shard trips its own breaker and leaves its siblings green.
//!
//! Committed mutation batches are exchanged shard-to-shard over the
//! simulated network with ack/nack-and-retry ([`frame`]), so boundary
//! edges (an annotation on shard A attaching to a tuple owned by shard
//! B) converge on every replica. Failover rebuilds a shard from the
//! durable history under a bumped fencing epoch; anti-entropy scrub
//! detects and repairs silent divergence.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cluster;
pub mod frame;

pub use cluster::{NetProfile, ScrubOutcome, ShardCluster, ShardConfig, ShardError, TwinEngine};
pub use frame::{FrameError, ShardFrame};

/// Counter and gauge names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Annotations routed to a home shard and processed.
    pub const ANNOTATIONS_ROUTED: &str = "shard.annotations_routed";
    /// Annotations re-routed because the hashed home was dark or lagging.
    pub const HOME_FALLBACKS: &str = "shard.home_fallbacks";
    /// Scatter probes sent to sibling shards.
    pub const PROBES_SENT: &str = "shard.probes_sent";
    /// Probe replies merged into a scatter-gather result.
    pub const PROBES_ANSWERED: &str = "shard.probes_answered";
    /// Probes unanswered at the governed deadline.
    pub const PROBES_TIMED_OUT: &str = "shard.probes_timed_out";
    /// Probes not sent because the shard's breaker was open.
    pub const PROBES_SKIPPED: &str = "shard.probes_skipped";
    /// Probe servings that failed (injected fault or budget trip).
    pub const PROBE_SERVE_ERRORS: &str = "shard.probe_serve_errors";
    /// Scatter-gather results degraded to a typed partial result.
    pub const PARTIAL_RESULTS: &str = "shard.partial_results";
    /// Boundary-edge Apply frames sent (retries included).
    pub const APPLIES_SENT: &str = "shard.applies_sent";
    /// Apply acks received by batch origins.
    pub const APPLY_ACKS: &str = "shard.apply_acks";
    /// Apply nacks received by batch origins.
    pub const APPLY_NACKS: &str = "shard.apply_nacks";
    /// Replication rounds that had to retry unacked batches.
    pub const APPLY_RETRIES: &str = "shard.apply_retries";
    /// Mutation batches applied on sibling shards.
    pub const BATCHES_APPLIED: &str = "shard.batches_applied";
    /// Per-shard breaker transitions into Open.
    pub const BREAKER_OPENED: &str = "shard.breaker_opened";
    /// Replica digests that disagreed with the durable history.
    pub const DIGEST_DIVERGENCES: &str = "shard.digest_divergences";
    /// Shard failovers (epoch-fenced promotes).
    pub const FAILOVERS: &str = "shard.failovers";
    /// Shards rebuilt from the durable history by scrub.
    pub const REPAIRS: &str = "shard.repairs";
    /// Configured shard count, as a gauge.
    pub const SHARDS_GAUGE: &str = "shard.shards";
    /// Current cluster fencing epoch, as a gauge.
    pub const EPOCH_GAUGE: &str = "shard.epoch";
    /// Shards currently behind the replication head, as a gauge.
    pub const LAGGING_GAUGE: &str = "shard.lagging";
}

//! The shard wire protocol: length-free kind-byte frames, little-endian
//! throughout, modeled on `nebula-replica`'s [`Frame`](nebula_replica::Frame).
//!
//! Two exchanges share the fabric:
//!
//! - **Scatter-gather** — `Probe` fans a query group out to every
//!   sibling; each answers with a `ProbeReply` carrying only the hits it
//!   *owns* (its hash slots). Replies are matched by `probe_id`; stale
//!   replies from an earlier scatter are dropped on the floor.
//! - **Boundary-edge exchange** — `Apply` ships one committed mutation
//!   batch (concatenated WAL records) to a sibling, which answers
//!   `ApplyAck` (with its post-apply store digest, feeding divergence
//!   detection) or `ApplyNack` (naming the sequence it has actually
//!   applied through, so the origin can resend the gap).
//!
//! Every frame carries the sender's fencing epoch where it matters:
//! frames minted before a failover promote are silently discarded by
//! receivers on the new epoch.

use textsearch::{ExecutionMode, KeywordQuery, SearchHit};

/// Decode failure: a frame that is truncated, of unknown kind, or
/// structurally implausible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad shard frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// One shard-to-shard message.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFrame {
    /// Scatter: run this query group over your owned slots and reply.
    Probe {
        /// Correlates replies with one scatter round.
        probe_id: u64,
        /// The home shard awaiting replies.
        origin: usize,
        /// Sender's fencing epoch.
        epoch: u64,
        /// Requested execution mode (isolated or shared).
        mode: ExecutionMode,
        /// The query group (one annotation's generated queries).
        queries: Vec<KeywordQuery>,
    },
    /// Gather: one sibling's owned-slot hits for a probe.
    ProbeReply {
        /// The probe being answered.
        probe_id: u64,
        /// The answering shard.
        shard: usize,
        /// `false` when serving failed (injected fault or budget trip);
        /// `groups` is empty then and the home counts the shard missing.
        ok: bool,
        /// One hit list per query, filtered to the answerer's owned slots.
        groups: Vec<Vec<SearchHit>>,
    },
    /// Boundary-edge exchange: one committed mutation batch.
    Apply {
        /// Global batch sequence number (1-based).
        seq: u64,
        /// The shard that originated (processed) the batch.
        origin: usize,
        /// Sender's fencing epoch.
        epoch: u64,
        /// Did the originating pipeline run to completion? A batch from
        /// an erroring pipeline replays its ops but must not advance the
        /// ACG stability window.
        completed: bool,
        /// Concatenated WAL records ([`nebula_durable::encode_record`]).
        ops: Vec<u8>,
    },
    /// Batch `seq` applied; `digest` is the replica's post-apply store
    /// digest for divergence detection.
    ApplyAck {
        /// Acked sequence.
        seq: u64,
        /// Acking shard.
        shard: usize,
        /// FNV-1a digest of the acking shard's annotation store.
        digest: u64,
    },
    /// Batch `seq` refused (gap or injected apply fault); the sender has
    /// applied through `applied` and needs `applied+1..` resent.
    ApplyNack {
        /// Refused sequence.
        seq: u64,
        /// Refusing shard.
        shard: usize,
        /// Highest sequence the refusing shard has applied.
        applied: u64,
    },
}

const KIND_PROBE: u8 = 1;
const KIND_PROBE_REPLY: u8 = 2;
const KIND_APPLY: u8 = 3;
const KIND_APPLY_ACK: u8 = 4;
const KIND_APPLY_NACK: u8 = 5;

/// Caps that keep a corrupted length prefix from ballooning allocation.
const MAX_QUERIES: u32 = 1 << 16;
const MAX_KEYWORDS: u32 = 1 << 12;
const MAX_HITS: u32 = 1 << 24;

impl ShardFrame {
    /// Encode to the wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ShardFrame::Probe { probe_id, origin, epoch, mode, queries } => {
                out.push(KIND_PROBE);
                out.extend_from_slice(&probe_id.to_le_bytes());
                out.extend_from_slice(&(*origin as u32).to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.push(match mode {
                    ExecutionMode::Isolated => 0,
                    ExecutionMode::Shared => 1,
                });
                out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                for q in queries {
                    out.extend_from_slice(&(q.keywords.len() as u32).to_le_bytes());
                    for kw in &q.keywords {
                        out.extend_from_slice(&(kw.len() as u32).to_le_bytes());
                        out.extend_from_slice(kw.as_bytes());
                    }
                    out.extend_from_slice(&q.weight.to_bits().to_le_bytes());
                }
            }
            ShardFrame::ProbeReply { probe_id, shard, ok, groups } => {
                out.push(KIND_PROBE_REPLY);
                out.extend_from_slice(&probe_id.to_le_bytes());
                out.extend_from_slice(&(*shard as u32).to_le_bytes());
                out.push(u8::from(*ok));
                out.extend_from_slice(&(groups.len() as u32).to_le_bytes());
                for hits in groups {
                    out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                    for h in hits {
                        out.extend_from_slice(&h.tuple.table.0.to_le_bytes());
                        out.extend_from_slice(&h.tuple.row.to_le_bytes());
                        out.extend_from_slice(&h.confidence.to_bits().to_le_bytes());
                    }
                }
            }
            ShardFrame::Apply { seq, origin, epoch, completed, ops } => {
                out.push(KIND_APPLY);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(*origin as u32).to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.push(u8::from(*completed));
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                out.extend_from_slice(ops);
            }
            ShardFrame::ApplyAck { seq, shard, digest } => {
                out.push(KIND_APPLY_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(*shard as u32).to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
            }
            ShardFrame::ApplyNack { seq, shard, applied } => {
                out.push(KIND_APPLY_NACK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(*shard as u32).to_le_bytes());
                out.extend_from_slice(&applied.to_le_bytes());
            }
        }
        out
    }

    /// Decode from the wire form.
    pub fn decode(bytes: &[u8]) -> Result<ShardFrame, FrameError> {
        let mut c = Cursor { bytes, at: 0 };
        let kind = c.u8("kind")?;
        let frame = match kind {
            KIND_PROBE => {
                let probe_id = c.u64("probe_id")?;
                let origin = c.u32("origin")? as usize;
                let epoch = c.u64("epoch")?;
                let mode = match c.u8("mode")? {
                    0 => ExecutionMode::Isolated,
                    1 => ExecutionMode::Shared,
                    m => return Err(FrameError(format!("unknown execution mode {m}"))),
                };
                let n = c.u32("query count")?;
                if n > MAX_QUERIES {
                    return Err(FrameError(format!("implausible query count {n}")));
                }
                let mut queries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let kws = c.u32("keyword count")?;
                    if kws > MAX_KEYWORDS {
                        return Err(FrameError(format!("implausible keyword count {kws}")));
                    }
                    let mut keywords = Vec::with_capacity(kws as usize);
                    for _ in 0..kws {
                        keywords.push(c.string("keyword")?);
                    }
                    let weight = f64::from_bits(c.u64("weight")?);
                    queries.push(KeywordQuery::new(keywords).with_weight(weight));
                }
                ShardFrame::Probe { probe_id, origin, epoch, mode, queries }
            }
            KIND_PROBE_REPLY => {
                let probe_id = c.u64("probe_id")?;
                let shard = c.u32("shard")? as usize;
                let ok = c.u8("ok")? != 0;
                let n = c.u32("group count")?;
                if n > MAX_QUERIES {
                    return Err(FrameError(format!("implausible group count {n}")));
                }
                let mut groups = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let hits = c.u32("hit count")?;
                    if hits > MAX_HITS {
                        return Err(FrameError(format!("implausible hit count {hits}")));
                    }
                    let mut list = Vec::with_capacity(hits as usize);
                    for _ in 0..hits {
                        let table = c.u32("hit table")?;
                        let row = c.u64("hit row")?;
                        let confidence = f64::from_bits(c.u64("hit confidence")?);
                        list.push(SearchHit {
                            tuple: relstore::TupleId::new(relstore::schema::TableId(table), row),
                            confidence,
                        });
                    }
                    groups.push(list);
                }
                ShardFrame::ProbeReply { probe_id, shard, ok, groups }
            }
            KIND_APPLY => {
                let seq = c.u64("seq")?;
                let origin = c.u32("origin")? as usize;
                let epoch = c.u64("epoch")?;
                let completed = c.u8("completed")? != 0;
                let len = c.u32("ops length")? as usize;
                let ops = c.slice("ops", len)?.to_vec();
                ShardFrame::Apply { seq, origin, epoch, completed, ops }
            }
            KIND_APPLY_ACK => ShardFrame::ApplyAck {
                seq: c.u64("seq")?,
                shard: c.u32("shard")? as usize,
                digest: c.u64("digest")?,
            },
            KIND_APPLY_NACK => ShardFrame::ApplyNack {
                seq: c.u64("seq")?,
                shard: c.u32("shard")? as usize,
                applied: c.u64("applied")?,
            },
            k => return Err(FrameError(format!("unknown frame kind {k}"))),
        };
        if c.at != bytes.len() {
            return Err(FrameError(format!("{} trailing bytes", bytes.len() - c.at)));
        }
        Ok(frame)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn slice(&mut self, what: &str, n: usize) -> Result<&[u8], FrameError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| FrameError(format!("truncated at {what}")))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.slice(what, 1)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        let s = self.slice(what, 4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let s = self.slice(what, 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn string(&mut self, what: &str) -> Result<String, FrameError> {
        let len = self.u32(what)? as usize;
        if len > 1 << 20 {
            return Err(FrameError(format!("implausible {what} length {len}")));
        }
        let s = self.slice(what, len)?;
        String::from_utf8(s.to_vec()).map_err(|_| FrameError(format!("{what} not utf-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;
    use relstore::TupleId;

    fn roundtrip(f: ShardFrame) {
        let bytes = f.encode();
        assert_eq!(ShardFrame::decode(&bytes).expect("decode"), f);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(ShardFrame::Probe {
            probe_id: 7,
            origin: 2,
            epoch: 3,
            mode: ExecutionMode::Shared,
            queries: vec![
                KeywordQuery::new(["acute", "lymphoblastic"]).with_weight(0.75),
                KeywordQuery::new(Vec::<String>::new()),
            ],
        });
        roundtrip(ShardFrame::ProbeReply {
            probe_id: 7,
            shard: 1,
            ok: true,
            groups: vec![
                vec![SearchHit { tuple: TupleId::new(TableId(4), 99), confidence: 0.512_345 }],
                vec![],
            ],
        });
        roundtrip(ShardFrame::ProbeReply { probe_id: 8, shard: 3, ok: false, groups: vec![] });
        roundtrip(ShardFrame::Apply {
            seq: 41,
            origin: 0,
            epoch: 2,
            completed: true,
            ops: vec![1, 2, 3, 4, 5],
        });
        roundtrip(ShardFrame::ApplyAck { seq: 41, shard: 2, digest: 0xDEAD_BEEF });
        roundtrip(ShardFrame::ApplyNack { seq: 41, shard: 2, applied: 39 });
    }

    #[test]
    fn confidence_is_bit_exact() {
        let hit = SearchHit { tuple: TupleId::new(TableId(0), 1), confidence: 0.1 + 0.2 };
        let f = ShardFrame::ProbeReply { probe_id: 1, shard: 0, ok: true, groups: vec![vec![hit]] };
        match ShardFrame::decode(&f.encode()).expect("decode") {
            ShardFrame::ProbeReply { groups, .. } => {
                assert_eq!(groups[0][0].confidence.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn truncation_and_junk_are_typed_errors() {
        let good = ShardFrame::ApplyAck { seq: 1, shard: 0, digest: 9 }.encode();
        for cut in 0..good.len() {
            assert!(ShardFrame::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        assert!(ShardFrame::decode(&[0xFF, 1, 2]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(ShardFrame::decode(&trailing).is_err());
    }
}

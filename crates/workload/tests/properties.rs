//! Property-based tests for the synthetic dataset and workload generators.

use nebula_workload::{build_workload, generate_dataset, DatasetSpec, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Protein→gene layout is a partition: `proteins_of_gene` ranges are
    /// disjoint, cover all proteins, and invert `gene_of_protein`.
    #[test]
    fn protein_gene_layout_partitions(genes in 1usize..50, proteins in 0usize..80) {
        let spec = DatasetSpec { genes, proteins, ..DatasetSpec::tiny() };
        let mut covered = vec![false; proteins];
        for g in 0..genes {
            for p in spec.proteins_of_gene(g) {
                prop_assert!(!covered[p], "protein {p} assigned to two genes");
                covered[p] = true;
                prop_assert_eq!(spec.gene_of_protein(p), g);
            }
        }
        prop_assert!(covered.iter().all(|c| *c), "every protein has a gene");
    }

    /// Workload sets always respect their byte caps and reference counts,
    /// at any seed.
    #[test]
    fn workload_respects_budgets(seed in 0u64..1000) {
        let bundle = generate_dataset(&DatasetSpec::tiny(), seed);
        let sets = build_workload(&bundle, &WorkloadSpec::default(), seed);
        prop_assert_eq!(sets.len(), 4);
        for set in &sets {
            prop_assert_eq!(set.annotations.len(), 15);
            for wa in &set.annotations {
                prop_assert!(wa.annotation.size_bytes() <= set.max_bytes);
                prop_assert!(!wa.ideal.is_empty());
                prop_assert!(wa.ideal.len() <= 10);
                // Ideal tuples are distinct and live.
                let mut d = wa.ideal.clone();
                d.sort();
                d.dedup();
                prop_assert_eq!(d.len(), wa.ideal.len());
                for t in &wa.ideal {
                    prop_assert!(bundle.db.get(*t).is_some());
                }
            }
        }
    }

    /// Dataset invariants hold for arbitrary (small) shapes.
    #[test]
    fn dataset_shape_invariants(
        genes in 5usize..40,
        proteins in 0usize..40,
        publications in 1usize..40,
    ) {
        let spec = DatasetSpec {
            genes,
            proteins,
            publications,
            links_per_publication: (1, 3),
            ..DatasetSpec::tiny()
        };
        let b = generate_dataset(&spec, 1);
        prop_assert_eq!(b.gene_tuples.len(), genes);
        prop_assert_eq!(b.protein_tuples.len(), proteins);
        prop_assert_eq!(b.publication_tuples.len(), publications);
        prop_assert_eq!(b.annotations.annotation_count(), publications);
        // Every annotation's focal tuples are entities, not publications.
        for (aid, _) in b.annotations.iter_annotations() {
            for t in b.annotations.focal(aid) {
                prop_assert!(
                    b.gene_tuples.contains(&t) || b.protein_tuples.contains(&t),
                    "publication links point at entities"
                );
            }
        }
    }
}

//! The synthetic UniProt-like dataset generator.
//!
//! Produces the Gene / Protein / Publication schema of the paper's §8.1
//! setup, populated deterministically from a seed: publications double as
//! relational rows (their abstracts are what makes the naive baseline
//! drown in matches) *and* as annotations attached to the gene/protein
//! tuples they reference (which is what builds the ACG).

use crate::names;
use crate::text;
use annostore::{Annotation, AnnotationStore, AttachmentTarget};
use nebula_core::{ConceptRef, NebulaMeta, Pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{DataType, Database, TableSchema, TupleId, Value};

/// Size/shape parameters of a generated dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of gene rows (≤ 10 000).
    pub genes: usize,
    /// Number of protein rows.
    pub proteins: usize,
    /// Number of publications (each is a row *and* an annotation).
    pub publications: usize,
    /// Min/max tuples a publication links to.
    pub links_per_publication: (usize, usize),
    /// Number of gene families.
    pub families: usize,
    /// Min/max filler words in a publication abstract.
    pub abstract_words: (usize, usize),
    /// One in `confuser_rate` filler words is identifier-shaped noise
    /// (0 disables).
    pub confuser_rate: usize,
    /// How many protein ids NebulaMeta samples for `protein.pid`.
    pub protein_sample_size: usize,
    /// Locality window (in gene-index units) within which a publication's
    /// references cluster. Real curation data exhibits strong locality —
    /// publications cite biologically related entities — which is what
    /// keeps ACG K-hop neighborhoods small (the premise of the paper's
    /// focal-based spreading search, §6.3).
    pub locality_window: usize,
}

impl DatasetSpec {
    /// Minimal dataset for unit tests and doc examples.
    pub fn tiny() -> Self {
        DatasetSpec {
            genes: 40,
            proteins: 60,
            publications: 80,
            links_per_publication: (1, 4),
            families: 4,
            abstract_words: (10, 25),
            confuser_rate: 12,
            protein_sample_size: 20,
            locality_window: 8,
        }
    }

    /// `D_small` — the 10% subset (scaled to laptop size).
    pub fn small() -> Self {
        DatasetSpec {
            genes: 500,
            proteins: 750,
            publications: 2_000,
            links_per_publication: (1, 5),
            families: 10,
            abstract_words: (20, 60),
            confuser_rate: 12,
            protein_sample_size: 150,
            locality_window: 12,
        }
    }

    /// `D_mid` — the 50% subset.
    pub fn mid() -> Self {
        DatasetSpec {
            genes: 2_500,
            proteins: 3_750,
            publications: 10_000,
            links_per_publication: (1, 5),
            families: 15,
            abstract_words: (20, 60),
            confuser_rate: 12,
            protein_sample_size: 400,
            locality_window: 12,
        }
    }

    /// `D_large` — the full extraction.
    pub fn large() -> Self {
        DatasetSpec {
            genes: 5_000,
            proteins: 7_500,
            publications: 20_000,
            links_per_publication: (1, 5),
            families: 20,
            abstract_words: (20, 60),
            confuser_rate: 12,
            protein_sample_size: 800,
            locality_window: 12,
        }
    }

    /// The gene a protein belongs to: proteins are laid out along the
    /// gene axis (many-to-one, locality-preserving).
    pub fn gene_of_protein(&self, protein: usize) -> usize {
        if self.proteins == 0 {
            return 0;
        }
        (protein * self.genes / self.proteins).min(self.genes.saturating_sub(1))
    }

    /// The protein index range belonging to a gene (possibly empty).
    pub fn proteins_of_gene(&self, gene: usize) -> std::ops::Range<usize> {
        if self.genes == 0 {
            return 0..0;
        }
        let lo = (gene * self.proteins).div_ceil(self.genes);
        let hi = ((gene + 1) * self.proteins).div_ceil(self.genes).min(self.proteins);
        lo..hi.max(lo)
    }
}

/// One reference to embed in an abstract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSpec {
    /// The concept word introducing the reference (`gene` / `protein`).
    pub concept: &'static str,
    /// The referencing text (an id or name).
    pub text: String,
    /// The referenced tuple.
    pub tuple: TupleId,
}

/// A fully generated dataset.
#[derive(Debug)]
pub struct DatasetBundle {
    /// The relational database (gene, protein, publication tables).
    pub db: Database,
    /// The annotation store: every publication attached to its links.
    pub annotations: AnnotationStore,
    /// NebulaMeta configured for this schema.
    pub meta: NebulaMeta,
    /// Gene tuple ids by index.
    pub gene_tuples: Vec<TupleId>,
    /// Protein tuple ids by index.
    pub protein_tuples: Vec<TupleId>,
    /// Publication tuple ids by index.
    pub publication_tuples: Vec<TupleId>,
    /// The spec the bundle was generated from.
    pub spec: DatasetSpec,
    seed: u64,
}

impl DatasetBundle {
    /// Any gene tuple (used by examples).
    pub fn some_gene_tuple(&self) -> TupleId {
        self.gene_tuples[0]
    }

    /// Number of annotatable entity tuples (genes + proteins).
    pub fn entity_count(&self) -> usize {
        self.gene_tuples.len() + self.protein_tuples.len()
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Build a [`RefSpec`] for entity index `i` in the combined
    /// gene-then-protein index space; genes alternate id/name references.
    pub fn reference_for(&self, i: usize, by_name: bool) -> RefSpec {
        if i < self.gene_tuples.len() {
            RefSpec {
                concept: "gene",
                text: if by_name { names::gene_name(i) } else { names::gene_id(i) },
                tuple: self.gene_tuples[i],
            }
        } else {
            let p = i - self.gene_tuples.len();
            RefSpec {
                concept: "protein",
                text: names::protein_id(p),
                tuple: self.protein_tuples[p],
            }
        }
    }
}

/// Create the Gene / Protein / Publication schema.
fn create_schema(db: &mut Database) {
    db.create_table(
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .indexed_column("family", DataType::Text)
            .column("length", DataType::Int)
            .unsearchable_column("seq", DataType::Text)
            .primary_key("gid")
            .build()
            .expect("static schema is valid"),
    )
    .expect("fresh database");
    db.create_table(
        TableSchema::builder("protein")
            .column("pid", DataType::Text)
            .column("pname", DataType::Text)
            .column("ptype", DataType::Text)
            .column("gene_id", DataType::Text)
            .column("mass", DataType::Int)
            .primary_key("pid")
            .build()
            .expect("static schema is valid"),
    )
    .expect("fresh database");
    db.create_table(
        TableSchema::builder("publication")
            .column("pub_id", DataType::Text)
            .column("title", DataType::Text)
            .column("abstract", DataType::Text)
            .primary_key("pub_id")
            .build()
            .expect("static schema is valid"),
    )
    .expect("fresh database");
    db.add_foreign_key("protein", "gene_id", "gene").expect("fk targets exist");
}

/// Configure NebulaMeta for the generated schema (the §8.1 manual
/// population: Gene and Protein concepts, their referencing columns, the
/// syntactic patterns on `gene.gid` / `gene.name`, plus a protein-id
/// sample and the protein-type ontology).
pub fn build_meta(spec: &DatasetSpec) -> NebulaMeta {
    let mut meta = NebulaMeta::new();
    meta.add_concept(ConceptRef {
        concept: "Gene".into(),
        table: "gene".into(),
        referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
    });
    meta.add_concept(ConceptRef {
        concept: "Protein".into(),
        table: "protein".into(),
        referenced_by: vec![vec!["pid".into()], vec!["pname".into(), "ptype".into()]],
    });
    meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").expect("static pattern"));
    meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").expect("static pattern"));
    meta.set_sample(
        "protein",
        "pid",
        (0..spec.protein_sample_size.min(spec.proteins)).map(names::protein_id),
    );
    meta.set_ontology("protein", "ptype", names::PROTEIN_TYPES.iter().copied());
    meta.set_sample(
        "protein",
        "pname",
        (0..spec.protein_sample_size.min(spec.proteins)).map(names::protein_name),
    );
    // Curator equivalent names ("GID" ≡ "gene id" in the paper's example).
    meta.add_column_equivalent("id", "gene", "gid");
    meta.add_table_synonym("locus", "gene");
    meta
}

/// Compose an abstract embedding `refs`, with filler between them. If
/// `budget_bytes` is given the output stays within it (references take
/// priority over filler; the compact "concept r1 r2 r3" form is used when
/// tight).
pub fn compose_abstract(
    rng: &mut StdRng,
    refs: &[RefSpec],
    filler_words: usize,
    confuser_rate: usize,
    budget_bytes: Option<usize>,
) -> String {
    let mut out = String::new();
    match budget_bytes {
        Some(budget) => {
            // Compact: group by concept, emit each concept word once.
            let mut by_concept: Vec<(&str, Vec<&RefSpec>)> = Vec::new();
            for r in refs {
                match by_concept.iter_mut().find(|(c, _)| *c == r.concept) {
                    Some((_, v)) => v.push(r),
                    None => by_concept.push((r.concept, vec![r])),
                }
            }
            for (concept, group) in by_concept {
                if !out.is_empty() {
                    out.push(' ');
                }
                // Multi-reference groups read naturally in the plural half
                // the time ("genes JW0013 JW0019"), exercising the lexical
                // normalization the discovery side must perform.
                if group.len() > 1 && rng.gen_bool(0.5) {
                    out.push_str(concept);
                    out.push('s');
                } else {
                    out.push_str(concept);
                }
                for r in group {
                    out.push(' ');
                    out.push_str(&r.text);
                }
            }
            // Pad with filler words while they fit.
            let mut padded = out.clone();
            let mut n = 0;
            while padded.len() < budget.saturating_sub(12) && n < filler_words {
                text::push_filler(rng, &mut padded, 1, confuser_rate);
                n += 1;
                if padded.len() <= budget {
                    out = padded.clone();
                } else {
                    break;
                }
            }
        }
        None => {
            // Spacious: filler, then each reference in its own clause,
            // sometimes in the Type-1 form ("gene id JW0013"), sometimes
            // with the concept word beyond the α range (exercising the
            // backward search).
            text::push_filler(rng, &mut out, filler_words / 2, confuser_rate);
            for (i, r) in refs.iter().enumerate() {
                out.push(' ');
                match rng.gen_range(0..4) {
                    0 => {
                        // Type-1 form.
                        out.push_str(r.concept);
                        out.push_str(" id ");
                        out.push_str(&r.text);
                    }
                    1 if i > 0 && refs[i - 1].concept == r.concept => {
                        // Continuation: concept inherited from the previous
                        // reference (backward-search case).
                        out.push_str("and ");
                        out.push_str(&r.text);
                    }
                    _ => {
                        out.push_str(r.concept);
                        out.push(' ');
                        out.push_str(&r.text);
                    }
                }
            }
            out.push(' ');
            text::push_filler(rng, &mut out, filler_words - filler_words / 2, confuser_rate);
        }
    }
    out
}

/// Pick `n` distinct entity references clustered around a random center
/// gene, within the spec's locality window — the co-citation locality real
/// curated data exhibits (and the premise of focal-based spreading).
///
/// `genes_only` restricts to gene references (used for byte-tight
/// annotations whose protein references would not fit).
pub fn pick_local_refs(
    rng: &mut StdRng,
    spec: &DatasetSpec,
    genes: &[TupleId],
    prots: &[TupleId],
    n: usize,
    genes_only: bool,
) -> Vec<RefSpec> {
    let w = spec.locality_window.max(1) as i64;
    let center = rng.gen_range(0..genes.len()) as i64;
    let mut refs: Vec<RefSpec> = Vec::with_capacity(n);
    let mut used = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while refs.len() < n {
        attempts += 1;
        // Safety valve for degenerate windows (cannot realistically fire
        // with window ≥ n, but never loop forever).
        let reach = if attempts > n * 50 { w * 8 } else { w };
        let g = (center + rng.gen_range(-reach..=reach)).clamp(0, genes.len() as i64 - 1) as usize;
        // ~70% genes, 30% proteins of nearby genes.
        let pick_gene = genes_only || rng.gen_range(0..10) < 7 || prots.is_empty();
        let r = if pick_gene {
            if !used.insert(genes[g]) {
                continue;
            }
            RefSpec {
                concept: "gene",
                text: if rng.gen_bool(0.5) { names::gene_id(g) } else { names::gene_name(g) },
                tuple: genes[g],
            }
        } else {
            let range = spec.proteins_of_gene(g);
            if range.is_empty() {
                continue;
            }
            let p = rng.gen_range(range.start..range.end).min(prots.len() - 1);
            if !used.insert(prots[p]) {
                continue;
            }
            // Half the protein references use the unique id; the other
            // half the *ambiguous* `PName & PType` combination (the
            // paper's ConceptRefs combined reference) — protein names
            // repeat, so these are the genuinely uncertain predictions
            // that exercise the expert-verification band.
            let text = if rng.gen_bool(0.5) {
                names::protein_id(p)
            } else {
                format!("{} {}", names::protein_name(p), names::protein_type(p))
            };
            RefSpec { concept: "protein", text, tuple: prots[p] }
        };
        refs.push(r);
    }
    refs
}

/// Generate a complete dataset from a spec and seed.
pub fn generate_dataset(spec: &DatasetSpec, seed: u64) -> DatasetBundle {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    create_schema(&mut db);

    let mut gene_tuples = Vec::with_capacity(spec.genes);
    for i in 0..spec.genes {
        let tid = db
            .insert(
                "gene",
                vec![
                    Value::text(names::gene_id(i)),
                    Value::text(names::gene_name(i)),
                    Value::text(names::family(i, spec.families)),
                    Value::Int(rng.gen_range(300..3000)),
                    Value::text(names::sequence(&mut rng, 24)),
                ],
            )
            .expect("generated gene rows are unique and typed");
        gene_tuples.push(tid);
    }

    let mut protein_tuples = Vec::with_capacity(spec.proteins);
    for i in 0..spec.proteins {
        let gene_idx = spec.gene_of_protein(i);
        let tid = db
            .insert(
                "protein",
                vec![
                    Value::text(names::protein_id(i)),
                    Value::text(names::protein_name(i)),
                    Value::text(names::protein_type(i)),
                    Value::text(names::gene_id(gene_idx)),
                    Value::Int(rng.gen_range(10_000..120_000)),
                ],
            )
            .expect("generated protein rows are unique and typed");
        protein_tuples.push(tid);
    }

    let mut annotations = AnnotationStore::new();
    let mut publication_tuples = Vec::with_capacity(spec.publications);
    for i in 0..spec.publications {
        let n_links =
            rng.gen_range(spec.links_per_publication.0..=spec.links_per_publication.1).max(1);
        let refs = pick_local_refs(&mut rng, spec, &gene_tuples, &protein_tuples, n_links, false);
        let words = rng.gen_range(spec.abstract_words.0..=spec.abstract_words.1);
        let abstract_text = compose_abstract(&mut rng, &refs, words, spec.confuser_rate, None);
        let title = text::filler_sentence(&mut rng, 6);
        let tid = db
            .insert(
                "publication",
                vec![
                    Value::text(format!("PUB{i:06}")),
                    Value::text(title),
                    Value::text(abstract_text.clone()),
                ],
            )
            .expect("generated publication rows are unique and typed");
        publication_tuples.push(tid);

        // The publication is also an annotation attached to its links —
        // the complete (ideal) attachment set.
        let aid = annotations.add_annotation(Annotation::new(abstract_text).of_kind("publication"));
        for r in &refs {
            annotations
                .attach(aid, AttachmentTarget::tuple(r.tuple))
                .expect("attachment targets exist");
        }
    }

    let meta = build_meta(spec);
    DatasetBundle {
        db,
        annotations,
        meta,
        gene_tuples,
        protein_tuples,
        publication_tuples,
        spec: spec.clone(),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_has_expected_shape() {
        let spec = DatasetSpec::tiny();
        let b = generate_dataset(&spec, 42);
        assert_eq!(b.gene_tuples.len(), spec.genes);
        assert_eq!(b.protein_tuples.len(), spec.proteins);
        assert_eq!(b.publication_tuples.len(), spec.publications);
        assert_eq!(b.db.total_tuples(), spec.genes + spec.proteins + spec.publications);
        assert_eq!(b.annotations.annotation_count(), spec.publications);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny();
        let a = generate_dataset(&spec, 7);
        let b = generate_dataset(&spec, 7);
        for (x, y) in a.publication_tuples.iter().zip(&b.publication_tuples) {
            assert_eq!(a.db.get(*x).unwrap().values, b.db.get(*y).unwrap().values);
        }
        let c = generate_dataset(&spec, 8);
        let same = a
            .publication_tuples
            .iter()
            .zip(&c.publication_tuples)
            .all(|(x, y)| a.db.get(*x).unwrap().values == c.db.get(*y).unwrap().values);
        assert!(!same, "different seeds produce different data");
    }

    #[test]
    fn every_publication_has_attachments() {
        let b = generate_dataset(&DatasetSpec::tiny(), 1);
        for (aid, _) in b.annotations.iter_annotations() {
            let focal = b.annotations.focal(aid);
            assert!(!focal.is_empty());
            assert!(focal.len() <= b.spec.links_per_publication.1);
        }
    }

    #[test]
    fn abstracts_embed_their_references() {
        let b = generate_dataset(&DatasetSpec::tiny(), 3);
        // For each annotation, at least one referenced tuple's id or name
        // appears in the text.
        for (aid, ann) in b.annotations.iter_annotations() {
            let focal = b.annotations.focal(aid);
            let found = focal.iter().any(|t| {
                let tuple = b.db.get(*t).unwrap();
                let key = tuple.key().unwrap().render();
                let named = ["name", "pname"].iter().any(|col| {
                    tuple.get_by_name(col).map(|v| ann.text.contains(&v.render())).unwrap_or(false)
                });
                ann.text.contains(&key) || named
            });
            assert!(found, "annotation text references its attachments: {}", ann.text);
        }
    }

    #[test]
    fn meta_scores_dataset_identifiers() {
        let spec = DatasetSpec::tiny();
        let b = generate_dataset(&spec, 5);
        let gene_t = b.db.catalog().resolve("gene").unwrap();
        let gid = b.db.table(gene_t).unwrap().schema().column_id("gid").unwrap();
        assert!(b.meta.domain_weight(&b.db, "JW0007", gene_t, gid) >= 0.9);
        let prot_t = b.db.catalog().resolve("protein").unwrap();
        let pid = b.db.table(prot_t).unwrap().schema().column_id("pid").unwrap();
        // Sampled protein id scores exact; unsampled scores shape.
        assert!(b.meta.domain_weight(&b.db, &names::protein_id(0), prot_t, pid) >= 0.8);
        let unsampled = names::protein_id(spec.proteins - 1);
        let w = b.meta.domain_weight(&b.db, &unsampled, prot_t, pid);
        assert!((0.5..0.8).contains(&w), "unsampled pid scores shape: {w}");
    }

    #[test]
    fn compose_abstract_respects_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let refs = vec![
            RefSpec {
                concept: "gene",
                text: "JW0001".into(),
                tuple: TupleId::new(relstore::schema::TableId(0), 1),
            },
            RefSpec {
                concept: "gene",
                text: "abcD".into(),
                tuple: TupleId::new(relstore::schema::TableId(0), 2),
            },
            RefSpec {
                concept: "protein",
                text: "P00003".into(),
                tuple: TupleId::new(relstore::schema::TableId(1), 3),
            },
        ];
        let s = compose_abstract(&mut rng, &refs, 30, 0, Some(50));
        assert!(s.len() <= 50, "{} bytes: {s}", s.len());
        assert!(s.contains("JW0001"));
        assert!(s.contains("abcD"));
        assert!(s.contains("P00003"));
        // Concept words emitted once per group (compact form).
        assert_eq!(s.matches("gene").count(), 1);
    }

    #[test]
    fn reference_for_spans_both_entity_kinds() {
        let b = generate_dataset(&DatasetSpec::tiny(), 11);
        let g = b.reference_for(0, false);
        assert_eq!(g.concept, "gene");
        assert_eq!(g.tuple, b.gene_tuples[0]);
        let p = b.reference_for(b.gene_tuples.len(), false);
        assert_eq!(p.concept, "protein");
        assert_eq!(p.tuple, b.protein_tuples[0]);
    }
}

//! # nebula-workload — synthetic curated biological datasets
//!
//! The Nebula paper evaluates on a subset of the UniProt curated database
//! (Protein / Gene / Publication tables, ≈18 GB). That data cannot be
//! shipped, so this crate generates a **synthetic equivalent** preserving
//! every property the evaluation manipulates:
//!
//! - the same schema and FK relationships (Protein →many-to-one→ Gene;
//!   publications attached many-to-many to genes and proteins),
//! - the syntactic regularities NebulaMeta exploits
//!   (`Gene.ID ~ JW[0-9]{4}`, `Gene.Name ~ [a-z]{3}[A-Z]`,
//!   protein ids sampled, protein types from a small ontology),
//! - publications whose abstracts **embed references** to gene/protein
//!   tuples with a controlled count — the ground truth (`D_ideal`) every
//!   experiment assesses against,
//! - the paper's workload structure: four size groups
//!   `L^50, L^100, L^500, L^1000` (max annotation bytes) × three link
//!   subsets `L_{1-3}, L_{4-6}, L_{7-10}` (embedded-reference counts),
//!   with `L^50·L_{7-10}` substituted as footnote 3 describes.
//!
//! All generation is seeded and deterministic.

pub mod names;
pub mod text;
pub mod uniprot;
pub mod workload;

pub use uniprot::{generate_dataset, DatasetBundle, DatasetSpec};
pub use workload::{build_workload, LinkBand, WorkloadAnnotation, WorkloadSet, WorkloadSpec};

//! The evaluation workload (paper §8.1, Appendix Figure 18).
//!
//! A workload is 60 annotations over a dataset, divided into four size
//! groups `L^50, L^100, L^500, L^1000` (max annotation bytes), each
//! drawing 5 annotations from each of three link subsets
//! `L_{1-3}, L_{4-6}, L_{7-10}` (number of embedded references). As the
//! paper's footnote 3 notes, `L^50·L_{7-10}` cannot exist (7+ references
//! do not fit in 50 bytes), so those 5 annotations are substituted by
//! extras in the two smaller bands.
//!
//! Workload annotations are **not** part of the dataset's annotation
//! store or its ACG — they play the role of the *new* annotations whose
//! missing attachments Nebula must discover; their embedded-reference
//! sets are the ground truth (`D_ideal` restricted to the annotation).

use crate::uniprot::{compose_abstract, DatasetBundle};
use crate::{names, text};
use annostore::Annotation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::TupleId;

/// The embedded-reference-count subsets of Figure 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkBand {
    /// 1–3 embedded references.
    L1_3,
    /// 4–6 embedded references.
    L4_6,
    /// 7–10 embedded references.
    L7_10,
}

impl LinkBand {
    /// The inclusive reference-count range.
    pub fn range(&self) -> (usize, usize) {
        match self {
            LinkBand::L1_3 => (1, 3),
            LinkBand::L4_6 => (4, 6),
            LinkBand::L7_10 => (7, 10),
        }
    }

    /// Display label (`L_{1-3}` …).
    pub fn label(&self) -> &'static str {
        match self {
            LinkBand::L1_3 => "L_{1-3}",
            LinkBand::L4_6 => "L_{4-6}",
            LinkBand::L7_10 => "L_{7-10}",
        }
    }

    /// All three bands.
    pub fn all() -> [LinkBand; 3] {
        [LinkBand::L1_3, LinkBand::L4_6, LinkBand::L7_10]
    }
}

/// One workload annotation with its ground truth.
#[derive(Debug, Clone)]
pub struct WorkloadAnnotation {
    /// The annotation to insert.
    pub annotation: Annotation,
    /// Every tuple the annotation references — its ideal attachment set.
    pub ideal: Vec<TupleId>,
    /// The band the annotation was drawn for.
    pub band: LinkBand,
    /// The size group (max bytes) it belongs to.
    pub max_bytes: usize,
}

/// One `L^m` size group (15 annotations).
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    /// Size cap `m` in bytes.
    pub max_bytes: usize,
    /// The annotations of the group.
    pub annotations: Vec<WorkloadAnnotation>,
}

impl WorkloadSet {
    /// Annotations of one band within the group.
    pub fn band(&self, band: LinkBand) -> impl Iterator<Item = &WorkloadAnnotation> {
        self.annotations.iter().filter(move |a| a.band == band)
    }
}

/// Workload shape parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// The `L^m` size caps in bytes.
    pub sizes: Vec<usize>,
    /// Annotations per `(size, band)` cell (the paper uses 5).
    pub per_subset: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { sizes: vec![50, 100, 500, 1000], per_subset: 5 }
    }
}

/// Smallest byte budget that can hold `n` compact gene references.
fn fits(n_refs: usize, budget: usize) -> bool {
    // "gene " + n × ("JW0000 " = 7 bytes) — conservative.
    5 + n_refs * 7 <= budget
}

/// Exact byte length of the compact rendering `compose_abstract` uses:
/// each concept word once per group, plus every reference text.
fn compact_len(refs: &[crate::uniprot::RefSpec]) -> usize {
    let mut concepts: Vec<&str> = refs.iter().map(|r| r.concept).collect();
    concepts.sort_unstable();
    concepts.dedup();
    let concept_bytes: usize = concepts.iter().map(|c| c.len() + 1).sum();
    let ref_bytes: usize = refs.iter().map(|r| r.text.len() + 1).sum();
    concept_bytes + ref_bytes
}

/// Build one annotation with `n_refs` embedded references within
/// `max_bytes`.
fn build_annotation(
    rng: &mut StdRng,
    bundle: &DatasetBundle,
    n_refs: usize,
    band: LinkBand,
    max_bytes: usize,
) -> WorkloadAnnotation {
    let tight = max_bytes < 100;
    // Workload references cluster like the dataset's own publications:
    // tight budgets use gene references only (short).
    let mut refs = crate::uniprot::pick_local_refs(
        rng,
        &bundle.spec,
        &bundle.gene_tuples,
        &bundle.protein_tuples,
        n_refs,
        tight,
    );
    // Drop tail references that cannot fit the byte budget in the compact
    // rendering (protein name+type references are long); the annotation's
    // ideal set shrinks with them, keeping text and ground truth aligned.
    while refs.len() > 1 && compact_len(&refs) + 8 > max_bytes {
        refs.pop();
    }
    let filler = if tight { 6 } else { max_bytes / 12 };
    let body = compose_abstract(rng, &refs, filler, bundle.spec.confuser_rate, Some(max_bytes));
    debug_assert!(body.len() <= max_bytes);
    let ideal = refs.iter().map(|r| r.tuple).collect();
    WorkloadAnnotation {
        annotation: Annotation::new(body).of_kind("publication"),
        ideal,
        band,
        max_bytes,
    }
}

/// Build the full workload over a dataset.
pub fn build_workload(bundle: &DatasetBundle, spec: &WorkloadSpec, seed: u64) -> Vec<WorkloadSet> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_1234);
    let mut sets = Vec::with_capacity(spec.sizes.len());
    for &max_bytes in &spec.sizes {
        let mut annotations = Vec::with_capacity(spec.per_subset * 3);
        let mut substitutions = 0usize;
        for band in LinkBand::all() {
            let (lo, hi) = band.range();
            for _ in 0..spec.per_subset {
                let n = rng.gen_range(lo..=hi);
                if fits(n, max_bytes) {
                    annotations.push(build_annotation(&mut rng, bundle, n, band, max_bytes));
                } else {
                    // Footnote 3: the cell is infeasible; substitute with
                    // an extra annotation in a smaller band.
                    substitutions += 1;
                }
            }
        }
        for i in 0..substitutions {
            let band = if i % 2 == 0 { LinkBand::L1_3 } else { LinkBand::L4_6 };
            let (lo, hi) = band.range();
            let mut n = rng.gen_range(lo..=hi);
            while !fits(n, max_bytes) {
                n -= 1;
            }
            annotations.push(build_annotation(&mut rng, bundle, n.max(1), band, max_bytes));
        }
        sets.push(WorkloadSet { max_bytes, annotations });
    }
    sets
}

/// A quick text sample resembling Alice's comment in Figure 1 — used by
/// examples and docs.
pub fn alice_comment(bundle: &DatasetBundle) -> (Annotation, Vec<TupleId>) {
    let mut rng = StdRng::seed_from_u64(0xa11ce);
    let mut s = String::from("From the exp, it seems this gene is correlated to ");
    s.push_str(&names::gene_id(1));
    s.push_str(" expression of ");
    s.push_str(&names::gene_name(0));
    s.push(' ');
    text::push_filler(&mut rng, &mut s, 4, 0);
    (
        Annotation::new(s).by("Alice").of_kind("comment"),
        vec![bundle.gene_tuples[1], bundle.gene_tuples[0]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniprot::{generate_dataset, DatasetSpec};

    fn bundle() -> DatasetBundle {
        generate_dataset(&DatasetSpec::tiny(), 42)
    }

    #[test]
    fn workload_has_paper_shape() {
        let b = bundle();
        let sets = build_workload(&b, &WorkloadSpec::default(), 1);
        assert_eq!(sets.len(), 4);
        for set in &sets {
            assert_eq!(set.annotations.len(), 15, "15 annotations per L^m");
            for a in &set.annotations {
                assert!(
                    a.annotation.size_bytes() <= set.max_bytes,
                    "{} > {}",
                    a.annotation.size_bytes(),
                    set.max_bytes
                );
                assert!(!a.ideal.is_empty());
                assert!(a.ideal.len() <= 10);
            }
        }
    }

    #[test]
    fn l50_l710_substituted() {
        let b = bundle();
        let sets = build_workload(&b, &WorkloadSpec::default(), 1);
        let l50 = sets.iter().find(|s| s.max_bytes == 50).unwrap();
        assert_eq!(l50.band(LinkBand::L7_10).count(), 0, "7–10 refs cannot fit 50 bytes");
        assert_eq!(l50.annotations.len(), 15, "substituted, not dropped");
        let l1000 = sets.iter().find(|s| s.max_bytes == 1000).unwrap();
        assert_eq!(l1000.band(LinkBand::L7_10).count(), 5);
    }

    #[test]
    fn reference_counts_match_bands() {
        let b = bundle();
        let sets = build_workload(&b, &WorkloadSpec::default(), 2);
        for set in &sets {
            for a in &set.annotations {
                let (lo, hi) = a.band.range();
                // Substituted annotations may have fewer refs than the
                // band floor, but never more than its ceiling.
                assert!(a.ideal.len() <= hi);
                if a.annotation.size_bytes() > 60 {
                    assert!(a.ideal.len() >= lo.min(a.ideal.len()));
                }
            }
        }
    }

    #[test]
    fn annotation_text_embeds_every_reference() {
        let b = bundle();
        let sets = build_workload(&b, &WorkloadSpec::default(), 3);
        for set in &sets {
            for a in &set.annotations {
                for t in &a.ideal {
                    let tuple = b.db.get(*t).unwrap();
                    let key = tuple.key().unwrap().render();
                    let named = ["name", "pname"].iter().any(|col| {
                        tuple
                            .get_by_name(col)
                            .map(|v| {
                                let n = v.render();
                                !n.is_empty() && a.annotation.text.contains(&n)
                            })
                            .unwrap_or(false)
                    });
                    assert!(
                        a.annotation.text.contains(&key) || named,
                        "reference to {key} missing in: {}",
                        a.annotation.text
                    );
                }
            }
        }
    }

    #[test]
    fn workload_deterministic() {
        let b = bundle();
        let s1 = build_workload(&b, &WorkloadSpec::default(), 9);
        let s2 = build_workload(&b, &WorkloadSpec::default(), 9);
        for (a, b) in s1.iter().zip(&s2) {
            for (x, y) in a.annotations.iter().zip(&b.annotations) {
                assert_eq!(x.annotation.text, y.annotation.text);
                assert_eq!(x.ideal, y.ideal);
            }
        }
    }

    #[test]
    fn alice_comment_references_two_genes() {
        let b = bundle();
        let (ann, ideal) = alice_comment(&b);
        assert_eq!(ideal.len(), 2);
        assert!(ann.text.contains("JW0001"));
    }
}

//! English filler text for publication abstracts.
//!
//! The filler vocabulary deliberately mixes neutral words with words that
//! *could* be mistaken for references (capitalized sentence starts,
//! shape-alike tokens) so the ε-threshold experiments have realistic noise
//! to discriminate.

use rand::rngs::StdRng;
use rand::Rng;

/// Neutral scientific filler words (lowercase; none matches the gene/
/// protein syntactic patterns).
const FILLER: &[&str] = &[
    "we",
    "observed",
    "that",
    "expression",
    "levels",
    "increased",
    "during",
    "stress",
    "response",
    "conditions",
    "suggesting",
    "regulatory",
    "interaction",
    "between",
    "pathways",
    "results",
    "indicate",
    "significant",
    "correlation",
    "under",
    "heat",
    "shock",
    "treatment",
    "analysis",
    "revealed",
    "binding",
    "affinity",
    "changes",
    "measured",
    "samples",
    "cultures",
    "growth",
    "phase",
    "experiments",
    "showed",
    "consistent",
    "patterns",
    "across",
    "replicates",
    "data",
    "support",
    "hypothesis",
    "mechanism",
    "remains",
    "unclear",
    "further",
    "study",
    "required",
    "transcription",
    "regulation",
    "membrane",
    "localization",
    "activity",
    "decreased",
    "mutant",
    "strains",
    "exhibited",
    "phenotype",
    "wild",
    "type",
    "comparison",
    "control",
    "conditions",
    "induced",
    "repressed",
    "upstream",
    "downstream",
    "promoter",
    "region",
    "sequence",
    "conserved",
    "domains",
    "structural",
    "functional",
];

/// Words that shape-match identifier-like tokens — the controlled
/// false-positive source for the ε experiments (e.g. `AB12` has the same
/// character-class shape as a sampled protein id `P00042`: letters then
/// digits).
const CONFUSERS: &[&str] = &["TM4", "QX99", "pH7", "CO2", "Fig3", "OD600"];

/// Append `n` filler words to `out`, roughly one in `confuser_rate` being
/// an identifier-shaped confuser (0 disables confusers).
pub fn push_filler(rng: &mut StdRng, out: &mut String, n: usize, confuser_rate: usize) {
    for _ in 0..n {
        if !out.is_empty() && !out.ends_with(' ') {
            out.push(' ');
        }
        if confuser_rate > 0 && rng.gen_range(0..confuser_rate) == 0 {
            out.push_str(CONFUSERS[rng.gen_range(0..CONFUSERS.len())]);
        } else {
            out.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
        }
    }
}

/// A filler sentence of about `words` words.
pub fn filler_sentence(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    push_filler(rng, &mut s, words, 0);
    s.push('.');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn filler_is_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(filler_sentence(&mut a, 10), filler_sentence(&mut b, 10));
    }

    #[test]
    fn filler_words_do_not_match_identifier_patterns() {
        let gid = nebula_core::Pattern::compile("JW[0-9]{4}").unwrap();
        let name = nebula_core::Pattern::compile("[a-z]{3}[A-Z]").unwrap();
        for w in FILLER {
            assert!(!gid.matches(w), "{w}");
            assert!(!name.matches(w), "{w}");
        }
    }

    #[test]
    fn confusers_appear_at_requested_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = String::new();
        push_filler(&mut rng, &mut s, 500, 5);
        let confused = s.split_whitespace().filter(|w| CONFUSERS.contains(w)).count();
        assert!(confused > 50, "confusers present: {confused}");
        let mut clean = String::new();
        push_filler(&mut rng, &mut clean, 500, 0);
        assert_eq!(clean.split_whitespace().filter(|w| CONFUSERS.contains(w)).count(), 0);
    }

    #[test]
    fn word_count_approximate() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = filler_sentence(&mut rng, 20);
        assert_eq!(s.split_whitespace().count(), 20);
    }
}

//! Deterministic generators for biological identifiers.

use rand::rngs::StdRng;
use rand::Rng;

/// Gene id for index `i`: `JW0000`–`JW9999` (the paper's
/// `Gene.ID ~ JW[0-9]{4}` pattern). Panics beyond 10 000 genes.
pub fn gene_id(i: usize) -> String {
    assert!(i < 10_000, "gene id space exhausted (JW[0-9]{{4}})");
    format!("JW{i:04}")
}

/// Gene name for index `i`: three lowercase letters + one uppercase (the
/// paper's `[a-z]{3}[A-Z]` pattern), unique per index.
pub fn gene_name(i: usize) -> String {
    let letters = |n: usize| (b'a' + (n % 26) as u8) as char;
    let upper = (b'A' + ((i / (26 * 26 * 26)) % 26) as u8) as char;
    format!(
        "{}{}{}{}",
        letters(i % 26),
        letters((i / 26) % 26),
        letters((i / (26 * 26)) % 26),
        upper
    )
}

/// Protein id for index `i`: `P00000`–`P99999`.
pub fn protein_id(i: usize) -> String {
    assert!(i < 100_000, "protein id space exhausted");
    format!("P{i:05}")
}

/// Protein-name stems used to build readable protein names.
const PROTEIN_STEMS: &[&str] = &[
    "Actin",
    "Kinase",
    "Ligase",
    "Helicase",
    "Polymerase",
    "Chaperone",
    "Synthase",
    "Reductase",
    "Oxidase",
    "Transferase",
    "Permease",
    "Isomerase",
    "Hydrolase",
    "Mutase",
    "Cyclase",
    "Esterase",
];

/// Protein name for index `i`, e.g. `G-Actin`, `B-Kinase`; names repeat
/// across proteins (realistic — names alone are ambiguous, which is why
/// `ConceptRefs` pairs `PName` with `PType`).
pub fn protein_name(i: usize) -> String {
    let prefix = (b'A' + ((i / PROTEIN_STEMS.len()) % 26) as u8) as char;
    format!("{}-{}", prefix, PROTEIN_STEMS[i % PROTEIN_STEMS.len()])
}

/// The protein-type controlled vocabulary (stored as a NebulaMeta
/// ontology).
pub const PROTEIN_TYPES: &[&str] =
    &["enzyme", "receptor", "structural", "transport", "signaling", "regulatory"];

/// Protein type for index `i`.
pub fn protein_type(i: usize) -> &'static str {
    PROTEIN_TYPES[i % PROTEIN_TYPES.len()]
}

/// Gene family label: `F1`–`F{n}`.
pub fn family(i: usize, families: usize) -> String {
    format!("F{}", 1 + i % families.max(1))
}

/// A plausible nucleotide sequence of the given length.
pub fn sequence(rng: &mut StdRng, len: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gene_ids_match_pattern_and_are_unique() {
        let p = nebula_core::Pattern::compile("JW[0-9]{4}").unwrap();
        let ids: Vec<String> = (0..100).map(gene_id).collect();
        assert!(ids.iter().all(|id| p.matches(id)));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn gene_id_space_bounded() {
        gene_id(10_000);
    }

    #[test]
    fn gene_names_match_pattern_and_are_unique_in_range() {
        let p = nebula_core::Pattern::compile("[a-z]{3}[A-Z]").unwrap();
        let names: Vec<String> = (0..5000).map(gene_name).collect();
        assert!(names.iter().all(|n| p.matches(n)));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn protein_ids_unique() {
        assert_eq!(protein_id(0), "P00000");
        assert_eq!(protein_id(42), "P00042");
        assert_ne!(protein_id(1), protein_id(2));
    }

    #[test]
    fn protein_names_cycle_stems() {
        assert!(protein_name(0).ends_with("Actin"));
        assert!(protein_name(0).contains('-'));
        // Names repeat at stem-cycle boundaries with different prefixes.
        assert_ne!(protein_name(0), protein_name(PROTEIN_STEMS.len()));
    }

    #[test]
    fn families_bounded() {
        for i in 0..50 {
            let f = family(i, 6);
            let n: usize = f[1..].parse().unwrap();
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn sequences_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(sequence(&mut a, 32), sequence(&mut b, 32));
        assert!(sequence(&mut a, 16).chars().all(|c| "ACGT".contains(c)));
    }
}

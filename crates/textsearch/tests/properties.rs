//! Property-based tests for the keyword-search engine.

use proptest::prelude::*;
use relstore::{DataType, Database, TableSchema, Value};
use textsearch::{ExecutionMode, KeywordQuery, KeywordSearch, SearchOptions};

/// Random single-table database of short text rows.
fn build_db(rows: &[String]) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("item")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key("id")
            .build()
            .unwrap(),
    )
    .unwrap();
    for (i, body) in rows.iter().enumerate() {
        db.insert("item", vec![Value::Int(i as i64), Value::text(body.clone())]).unwrap();
    }
    db
}

proptest! {
    /// Soundness: every hit actually contains at least one query token
    /// (hits come from ContainsToken predicates over the query's tokens).
    #[test]
    fn hits_contain_some_query_token(
        rows in proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,3}", 1..15),
        query in "[a-d]{1,3}",
    ) {
        let db = build_db(&rows);
        let engine = KeywordSearch::new(SearchOptions {
            min_confidence: 0.0,
            ..Default::default()
        });
        let hits = engine.search(&KeywordQuery::new([query.clone()]), &db).unwrap();
        for h in hits {
            let tuple = db.get(h.tuple).unwrap();
            let body = tuple.get_by_name("body").unwrap().render();
            prop_assert!(
                body.split_whitespace().any(|w| w == query),
                "hit `{body}` lacks token `{query}`"
            );
            prop_assert!(h.confidence > 0.0 && h.confidence <= 1.0);
        }
    }

    /// Completeness for unique tokens: a token occurring in exactly one
    /// row is always found with that row first.
    #[test]
    fn unique_token_always_found(
        mut rows in proptest::collection::vec("[a-c]{1,3}( [a-c]{1,3}){0,2}", 1..10),
    ) {
        // Inject a guaranteed-unique token into one row.
        rows[0] = format!("{} zqx", rows[0]);
        let db = build_db(&rows);
        let engine = KeywordSearch::default();
        let hits = engine.search(&KeywordQuery::new(["zqx"]), &db).unwrap();
        prop_assert_eq!(hits.len(), 1);
        let body = db.get(hits[0].tuple).unwrap().get_by_name("body").unwrap().render();
        prop_assert!(body.contains("zqx"));
    }

    /// Shared and isolated group execution return identical hit sets for
    /// arbitrary query groups.
    #[test]
    fn sharing_preserves_semantics(
        rows in proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,3}", 1..12),
        queries in proptest::collection::vec("[a-d]{1,3}", 1..6),
    ) {
        let db = build_db(&rows);
        let engine = KeywordSearch::new(SearchOptions {
            min_confidence: 0.0,
            ..Default::default()
        });
        let group: Vec<KeywordQuery> =
            queries.iter().map(|q| KeywordQuery::new([q.clone()])).collect();
        let (shared, _) = engine.search_group(&group, &db, ExecutionMode::Shared).unwrap();
        let (isolated, _) = engine.search_group(&group, &db, ExecutionMode::Isolated).unwrap();
        prop_assert_eq!(shared.len(), isolated.len());
        for (s, i) in shared.iter().zip(&isolated) {
            let st: Vec<_> = s.iter().map(|h| h.tuple).collect();
            let it: Vec<_> = i.iter().map(|h| h.tuple).collect();
            prop_assert_eq!(st, it);
        }
    }

    /// Raising the confidence floor can only shrink the answer.
    #[test]
    fn min_confidence_monotone(
        rows in proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,3}", 1..12),
        query in "[a-d]{1,3}",
        floor in 0.0f64..=1.0,
    ) {
        let db = build_db(&rows);
        let loose = KeywordSearch::new(SearchOptions { min_confidence: 0.0, ..Default::default() });
        let strict = KeywordSearch::new(SearchOptions { min_confidence: floor, ..Default::default() });
        let q = KeywordQuery::new([query]);
        let all = loose.search(&q, &db).unwrap();
        let some = strict.search(&q, &db).unwrap();
        prop_assert!(some.len() <= all.len());
        let all_set: std::collections::HashSet<_> = all.iter().map(|h| h.tuple).collect();
        for h in some {
            prop_assert!(all_set.contains(&h.tuple));
        }
    }
}

//! The naive baseline (paper §4): feed the *entire annotation* to keyword
//! search as one query.
//!
//! Faithful to how the paper's underlying technique would behave: every
//! non-stopword token becomes a keyword, every keyword maps to **all**
//! `(table, column)` pairs whose cells contain it (no selectivity
//! damping, no confidence floor — those are Nebula-side optimizations the
//! naive baseline does not have), and each mapping compiles to a SQL
//! query that actually executes and materializes its answer tuples. This
//! is exactly the baseline the paper shows to be impractical: common
//! words hit enormous posting lists, so the work done and the result size
//! both explode with annotation length and database size.

use crate::error::SearchError;
use crate::mapping::value_weight;
use crate::search::{SearchHit, SearchStats};
use crate::token::{is_stopword, split_words};
use relstore::schema::{ColumnId, TableId};
use relstore::{ConjunctiveQuery, Database, Predicate, TupleId};
use std::collections::HashMap;

/// Execute the naive whole-annotation search. Returns hits sorted by
/// descending confidence plus work counters (`tuples_inspected` counts
/// tuples the generated queries materialized). Governed causes — a budget
/// trip or an injected fault — abort the search; per-query store errors
/// are skipped, as the naive engine has no schema knowledge to react with.
pub fn naive_search(
    db: &Database,
    text: &str,
) -> Result<(Vec<SearchHit>, SearchStats), SearchError> {
    let mut stats = SearchStats { configurations: 1, ..Default::default() };
    let mut conf: HashMap<TupleId, f64> = HashMap::new();

    for word in split_words(text) {
        if is_stopword(&word) {
            continue;
        }
        // All (table, column) pairs containing the token — the naive
        // engine considers every mapping meaningful.
        let postings = db.inverted_index().lookup(&word);
        if postings.is_empty() {
            continue;
        }
        let mut pair_df: HashMap<(TableId, ColumnId), usize> = HashMap::new();
        for p in postings.iter() {
            *pair_df.entry((p.table, p.column)).or_insert(0) += 1;
        }
        for ((table, column), df) in pair_df {
            let query = ConjunctiveQuery::scan(table)
                .with_predicate(Predicate::ContainsToken(column, word.clone()));
            let result = match query.execute(db) {
                Ok(result) => result,
                Err(
                    e @ (relstore::Error::BudgetExceeded(_) | relstore::Error::FaultInjected(_)),
                ) => {
                    return Err(e.into());
                }
                Err(_) => continue,
            };
            stats.merge(SearchStats {
                configurations: 0,
                compiled_queries: 1,
                tuples_inspected: result.inspected,
            });
            let w = value_weight(df);
            for tid in result.tuples {
                *conf.entry(tid).or_insert(0.0) += w;
            }
        }
    }

    let max = conf.values().copied().fold(0.0_f64, f64::max);
    let mut hits: Vec<SearchHit> = conf
        .into_iter()
        .map(|(tuple, c)| SearchHit { tuple, confidence: if max > 0.0 { c / max } else { 0.0 } })
        .collect();
    hits.sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then(a.tuple.cmp(&b.tuple)));
    stats.publish();
    Ok((hits, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .column("notes", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..20 {
            db.insert(
                "gene",
                vec![
                    Value::text(format!("JW{i:04}")),
                    Value::text(format!("gn{i}A")),
                    Value::text("common shared description words here"),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn common_words_flood_the_answer() {
        let db = db();
        let (hits, stats) = naive_search(&db, "the common description mentions gn3A").unwrap();
        // Every row matches through the shared description words.
        assert_eq!(hits.len(), 20);
        // But the row actually referenced ranks first.
        let top = db.get(hits[0].tuple).unwrap();
        assert_eq!(top.get_by_name("name"), Some(&Value::text("gn3A")));
        // "common" and "description" each materialize all 20 rows,
        // "gn3A" one.
        assert!(stats.tuples_inspected >= 41, "queries executed in full");
        assert!(stats.compiled_queries >= 3);
    }

    #[test]
    fn stopwords_skipped() {
        let db = db();
        let (_, stats) = naive_search(&db, "the of and with").unwrap();
        assert_eq!(stats.compiled_queries, 0);
        assert_eq!(stats.tuples_inspected, 0);
    }

    #[test]
    fn empty_text_empty_result() {
        let db = db();
        let (hits, _) = naive_search(&db, "").unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn confidences_normalized() {
        let db = db();
        let (hits, _) = naive_search(&db, "common gn3A gn5A").unwrap();
        assert!(hits.iter().all(|h| h.confidence > 0.0 && h.confidence <= 1.0));
        assert_eq!(hits[0].confidence, 1.0);
    }
}

//! # textsearch — keyword search over relational databases
//!
//! A from-scratch implementation of the *metadata approach* to keyword
//! search over RDBMSs (modeled on Bergamaschi et al., SIGMOD'11 — the
//! technique the Nebula paper plugs in as its black-box search component):
//!
//! 1. each input keyword is weighted against possible **mappings** — a
//!    table name, a column name, or a database value ([`mapping`]);
//! 2. consistent mapping choices are combined into **configurations**, each
//!    capturing one possible semantics of the query ([`config`]);
//! 3. every configuration is compiled into one or more conjunctive
//!    ("SQL") queries with a confidence weight ([`compile`]);
//! 4. the queries execute over the store's indexes, and answer tuples
//!    inherit their query's confidence ([`search`]).
//!
//! The crate also implements **multi-query shared execution**
//! ([`shared`]): when several keyword queries generated from the same
//! annotation are executed as a group, their compiled conjunctive queries
//! share predicate evaluations through a memo table — the optimization the
//! Nebula paper reports as a 40–50% speedup (Figure 13).
//!
//! ```
//! use relstore::{Database, TableSchema, DataType, Value};
//! use textsearch::{KeywordSearch, KeywordQuery};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::builder("gene")
//!     .column("gid", DataType::Text)
//!     .column("name", DataType::Text)
//!     .primary_key("gid").build().unwrap()).unwrap();
//! db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
//!
//! let engine = KeywordSearch::new(Default::default());
//! let hits = engine.search(&KeywordQuery::new(["gene", "grpC"]), &db).unwrap();
//! assert_eq!(hits.len(), 1);
//! assert!(hits[0].confidence > 0.0);
//! ```

pub mod backend;
pub mod compile;
pub mod config;
pub mod error;
pub mod mapping;
pub mod naive;
pub mod search;
pub mod shared;
pub mod token;

pub use backend::{SearchBackend, TfIdfSearch};
pub use compile::{compile_configuration, CompiledQuery};
pub use config::{Configuration, ConfigurationGenerator};
pub use error::SearchError;
pub use mapping::{Mapping, MappingKind, SchemaVocabulary};
pub use naive::naive_search;
pub use search::{KeywordQuery, KeywordSearch, SearchHit, SearchOptions, SearchStats};
pub use shared::{ExecutionMode, SharedExecutor};
pub use token::{is_stopword, normalize, singularize};

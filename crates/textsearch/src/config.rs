//! Configurations: consistent interpretations of a keyword query
//! (step 2 of the metadata approach).
//!
//! A *configuration* assigns each keyword at most one [`Mapping`], giving
//! one possible semantics of the whole query. The space of configurations
//! is exponential, so generation is a bounded beam search over per-keyword
//! mapping candidates ranked by weight; a configuration's weight is the
//! geometric mean of its mappings' weights (keywords without any mapping
//! contribute a fixed *unmapped penalty*).

use crate::mapping::{match_values, Mapping, MappingKind, SchemaVocabulary};
use crate::token::{is_stopword, normalize};
use relstore::Database;

/// Weight contributed by a keyword no mapping could be found for.
const UNMAPPED_PENALTY: f64 = 0.05;

/// Cache of per-keyword mapping candidates, shared across the compilation
/// of a whole query *group*. Keyed by the normalized keyword; the stored
/// mappings carry `keyword = 0` and are re-indexed on retrieval.
#[derive(Debug, Default)]
pub struct MappingCache {
    entries: std::collections::HashMap<String, Vec<Mapping>>,
    /// Cache hits (for tests and work accounting).
    pub hits: usize,
    /// Cache misses.
    pub misses: usize,
}

impl MappingCache {
    /// Candidates for `keyword` at position `index`, computed once per
    /// distinct normalized keyword.
    pub fn candidates(
        &mut self,
        gen: &ConfigurationGenerator,
        db: &Database,
        vocab: &SchemaVocabulary,
        index: usize,
        keyword: &str,
    ) -> Vec<Mapping> {
        let word = normalize(keyword);
        if let Some(cached) = self.entries.get(&word) {
            self.hits += 1;
            return cached.iter().map(|m| Mapping { keyword: index, ..m.clone() }).collect();
        }
        self.misses += 1;
        let computed = gen.keyword_candidates(db, vocab, 0, keyword);
        self.entries.insert(word, computed.clone());
        computed.into_iter().map(|m| Mapping { keyword: index, ..m }).collect()
    }
}

/// One consistent interpretation of the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    /// Chosen mappings (at most one per keyword; keywords may be absent).
    pub mappings: Vec<Mapping>,
    /// Overall confidence of this interpretation, in `(0, 1]`.
    pub weight: f64,
}

/// Bounded generator of ranked configurations.
#[derive(Debug, Clone)]
pub struct ConfigurationGenerator {
    /// Max mapping candidates kept per keyword.
    pub per_keyword_limit: usize,
    /// Max configurations produced (beam width).
    pub beam_width: usize,
    /// Drop keywords that are stopwords before mapping.
    pub skip_stopwords: bool,
}

impl Default for ConfigurationGenerator {
    fn default() -> Self {
        ConfigurationGenerator { per_keyword_limit: 4, beam_width: 8, skip_stopwords: true }
    }
}

impl ConfigurationGenerator {
    /// All scored mapping candidates for one keyword.
    pub fn keyword_candidates(
        &self,
        db: &Database,
        vocab: &SchemaVocabulary,
        index: usize,
        keyword: &str,
    ) -> Vec<Mapping> {
        let word = normalize(keyword);
        if word.is_empty() || (self.skip_stopwords && is_stopword(&word)) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (tid, w) in vocab.match_tables(db, &word) {
            out.push(Mapping { keyword: index, kind: MappingKind::Table(tid), weight: w });
        }
        for (tid, cid, w) in vocab.match_columns(db, &word) {
            out.push(Mapping { keyword: index, kind: MappingKind::Column(tid, cid), weight: w });
        }
        for (tid, cid, w) in match_values(db, &word) {
            out.push(Mapping { keyword: index, kind: MappingKind::Value(tid, cid), weight: w });
        }
        out.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        out.truncate(self.per_keyword_limit);
        out
    }

    /// Generate ranked configurations for a keyword list.
    pub fn generate(
        &self,
        db: &Database,
        vocab: &SchemaVocabulary,
        keywords: &[String],
    ) -> Vec<Configuration> {
        self.generate_cached(db, vocab, keywords, &mut MappingCache::default())
    }

    /// [`ConfigurationGenerator::generate`] with a per-*group* mapping
    /// cache: when many keyword queries generated from one annotation are
    /// compiled together, shared keywords (concept words like `gene`
    /// recur in every query) are mapped once — part of the shared
    /// multi-query execution of the paper's §6.
    pub fn generate_cached(
        &self,
        db: &Database,
        vocab: &SchemaVocabulary,
        keywords: &[String],
        cache: &mut MappingCache,
    ) -> Vec<Configuration> {
        // Beam of (mappings, product-of-weights, mapped-count).
        let mut beam: Vec<(Vec<Mapping>, f64, usize)> = vec![(Vec::new(), 1.0, 0)];
        for (i, kw) in keywords.iter().enumerate() {
            let candidates = cache.candidates(self, db, vocab, i, kw);
            if candidates.is_empty() {
                // Keyword stays unmapped in every beam entry.
                for entry in &mut beam {
                    entry.1 *= UNMAPPED_PENALTY.max(1e-9);
                    entry.2 += 1;
                }
                continue;
            }
            let mut next = Vec::with_capacity(beam.len() * candidates.len());
            for (mappings, product, count) in &beam {
                for cand in &candidates {
                    let mut m = mappings.clone();
                    m.push(cand.clone());
                    next.push((m, product * cand.weight, count + 1));
                }
            }
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(self.beam_width);
            beam = next;
        }
        beam.into_iter()
            .filter(|(m, ..)| !m.is_empty())
            .map(|(mappings, product, count)| Configuration {
                mappings,
                weight: product.powf(1.0 / count.max(1) as f64),
            })
            .collect()
    }
}

impl Configuration {
    /// Mappings of a particular kind.
    pub fn value_mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter().filter(|m| matches!(m.kind, MappingKind::Value(..)))
    }

    /// Table-name mappings.
    pub fn table_mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter().filter(|m| matches!(m.kind, MappingKind::Table(_)))
    }

    /// Column-name mappings.
    pub fn column_mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter().filter(|m| matches!(m.kind, MappingKind::Column(..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        db.insert("gene", vec![Value::text("JW0014"), Value::text("groP")]).unwrap();
        db
    }

    #[test]
    fn candidates_ranked_and_capped() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator { per_keyword_limit: 2, ..Default::default() };
        let c = gen.keyword_candidates(&db, &vocab, 0, "gene");
        assert!(!c.is_empty());
        assert!(c.len() <= 2);
        assert!(c.windows(2).all(|w| w[0].weight >= w[1].weight));
    }

    #[test]
    fn stopwords_produce_no_candidates() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        assert!(gen.keyword_candidates(&db, &vocab, 0, "the").is_empty());
    }

    #[test]
    fn generate_interprets_gene_grpc() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        let configs = gen.generate(&db, &vocab, &["gene".into(), "grpC".into()]);
        assert!(!configs.is_empty());
        let top = &configs[0];
        // Best interpretation: "gene" names the table, "grpC" is a value.
        assert!(top.table_mappings().count() == 1);
        assert!(top.value_mappings().count() == 1);
        assert!(top.weight > 0.5);
        // Ranked descending.
        assert!(configs.windows(2).all(|w| w[0].weight >= w[1].weight));
    }

    #[test]
    fn unmapped_keywords_penalize_weight() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        let clean = gen.generate(&db, &vocab, &["grpc".into()]);
        let noisy = gen.generate(&db, &vocab, &["grpc".into(), "xyzzy".into()]);
        assert!(noisy[0].weight < clean[0].weight);
    }

    #[test]
    fn all_stopword_query_yields_nothing() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        assert!(gen.generate(&db, &vocab, &["the".into(), "and".into()]).is_empty());
    }

    #[test]
    fn beam_width_bounds_output() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator { beam_width: 3, ..Default::default() };
        let configs = gen.generate(&db, &vocab, &["gene".into(), "gid".into(), "jw0013".into()]);
        assert!(configs.len() <= 3);
    }

    #[test]
    fn mapping_cache_reuses_keyword_work() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        let mut cache = MappingCache::default();
        // "gene" appears in both queries — mapped once.
        let q1 = vec!["gene".to_string(), "grpc".to_string()];
        let q2 = vec!["gene".to_string(), "grop".to_string()];
        let c1 = gen.generate_cached(&db, &vocab, &q1, &mut cache);
        let c2 = gen.generate_cached(&db, &vocab, &q2, &mut cache);
        assert!(!c1.is_empty() && !c2.is_empty());
        assert_eq!(cache.misses, 3, "gene, grpc, grop computed once each");
        assert_eq!(cache.hits, 1, "the repeated `gene` hits the cache");
        // Cached results are identical to uncached ones.
        let fresh = gen.generate(&db, &vocab, &q2);
        assert_eq!(c2, fresh);
    }

    #[test]
    fn cached_mappings_carry_correct_keyword_index() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        let mut cache = MappingCache::default();
        // First query: "grpc" at position 0; second: at position 1.
        let _ = gen.generate_cached(&db, &vocab, &["grpc".into()], &mut cache);
        let configs = gen.generate_cached(&db, &vocab, &["gene".into(), "grpc".into()], &mut cache);
        let top = &configs[0];
        let value = top.value_mappings().next().unwrap();
        assert_eq!(value.keyword, 1, "re-indexed on retrieval");
    }
}

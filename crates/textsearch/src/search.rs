//! The keyword-search facade: keywords in, `(tuple, confidence)` out.

use crate::compile::{compile_configuration, CompiledQuery};
use crate::config::ConfigurationGenerator;
use crate::error::SearchError;
use crate::mapping::SchemaVocabulary;
use crate::shared::{ExecutionMode, SharedExecutor};
use relstore::{Database, TupleId};
use std::collections::HashMap;

/// A keyword query: an ordered bag of keywords, optionally carrying the
/// weight Nebula's query-generation phase assigned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordQuery {
    /// The query keywords (raw; normalization happens inside the engine).
    pub keywords: Vec<String>,
    /// External weight in `(0, 1]` (defaults to 1.0); the caller multiplies
    /// hit confidences by it (paper §6.1, Line 4).
    pub weight: f64,
}

impl KeywordQuery {
    /// Query from any iterable of string-likes, weight 1.0.
    pub fn new<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        KeywordQuery { keywords: keywords.into_iter().map(Into::into).collect(), weight: 1.0 }
    }

    /// Attach a weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// One answer tuple with the engine's confidence it matches the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching tuple.
    pub tuple: TupleId,
    /// Internal confidence in `(0, 1]` (before any caller-side weighting).
    pub confidence: f64,
}

/// Tunables of the search engine.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Configuration generation bounds.
    pub generator: ConfigurationGenerator,
    /// Schema vocabulary (equivalent names / synonyms).
    pub vocab: SchemaVocabulary,
    /// Cap on returned hits (highest confidence first); `None` = unlimited.
    pub max_hits: Option<usize>,
    /// Compiled queries below this confidence are not executed at all —
    /// they encode unselective interpretations (e.g. a concept word
    /// matching thousands of free-text cells) whose answers would be
    /// noise.
    pub min_confidence: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            generator: ConfigurationGenerator::default(),
            vocab: SchemaVocabulary::default(),
            max_hits: None,
            min_confidence: 0.15,
        }
    }
}

/// Work counters for one search call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Configurations generated.
    pub configurations: usize,
    /// Conjunctive queries compiled and executed.
    pub compiled_queries: usize,
    /// Tuples the executor inspected.
    pub tuples_inspected: usize,
}

impl SearchStats {
    /// Fold another call's counters into this one (saturating — counters
    /// never wrap, they pin at `usize::MAX`).
    pub fn merge(&mut self, other: SearchStats) {
        self.configurations = self.configurations.saturating_add(other.configurations);
        self.compiled_queries = self.compiled_queries.saturating_add(other.compiled_queries);
        self.tuples_inspected = self.tuples_inspected.saturating_add(other.tuples_inspected);
    }

    /// Publish these counters to the global telemetry registry (one call
    /// per completed search, so enabling telemetry mid-run never double
    /// counts).
    pub(crate) fn publish(&self) {
        nebula_obs::counter_add("textsearch.configurations", self.configurations as u64);
        nebula_obs::counter_add("textsearch.compiled_queries", self.compiled_queries as u64);
        nebula_obs::counter_add("textsearch.tuples_inspected", self.tuples_inspected as u64);
    }
}

/// The keyword-search engine (stateless between calls; all state lives in
/// the database's indexes).
#[derive(Debug, Clone, Default)]
pub struct KeywordSearch {
    options: SearchOptions,
}

impl KeywordSearch {
    /// Engine with the given options.
    pub fn new(options: SearchOptions) -> Self {
        KeywordSearch { options }
    }

    /// Access the engine's options.
    pub fn options(&self) -> &SearchOptions {
        &self.options
    }

    /// Search, returning hits sorted by descending confidence.
    pub fn search(
        &self,
        query: &KeywordQuery,
        db: &Database,
    ) -> Result<Vec<SearchHit>, SearchError> {
        Ok(self.search_with_stats(query, db)?.0)
    }

    /// Search and report work counters.
    pub fn search_with_stats(
        &self,
        query: &KeywordQuery,
        db: &Database,
    ) -> Result<(Vec<SearchHit>, SearchStats), SearchError> {
        let mut cache = crate::config::MappingCache::default();
        let (compiled, configurations) = self.compile_cached(query, db, &mut cache);
        let mut stats =
            SearchStats { configurations, compiled_queries: compiled.len(), tuples_inspected: 0 };
        let mut exec = SharedExecutor::new(db);
        let hits = self.run_compiled(&compiled, &mut exec, &mut stats)?;
        stats.publish();
        Ok((hits, stats))
    }

    /// Compile a keyword query into its conjunctive queries.
    pub fn compile(&self, query: &KeywordQuery, db: &Database) -> Vec<CompiledQuery> {
        self.compile_cached(query, db, &mut crate::config::MappingCache::default()).0
    }

    /// Compile through a shared per-group mapping cache. Returns the
    /// compiled queries and the number of configurations generated.
    fn compile_cached(
        &self,
        query: &KeywordQuery,
        db: &Database,
        cache: &mut crate::config::MappingCache,
    ) -> (Vec<CompiledQuery>, usize) {
        let mut configs =
            self.options.generator.generate_cached(db, &self.options.vocab, &query.keywords, cache);
        // Budget governance: only compile as many configurations as the
        // installed budget admits, keeping the highest-scoring ones. When
        // nothing is truncated the original order is untouched, so the
        // ungoverned path stays byte-identical.
        let allowed = nebula_govern::admit(nebula_govern::Resource::Configurations, configs.len());
        if allowed < configs.len() {
            configs.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            configs.truncate(allowed);
        }
        let mut out = Vec::new();
        for config in &configs {
            out.extend(compile_configuration(db, config, &query.keywords));
        }
        (out, configs.len())
    }

    /// Execute pre-compiled queries through the given executor, merging
    /// per-tuple confidences by maximum.
    fn run_compiled(
        &self,
        compiled: &[CompiledQuery],
        exec: &mut SharedExecutor<'_>,
        stats: &mut SearchStats,
    ) -> Result<Vec<SearchHit>, SearchError> {
        let mut best: HashMap<TupleId, f64> = HashMap::new();
        for cq in compiled {
            if cq.confidence < self.options.min_confidence {
                continue;
            }
            let result = exec.execute(&cq.query)?;
            stats.merge(SearchStats {
                configurations: 0,
                compiled_queries: 0,
                tuples_inspected: result.inspected,
            });
            for tid in result.tuples {
                let entry = best.entry(tid).or_insert(0.0);
                if cq.confidence > *entry {
                    *entry = cq.confidence;
                }
            }
        }
        let mut hits: Vec<SearchHit> =
            best.into_iter().map(|(tuple, confidence)| SearchHit { tuple, confidence }).collect();
        hits.sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then(a.tuple.cmp(&b.tuple)));
        if let Some(cap) = self.options.max_hits {
            hits.truncate(cap);
        }
        Ok(hits)
    }

    /// Execute a *group* of keyword queries under the given execution mode
    /// (paper §6 shared-execution optimization; Figure 13). Returns one hit
    /// list per query, in order.
    pub fn search_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError> {
        let mut stats = SearchStats::default();
        let mut results = Vec::with_capacity(queries.len());
        match mode {
            ExecutionMode::Shared => {
                // Sharing spans both compilation (per-keyword mapping
                // cache — concept words recur in every query of the
                // group) and execution (predicate memo).
                let mut cache = crate::config::MappingCache::default();
                let mut exec = SharedExecutor::new(db);
                for q in queries {
                    let (compiled, configs) = self.compile_cached(q, db, &mut cache);
                    let mut q_stats = SearchStats {
                        configurations: configs,
                        compiled_queries: compiled.len(),
                        tuples_inspected: 0,
                    };
                    results.push(self.run_compiled(&compiled, &mut exec, &mut q_stats)?);
                    stats.merge(q_stats);
                }
            }
            ExecutionMode::Isolated => {
                for q in queries {
                    let mut cache = crate::config::MappingCache::default();
                    let mut exec = SharedExecutor::new(db);
                    let (compiled, configs) = self.compile_cached(q, db, &mut cache);
                    let mut q_stats = SearchStats {
                        configurations: configs,
                        compiled_queries: compiled.len(),
                        tuples_inspected: 0,
                    };
                    results.push(self.run_compiled(&compiled, &mut exec, &mut q_stats)?);
                    stats.merge(q_stats);
                }
            }
        }
        stats.publish();
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .column("family", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (gid, name, fam) in [
            ("JW0013", "grpC", "F1"),
            ("JW0014", "groP", "F6"),
            ("JW0019", "yaaB", "F3"),
            ("JW0012", "yaaI", "F1"),
        ] {
            db.insert("gene", vec![Value::text(gid), Value::text(name), Value::text(fam)]).unwrap();
        }
        db
    }

    #[test]
    fn unique_value_found_with_high_confidence() {
        let db = db();
        let engine = KeywordSearch::default();
        let hits = engine.search(&KeywordQuery::new(["gene", "JW0013"]), &db).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].confidence > 0.5);
        assert_eq!(db.get(hits[0].tuple).unwrap().get_by_name("gid"), Some(&Value::text("JW0013")));
    }

    #[test]
    fn shared_value_returns_all_holders() {
        let db = db();
        let engine = KeywordSearch::default();
        let hits = engine.search(&KeywordQuery::new(["F1"]), &db).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn no_match_returns_empty() {
        let db = db();
        let engine = KeywordSearch::default();
        assert!(engine.search(&KeywordQuery::new(["qqqq"]), &db).unwrap().is_empty());
    }

    #[test]
    fn hits_sorted_by_confidence_then_id() {
        let db = db();
        let engine = KeywordSearch::default();
        let hits = engine.search(&KeywordQuery::new(["gene", "F1", "yaaI"]), &db).unwrap();
        assert!(hits.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn max_hits_caps_output() {
        let db = db();
        let engine = KeywordSearch::new(SearchOptions { max_hits: Some(1), ..Default::default() });
        let hits = engine.search(&KeywordQuery::new(["F1"]), &db).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn stats_count_work() {
        let db = db();
        let engine = KeywordSearch::default();
        let (_, stats) =
            engine.search_with_stats(&KeywordQuery::new(["gene", "JW0013"]), &db).unwrap();
        assert!(stats.configurations >= 1);
        assert!(stats.compiled_queries >= 1);
        assert!(stats.tuples_inspected >= 1);
    }

    #[test]
    fn group_modes_agree_on_results() {
        let db = db();
        let engine = KeywordSearch::default();
        let queries = vec![
            KeywordQuery::new(["gene", "F1"]),
            KeywordQuery::new(["gene", "grpC"]),
            KeywordQuery::new(["gene", "F1"]),
        ];
        let (shared, _) = engine.search_group(&queries, &db, ExecutionMode::Shared).unwrap();
        let (isolated, _) = engine.search_group(&queries, &db, ExecutionMode::Isolated).unwrap();
        assert_eq!(shared.len(), 3);
        for (s, i) in shared.iter().zip(&isolated) {
            let st: Vec<TupleId> = s.iter().map(|h| h.tuple).collect();
            let it: Vec<TupleId> = i.iter().map(|h| h.tuple).collect();
            assert_eq!(st, it);
        }
    }

    #[test]
    fn query_weight_builder() {
        let q = KeywordQuery::new(["a"]).with_weight(0.4);
        assert_eq!(q.weight, 0.4);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = SearchStats { configurations: 1, compiled_queries: 2, tuples_inspected: 3 };
        a.merge(SearchStats { configurations: 10, compiled_queries: 20, tuples_inspected: 30 });
        assert_eq!(
            a,
            SearchStats { configurations: 11, compiled_queries: 22, tuples_inspected: 33 }
        );
    }

    #[test]
    fn stats_merge_saturates() {
        let mut a = SearchStats {
            configurations: usize::MAX - 1,
            compiled_queries: usize::MAX,
            tuples_inspected: 0,
        };
        a.merge(SearchStats { configurations: 5, compiled_queries: 1, tuples_inspected: 7 });
        assert_eq!(a.configurations, usize::MAX);
        assert_eq!(a.compiled_queries, usize::MAX);
        assert_eq!(a.tuples_inspected, 7);
    }
}

//! Compiling configurations into conjunctive ("SQL") queries
//! (step 3 of the metadata approach).
//!
//! Value mappings become `ContainsToken` predicates on their column
//! (multi-token keywords such as `G-Actin` contribute one predicate per
//! token); the mapped table of each group of value predicates becomes the
//! query's base table. Schema (table/column) mappings do not filter by
//! themselves — they *contextualize*: a table mapping consistent with the
//! values raises the query's confidence, and value groups on distinct
//! FK-adjacent tables are connected with join steps so each base tuple
//! must have a matching partner.
//!
//! A compiled query's confidence reflects its **joint selectivity**: the
//! expected number of matching rows under token independence. A query
//! whose predicates individually match thousands of rows but jointly pin
//! down a handful (the `PName & PType` combined reference of the paper's
//! ConceptRefs) is trusted accordingly.

use crate::config::Configuration;
use crate::mapping::{is_fk_column, value_weight, MappingKind};
use crate::token::normalize;
use relstore::index::tokenize;
use relstore::schema::{ColumnId, TableId};
use relstore::{ConjunctiveQuery, Database, JoinStep, Predicate};
use std::collections::BTreeMap;

/// Confidence multiplier when the configuration's table mapping agrees
/// with the base table of a compiled query.
const TABLE_CONTEXT_BOOST: f64 = 1.15;
/// Confidence multiplier when a column mapping agrees with a value
/// predicate's column.
const COLUMN_CONTEXT_BOOST: f64 = 1.1;

/// A conjunctive query with its confidence and provenance tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// The executable query.
    pub query: ConjunctiveQuery,
    /// Confidence this query captures the intended semantics, `(0, 1]`.
    pub confidence: f64,
    /// The normalized keyword tokens the query searches for (evidence).
    pub tokens: Vec<String>,
}

/// Document frequency of `token` within one `(table, column)` pair.
fn pair_df(db: &Database, table: TableId, column: ColumnId, token: &str) -> usize {
    db.inverted_index()
        .lookup(token)
        .iter()
        .filter(|p| p.table == table && p.column == column)
        .count()
}

/// Compile one configuration into zero or more queries.
///
/// `keywords` is the original keyword list the configuration's mapping
/// indexes refer to.
pub fn compile_configuration(
    db: &Database,
    config: &Configuration,
    keywords: &[String],
) -> Vec<CompiledQuery> {
    // Group value mappings by their table; each keyword expands to its
    // tokens.
    let mut groups: BTreeMap<TableId, Vec<(ColumnId, Vec<String>)>> = BTreeMap::new();
    for m in config.value_mappings() {
        if let MappingKind::Value(tid, cid) = m.kind {
            let tokens = tokenize(&normalize(&keywords[m.keyword]));
            if tokens.is_empty() {
                continue;
            }
            groups.entry(tid).or_default().push((cid, tokens));
        }
    }
    if groups.is_empty() {
        return Vec::new();
    }

    let mapped_tables: Vec<TableId> = config
        .table_mappings()
        .filter_map(|m| match m.kind {
            MappingKind::Table(t) => Some(t),
            _ => None,
        })
        .collect();
    let mapped_columns: Vec<(TableId, ColumnId)> = config
        .column_mappings()
        .filter_map(|m| match m.kind {
            MappingKind::Column(t, c) => Some((t, c)),
            _ => None,
        })
        .collect();

    let group_tables: Vec<TableId> = groups.keys().copied().collect();
    let mut out = Vec::new();
    for (base, members) in &groups {
        let rows = db.table(*base).map(|t| t.len()).unwrap_or(0).max(1);
        let mut q = ConjunctiveQuery::scan(*base);
        let mut tokens = Vec::new();
        // Joint expected matches under token independence.
        let mut expected = rows as f64;
        let mut fk_damp = 1.0;
        for (cid, kw_tokens) in members {
            if is_fk_column(db, *base, *cid) {
                fk_damp = 0.5;
            }
            for token in kw_tokens {
                q = q.with_predicate(Predicate::ContainsToken(*cid, token.clone()));
                tokens.push(token.clone());
                let df = pair_df(db, *base, *cid, token);
                expected *= df as f64 / rows as f64;
            }
        }
        let expected_rows = expected.ceil().max(if expected > 0.0 { 1.0 } else { 0.0 });
        let mut confidence = if expected_rows == 0.0 {
            0.0
        } else {
            let coverage = 1.0 - (expected_rows - 1.0) / rows as f64;
            value_weight(expected_rows as usize) * coverage.max(0.0) * fk_damp
        };
        for (cid, _) in members {
            if mapped_columns.contains(&(*base, *cid)) {
                confidence *= COLUMN_CONTEXT_BOOST;
            }
        }
        if mapped_tables.contains(base) {
            confidence *= TABLE_CONTEXT_BOOST;
        }
        // Join to other value groups when FK-adjacent: a base tuple only
        // qualifies if a related tuple matches the other group's values.
        for other in &group_tables {
            if other == base {
                continue;
            }
            let adjacent = db.catalog().neighbors(*base).contains(other);
            if adjacent {
                let join_preds: Vec<Predicate> = groups[other]
                    .iter()
                    .flat_map(|(cid, kw_tokens)| {
                        kw_tokens.iter().map(|t| Predicate::ContainsToken(*cid, t.clone()))
                    })
                    .collect();
                q = q.with_join(JoinStep { table: *other, predicates: join_preds });
            }
        }
        if confidence > 0.0 {
            out.push(CompiledQuery { query: q, confidence: confidence.min(1.0), tokens });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigurationGenerator;
    use crate::mapping::SchemaVocabulary;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .column("pname", DataType::Text)
                .column("ptype", DataType::Text)
                .column("gene_id", DataType::Text)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_foreign_key("protein", "gene_id", "gene").unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        db.insert("gene", vec![Value::text("JW0014"), Value::text("groP")]).unwrap();
        // Several same-named proteins with different types: the combined
        // PName & PType reference is what disambiguates.
        for (pid, pname, ptype, gene) in [
            ("P001", "G-Actin", "structural", "JW0013"),
            ("P002", "G-Actin", "enzyme", "JW0013"),
            ("P003", "B-Kinase", "enzyme", "JW0014"),
        ] {
            db.insert(
                "protein",
                vec![Value::text(pid), Value::text(pname), Value::text(ptype), Value::text(gene)],
            )
            .unwrap();
        }
        db
    }

    fn top_config(db: &Database, kws: &[&str]) -> (Configuration, Vec<String>) {
        let vocab = SchemaVocabulary::new();
        let gen = ConfigurationGenerator::default();
        let keywords: Vec<String> = kws.iter().map(|s| s.to_string()).collect();
        let configs = gen.generate(db, &vocab, &keywords);
        (configs[0].clone(), keywords)
    }

    #[test]
    fn value_only_config_compiles_to_single_query() {
        let db = db();
        let (config, keywords) = top_config(&db, &["grpc"]);
        let qs = compile_configuration(&db, &config, &keywords);
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].tokens, vec!["grpc"]);
        let r = qs[0].query.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 1);
    }

    #[test]
    fn hyphenated_keyword_expands_to_token_predicates() {
        let db = db();
        let (config, keywords) = top_config(&db, &["G-Actin"]);
        let qs = compile_configuration(&db, &config, &keywords);
        assert!(!qs.is_empty());
        let q = &qs[0];
        assert!(q.tokens.contains(&"g".to_string()));
        assert!(q.tokens.contains(&"actin".to_string()));
        let r = q.query.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 2, "both G-Actin proteins match");
    }

    #[test]
    fn joint_selectivity_rewards_combined_references() {
        let db = db();
        // Name alone matches 2 rows; name + type matches 1 — the combined
        // query must be at least as confident.
        let (loose_cfg, loose_kw) = top_config(&db, &["G-Actin"]);
        let loose = compile_configuration(&db, &loose_cfg, &loose_kw);
        let (tight_cfg, tight_kw) = top_config(&db, &["G-Actin", "structural"]);
        let tight = compile_configuration(&db, &tight_cfg, &tight_kw);
        let best = |v: &[CompiledQuery]| v.iter().map(|q| q.confidence).fold(0.0_f64, f64::max);
        assert!(best(&tight) >= best(&loose));
        // And it pins down exactly one protein.
        let top = tight.iter().max_by(|a, b| a.confidence.total_cmp(&b.confidence)).unwrap();
        assert_eq!(top.query.execute(&db).unwrap().tuples.len(), 1);
    }

    #[test]
    fn fk_column_hits_are_damped() {
        let db = db();
        // "JW0013" maps both to gene.gid (PK) and protein.gene_id (FK).
        let (config, keywords) = top_config(&db, &["JW0013"]);
        let qs = compile_configuration(&db, &config, &keywords);
        // The beam may keep either mapping; find queries per table.
        let gene_t = db.catalog().resolve("gene").unwrap();
        let all: Vec<CompiledQuery> = {
            let vocab = SchemaVocabulary::new();
            let gen = ConfigurationGenerator::default();
            gen.generate(&db, &vocab, &keywords)
                .iter()
                .flat_map(|c| compile_configuration(&db, c, &keywords))
                .collect()
        };
        let gene_conf = all
            .iter()
            .filter(|q| q.query.base == gene_t)
            .map(|q| q.confidence)
            .fold(0.0_f64, f64::max);
        let fk_conf = all
            .iter()
            .filter(|q| q.query.base != gene_t)
            .map(|q| q.confidence)
            .fold(0.0_f64, f64::max);
        assert!(gene_conf > fk_conf, "PK interpretation beats FK: {gene_conf} vs {fk_conf}");
        let _ = qs;
    }

    #[test]
    fn table_context_boosts_confidence() {
        // Use a non-unique value ("G-Actin", 2 rows) so the confidence is
        // below the cap and the boost is visible.
        let db = db();
        let (with_table, kws1) = top_config(&db, &["protein", "G-Actin"]);
        let q1 = compile_configuration(&db, &with_table, &kws1);
        let (without, kws2) = top_config(&db, &["G-Actin"]);
        let q2 = compile_configuration(&db, &without, &kws2);
        assert!(q1[0].confidence > q2[0].confidence);
    }

    #[test]
    fn values_in_two_adjacent_tables_produce_joined_queries() {
        let db = db();
        // "grpc" is a gene value; "kinase" a protein value; tables are
        // FK-adjacent so each compiled query joins to the other group.
        let (config, keywords) = top_config(&db, &["grpc", "B-Kinase"]);
        let qs = compile_configuration(&db, &config, &keywords);
        assert!(!qs.is_empty());
        for cq in &qs {
            if !cq.query.joins.is_empty() {
                let r = cq.query.execute(&db).unwrap();
                // grpC's gene (JW0013) has no B-Kinase, so the join
                // eliminates it.
                assert!(r.tuples.is_empty());
            }
        }
    }

    #[test]
    fn schema_only_config_compiles_to_nothing() {
        let db = db();
        let (config, keywords) = top_config(&db, &["gene"]);
        assert!(compile_configuration(&db, &config, &keywords).is_empty());
    }

    #[test]
    fn confidence_capped_at_one() {
        let db = db();
        let (config, keywords) = top_config(&db, &["gene", "name", "grpc"]);
        for q in compile_configuration(&db, &config, &keywords) {
            assert!(q.confidence <= 1.0);
        }
    }
}

//! Multi-query shared execution.
//!
//! A single annotation generates *many* keyword queries at once, and their
//! compiled conjunctive queries overlap heavily — the same concept tokens
//! and value predicates recur across the group. [`SharedExecutor`]
//! exploits this by memoizing table-wide predicate evaluations, so a
//! predicate shared by `n` queries is evaluated once instead of `n` times
//! (the optimization the Nebula paper evaluates in Figure 13).
//!
//! [`ExecutionMode::Isolated`] runs every query with a cold memo —
//! the baseline each experiment compares against.

use relstore::schema::{ColumnId, TableId};
use relstore::{ConjunctiveQuery, Database, JoinStep, Predicate, QueryResult, TupleId, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// How a batch of queries is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Each query evaluated independently (cold caches).
    Isolated,
    /// Predicate evaluations shared across the whole batch.
    Shared,
}

/// Memo key for one table-wide predicate evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PredKey {
    Eq(TableId, ColumnId, Value),
    ContainsToken(TableId, ColumnId, String),
    NotNull(TableId, ColumnId),
}

impl PredKey {
    fn new(table: TableId, p: &Predicate) -> PredKey {
        match p {
            Predicate::Eq(c, v) => PredKey::Eq(table, *c, v.clone()),
            Predicate::ContainsToken(c, t) => PredKey::ContainsToken(table, *c, t.to_lowercase()),
            Predicate::NotNull(c) => PredKey::NotNull(table, *c),
        }
    }
}

/// Executes batches of conjunctive queries with predicate-level sharing.
#[derive(Debug)]
pub struct SharedExecutor<'a> {
    db: &'a Database,
    memo: HashMap<PredKey, Rc<Vec<TupleId>>>,
    /// Predicate evaluations actually performed (cache misses).
    pub evaluations: usize,
    /// Predicate evaluations answered from the memo.
    pub cache_hits: usize,
}

impl<'a> SharedExecutor<'a> {
    /// New executor over `db` with an empty memo.
    pub fn new(db: &'a Database) -> Self {
        SharedExecutor { db, memo: HashMap::new(), evaluations: 0, cache_hits: 0 }
    }

    /// Evaluate one predicate table-wide, memoized. Returns the sorted
    /// tuple ids satisfying it.
    fn eval_predicate(&mut self, table: TableId, p: &Predicate) -> Rc<Vec<TupleId>> {
        let key = PredKey::new(table, p);
        if let Some(hit) = self.memo.get(&key) {
            self.cache_hits += 1;
            return Rc::clone(hit);
        }
        self.evaluations += 1;
        let ids = self.eval_uncached(table, p);
        let rc = Rc::new(ids);
        self.memo.insert(key, Rc::clone(&rc));
        rc
    }

    fn eval_uncached(&self, table: TableId, p: &Predicate) -> Vec<TupleId> {
        let Some(t) = self.db.table(table) else { return Vec::new() };
        let mut ids: Vec<TupleId> = match p {
            Predicate::Eq(c, v) => t.lookup(*c, v),
            Predicate::ContainsToken(..)
                if nebula_govern::inject(nebula_govern::FaultSite::IndexProbe).is_some() =>
            {
                // Injected index-probe failure: fall back to a table scan,
                // which yields the same live tuples the index would have.
                nebula_govern::note_recovered(nebula_govern::FaultSite::IndexProbe);
                t.scan().filter(|tuple| p.matches(tuple)).map(|tuple| tuple.id).collect()
            }
            Predicate::ContainsToken(c, token) => self
                .db
                .inverted_index()
                .lookup(token)
                .iter()
                .filter(|posting| posting.table == table && posting.column == *c)
                .map(|posting| posting.tuple)
                .filter(|tid| t.is_live(*tid))
                .collect(),
            Predicate::NotNull(c) => t
                .scan()
                .filter(|tuple| tuple.get(*c).map(|v| !v.is_null()).unwrap_or(false))
                .map(|tuple| tuple.id)
                .collect(),
        };
        ids.sort();
        ids.dedup();
        ids
    }

    /// Execute one query through the memo.
    pub fn execute(&mut self, q: &ConjunctiveQuery) -> relstore::Result<QueryResult> {
        if let Some(fault) = nebula_govern::inject(nebula_govern::FaultSite::Query) {
            return Err(fault.into());
        }
        let mut inspected = 0usize;
        // Intersect per-predicate result sets.
        let mut candidates: Option<Vec<TupleId>> = None;
        for p in &q.predicates {
            let ids = self.eval_predicate(q.base, p);
            inspected += ids.len();
            nebula_govern::charge(nebula_govern::Resource::TuplesInspected, ids.len())?;
            candidates = Some(match candidates {
                None => ids.as_ref().clone(),
                Some(prev) => intersect_sorted(&prev, &ids),
            });
            if matches!(candidates.as_deref(), Some([])) {
                break;
            }
        }
        let base_ids: Vec<TupleId> = match candidates {
            Some(ids) => ids,
            None => match self.db.table(q.base) {
                Some(t) => t.scan().map(|tuple| tuple.id).collect(),
                None => Vec::new(),
            },
        };
        // Apply join steps: a base tuple qualifies if every join step has a
        // partner in its memoized qualifying set.
        let mut out = Vec::new();
        'tuples: for tid in base_ids {
            let Some(tuple) = self.db.get(tid) else { continue };
            inspected += 1;
            nebula_govern::charge(nebula_govern::Resource::TuplesInspected, 1)?;
            for step in &q.joins {
                if !self.join_matches(&tuple, step) {
                    continue 'tuples;
                }
            }
            out.push(tid);
        }
        out.sort();
        out.dedup();
        Ok(QueryResult { tuples: out, inspected })
    }

    /// Whether `tuple` has a partner in `step.table` satisfying the step's
    /// predicates, using memoized per-predicate sets on the joined table.
    fn join_matches(&mut self, tuple: &relstore::Tuple, step: &JoinStep) -> bool {
        // Qualifying set of the joined table under the step's predicates.
        let qualifying: Option<Vec<TupleId>> = {
            let mut acc: Option<Vec<TupleId>> = None;
            for p in &step.predicates {
                let ids = self.eval_predicate(step.table, p);
                acc = Some(match acc {
                    None => ids.as_ref().clone(),
                    Some(prev) => intersect_sorted(&prev, &ids),
                });
            }
            acc
        };
        let holds = |pid: TupleId, qualifying: &Option<Vec<TupleId>>| match qualifying {
            None => true,
            Some(ids) => ids.binary_search(&pid).is_ok(),
        };
        // Outgoing FK partners.
        for fk in self.db.catalog().outgoing(tuple.id.table) {
            if fk.to_table != step.table {
                continue;
            }
            if let Some(pid) = self.db.follow_fk(tuple, fk) {
                if holds(pid, &qualifying) {
                    return true;
                }
            }
        }
        // Incoming FK partners.
        for fk in self.db.catalog().incoming(tuple.id.table) {
            if fk.from_table != step.table {
                continue;
            }
            let Some(key) = tuple.key() else { continue };
            if let Some(t) = self.db.table(fk.from_table) {
                for pid in t.lookup(fk.from_column, key) {
                    if holds(pid, &qualifying) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Execute a batch under the given mode, returning one result per
    /// query (in order).
    pub fn execute_batch(
        db: &Database,
        queries: &[ConjunctiveQuery],
        mode: ExecutionMode,
    ) -> relstore::Result<Vec<QueryResult>> {
        match mode {
            ExecutionMode::Shared => {
                let mut exec = SharedExecutor::new(db);
                queries.iter().map(|q| exec.execute(q)).collect()
            }
            ExecutionMode::Isolated => {
                queries.iter().map(|q| SharedExecutor::new(db).execute(q)).collect()
            }
        }
    }
}

/// Intersection of two ascending-sorted id lists.
fn intersect_sorted(a: &[TupleId], b: &[TupleId]) -> Vec<TupleId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .indexed_column("family", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (gid, name, fam) in [
            ("JW0013", "grpC", "F1"),
            ("JW0014", "groP", "F6"),
            ("JW0019", "yaaB", "F3"),
            ("JW0012", "yaaI", "F1"),
        ] {
            db.insert("gene", vec![Value::text(gid), Value::text(name), Value::text(fam)]).unwrap();
        }
        db
    }

    fn family_query(db: &Database, fam: &str) -> ConjunctiveQuery {
        let gene = db.catalog().resolve("gene").unwrap();
        let fcol = db.table(gene).unwrap().schema().column_id("family").unwrap();
        ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::ContainsToken(fcol, fam.to_lowercase()))
    }

    #[test]
    fn shared_matches_isolated_results() {
        let db = db();
        let queries =
            vec![family_query(&db, "F1"), family_query(&db, "F1"), family_query(&db, "F3")];
        let shared = SharedExecutor::execute_batch(&db, &queries, ExecutionMode::Shared).unwrap();
        let isolated =
            SharedExecutor::execute_batch(&db, &queries, ExecutionMode::Isolated).unwrap();
        for (s, i) in shared.iter().zip(&isolated) {
            assert_eq!(s.tuples, i.tuples);
        }
    }

    #[test]
    fn shared_mode_caches_repeated_predicates() {
        let db = db();
        let queries = vec![family_query(&db, "F1"); 5];
        let mut exec = SharedExecutor::new(&db);
        for q in &queries {
            exec.execute(q).unwrap();
        }
        assert_eq!(exec.evaluations, 1, "one real evaluation");
        assert_eq!(exec.cache_hits, 4, "four memo hits");
    }

    #[test]
    fn shared_matches_relstore_executor() {
        let db = db();
        let q = family_query(&db, "F1");
        let via_shared = SharedExecutor::new(&db).execute(&q).unwrap();
        let via_relstore = q.execute(&db).unwrap();
        assert_eq!(via_shared.tuples, via_relstore.tuples);
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let db = db();
        let gene = db.catalog().resolve("gene").unwrap();
        let name = db.table(gene).unwrap().schema().column_id("name").unwrap();
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let q = ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::ContainsToken(name, "grpc".into()))
            .with_predicate(Predicate::ContainsToken(fam, "f6".into()));
        let r = SharedExecutor::new(&db).execute(&q).unwrap();
        assert!(r.tuples.is_empty());
    }

    #[test]
    fn intersect_sorted_works() {
        use relstore::schema::TableId;
        let t = |r| TupleId::new(TableId(0), r);
        assert_eq!(intersect_sorted(&[t(1), t(2), t(4)], &[t(2), t(3), t(4)]), vec![t(2), t(4)]);
        assert_eq!(intersect_sorted(&[], &[t(1)]), vec![]);
    }

    #[test]
    fn scan_query_returns_all() {
        let db = db();
        let gene = db.catalog().resolve("gene").unwrap();
        let r = SharedExecutor::new(&db).execute(&ConjunctiveQuery::scan(gene)).unwrap();
        assert_eq!(r.tuples.len(), 4);
    }

    fn db_with_fk() -> Database {
        let mut db = db();
        db.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .column("pname", DataType::Text)
                .column("gene_id", DataType::Text)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_foreign_key("protein", "gene_id", "gene").unwrap();
        db.insert("protein", vec![Value::text("P1"), Value::text("Actin"), Value::text("JW0013")])
            .unwrap();
        db.insert("protein", vec![Value::text("P2"), Value::text("Kinase"), Value::text("JW0014")])
            .unwrap();
        db
    }

    #[test]
    fn join_through_memo_matches_relstore() {
        let db = db_with_fk();
        let gene = db.catalog().resolve("gene").unwrap();
        let protein = db.catalog().resolve("protein").unwrap();
        let pname = db.table(protein).unwrap().schema().column_id("pname").unwrap();
        // Genes having a protein named "actin" — incoming FK join.
        let q = ConjunctiveQuery::scan(gene).with_join(relstore::JoinStep {
            table: protein,
            predicates: vec![Predicate::ContainsToken(pname, "actin".into())],
        });
        let via_shared = SharedExecutor::new(&db).execute(&q).unwrap();
        let via_relstore = q.execute(&db).unwrap();
        assert_eq!(via_shared.tuples, via_relstore.tuples);
        assert_eq!(via_shared.tuples.len(), 1);

        // Outgoing direction: proteins of an F1 gene.
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let q2 = ConjunctiveQuery::scan(protein).with_join(relstore::JoinStep {
            table: gene,
            predicates: vec![Predicate::Eq(fam, Value::text("F1"))],
        });
        let a = SharedExecutor::new(&db).execute(&q2).unwrap();
        let b = q2.execute(&db).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples.len(), 1, "only P1's gene is in F1");
    }

    #[test]
    fn join_predicates_are_memoized_across_queries() {
        let db = db_with_fk();
        let gene = db.catalog().resolve("gene").unwrap();
        let protein = db.catalog().resolve("protein").unwrap();
        let pname = db.table(protein).unwrap().schema().column_id("pname").unwrap();
        let gname = db.table(gene).unwrap().schema().column_id("name").unwrap();
        let join = relstore::JoinStep {
            table: protein,
            predicates: vec![Predicate::ContainsToken(pname, "actin".into())],
        };
        let q1 = ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::ContainsToken(gname, "grpc".into()))
            .with_join(join.clone());
        let q2 = ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::ContainsToken(gname, "grop".into()))
            .with_join(join);
        let mut exec = SharedExecutor::new(&db);
        exec.execute(&q1).unwrap();
        let evals_after_first = exec.evaluations;
        exec.execute(&q2).unwrap();
        // Second query re-evaluates only its own base predicate; the join
        // predicate comes from the memo.
        assert_eq!(exec.evaluations, evals_after_first + 1);
        assert!(exec.cache_hits >= 1);
    }
}

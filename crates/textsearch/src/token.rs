//! Token normalization and stopword filtering for keyword queries.

/// Normalize a keyword: lower-case and strip surrounding punctuation.
pub fn normalize(word: &str) -> String {
    word.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase()
}

/// English stopwords — frequent function words that cannot be embedded
/// references and would otherwise flood value mappings.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "of", "in", "on", "at", "to",
    "for", "from", "by", "with", "about", "as", "into", "through", "after", "before", "is", "are",
    "was", "were", "be", "been", "being", "it", "its", "this", "that", "these", "those", "he",
    "she", "they", "them", "his", "her", "their", "we", "us", "our", "you", "your", "i", "me",
    "my", "not", "no", "yes", "do", "does", "did", "done", "can", "could", "will", "would",
    "shall", "should", "may", "might", "must", "have", "has", "had", "which", "who", "whom",
    "whose", "what", "when", "where", "why", "how", "all", "any", "both", "each", "few", "more",
    "most", "other", "some", "such", "only", "own", "same", "so", "than", "too", "very", "just",
    "also", "there", "here", "out", "up", "down", "over", "under", "again", "further", "once",
    "seems", "seem", "exp", "et", "al",
];

/// Is this (already normalized or raw) word an English stopword?
pub fn is_stopword(word: &str) -> bool {
    let w = normalize(word);
    STOPWORDS.contains(&w.as_str())
}

/// Split free text into normalized, non-empty words (stopwords retained —
/// callers that want them gone filter explicitly, because position matters
/// for context windows).
pub fn split_words(text: &str) -> Vec<String> {
    text.split_whitespace().map(normalize).filter(|w| !w.is_empty()).collect()
}

/// Light singularization for schema-name matching — the role WordNet's
/// lexical normalization plays in the paper ("genes" must match the
/// `gene` concept). Handles regular plurals only: `-ies` → `-y`,
/// `-sses`/`-shes`/`-ches`/`-xes` → drop `-es`, trailing `-s` → drop
/// (but not `-ss`). Returns `None` when the word is not a recognizable
/// plural.
pub fn singularize(word: &str) -> Option<String> {
    let w = word;
    if w.len() > 3 && w.ends_with("ies") {
        return Some(format!("{}y", &w[..w.len() - 3]));
    }
    for suffix in ["sses", "shes", "ches", "xes"] {
        if w.len() > suffix.len() && w.ends_with(suffix) {
            return Some(w[..w.len() - 2].to_string());
        }
    }
    if w.len() > 2 && w.ends_with('s') && !w.ends_with("ss") {
        return Some(w[..w.len() - 1].to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_punctuation_and_cases() {
        assert_eq!(normalize("JW0014,"), "jw0014");
        assert_eq!(normalize("(grpC)"), "grpc");
        assert_eq!(normalize("..."), "");
        assert_eq!(normalize("G-Actin"), "g-actin", "inner punctuation preserved");
    }

    #[test]
    fn stopwords_detected_case_insensitively() {
        assert!(is_stopword("The"));
        assert!(is_stopword("it,"));
        assert!(!is_stopword("gene"));
        assert!(!is_stopword("JW0013"));
    }

    #[test]
    fn split_words_drops_empties_keeps_stopwords() {
        let words = split_words("From the exp, it seems this gene ...");
        assert!(words.contains(&"the".to_string()));
        assert!(words.contains(&"gene".to_string()));
        assert!(!words.contains(&"".to_string()));
    }

    #[test]
    fn singularize_regular_plurals() {
        assert_eq!(singularize("genes").as_deref(), Some("gene"));
        assert_eq!(singularize("proteins").as_deref(), Some("protein"));
        assert_eq!(singularize("families").as_deref(), Some("family"));
        assert_eq!(singularize("boxes").as_deref(), Some("box"));
        assert_eq!(singularize("classes").as_deref(), Some("class"));
        assert_eq!(singularize("gene"), None);
        assert_eq!(singularize("class"), None, "-ss is not a plural");
        assert_eq!(singularize("as"), None, "too short");
    }
}

//! Pluggable search backends.
//!
//! The Nebula paper treats its keyword-search technique as a replaceable
//! black box ("any other technique can be used" — §6.1 Line 2). This
//! trait makes that true in code: the proactive layer talks to a
//! [`SearchBackend`], and two implementations ship —
//!
//! - [`KeywordSearch`]: the metadata approach
//!   (configurations + compiled conjunctive queries + shared execution),
//! - [`TfIdfSearch`]: a simpler SQAK-style disjunctive ranker that scores
//!   tuples by accumulated token rarity, with no schema metadata at all.

use crate::error::SearchError;
use crate::search::{KeywordQuery, KeywordSearch, SearchHit, SearchStats};
use crate::shared::ExecutionMode;
use relstore::{Database, TupleId};
use std::collections::HashMap;

/// A keyword-search technique usable as Nebula's Stage-2 black box.
pub trait SearchBackend {
    /// Execute a group of keyword queries (typically all the queries
    /// generated from one annotation), returning one hit list per query
    /// plus work counters. `mode` requests isolated or shared execution;
    /// backends without sharing may ignore it. Fails when the installed
    /// budget trips or a fault plan injects an error.
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError>;

    /// Human-readable backend name (for logs and experiment tables).
    fn name(&self) -> &'static str;
}

impl SearchBackend for KeywordSearch {
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError> {
        self.search_group(queries, db, mode)
    }

    fn name(&self) -> &'static str {
        "metadata-approach"
    }
}

/// A metadata-free, SQAK-style disjunctive ranker: each query keyword's
/// tokens are looked up in the inverted index; tuples accumulate the
/// rarity weight of every token they match; tuples matching **all**
/// keywords score far above partial matches. No schema knowledge, no
/// joins, no sharing.
#[derive(Debug, Clone, Copy)]
pub struct TfIdfSearch {
    /// Hits scoring below this (after normalization) are dropped.
    pub min_score: f64,
    /// Multiplier applied when a tuple matches every keyword of the query.
    pub full_match_boost: f64,
}

impl Default for TfIdfSearch {
    fn default() -> Self {
        TfIdfSearch { min_score: 0.1, full_match_boost: 2.0 }
    }
}

impl TfIdfSearch {
    /// Score one query.
    fn search_one(
        &self,
        query: &KeywordQuery,
        db: &Database,
        stats: &mut SearchStats,
    ) -> Result<Vec<SearchHit>, SearchError> {
        if let Some(fault) = nebula_govern::inject(nebula_govern::FaultSite::Query) {
            return Err(fault.into());
        }
        let mut score: HashMap<TupleId, f64> = HashMap::new();
        let mut matched_keywords: HashMap<TupleId, usize> = HashMap::new();
        let mut live_keywords = 0usize;
        for keyword in &query.keywords {
            let tokens = relstore::index::tokenize(keyword);
            let mut keyword_hits: HashMap<TupleId, f64> = HashMap::new();
            for token in &tokens {
                let postings = db.inverted_index().lookup(token);
                stats.tuples_inspected += postings.len();
                nebula_govern::charge(nebula_govern::Resource::TuplesInspected, postings.len())?;
                if postings.is_empty() {
                    continue;
                }
                let w = crate::mapping::value_weight(postings.len());
                for p in postings.iter() {
                    *keyword_hits.entry(p.tuple).or_insert(0.0) += w;
                }
            }
            if keyword_hits.is_empty() {
                continue;
            }
            live_keywords += 1;
            for (t, s) in keyword_hits {
                *score.entry(t).or_insert(0.0) += s;
                *matched_keywords.entry(t).or_insert(0) += 1;
            }
        }
        stats.compiled_queries += live_keywords;
        for (t, s) in score.iter_mut() {
            if live_keywords > 0 && matched_keywords[t] == live_keywords {
                *s *= self.full_match_boost;
            }
        }
        let max = score.values().copied().fold(0.0_f64, f64::max);
        let mut hits: Vec<SearchHit> = score
            .into_iter()
            .filter_map(|(tuple, s)| {
                let confidence = if max > 0.0 { s / max } else { 0.0 };
                (confidence >= self.min_score).then_some(SearchHit { tuple, confidence })
            })
            .collect();
        hits.sort_by(|a, b| b.confidence.total_cmp(&a.confidence).then(a.tuple.cmp(&b.tuple)));
        Ok(hits)
    }
}

impl SearchBackend for TfIdfSearch {
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        _mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError> {
        let mut stats = SearchStats { configurations: queries.len(), ..Default::default() };
        let hits = queries
            .iter()
            .map(|q| self.search_one(q, db, &mut stats))
            .collect::<Result<Vec<_>, _>>()?;
        stats.publish();
        Ok((hits, stats))
    }

    fn name(&self) -> &'static str {
        "tfidf-disjunctive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (gid, name) in [("JW0013", "grpC"), ("JW0014", "groP"), ("JW0019", "yaaB")] {
            db.insert("gene", vec![Value::text(gid), Value::text(name)]).unwrap();
        }
        db
    }

    #[test]
    fn tfidf_finds_referenced_tuple_first() {
        let db = db();
        let backend = TfIdfSearch::default();
        let (hits, stats) = backend
            .run_group(&[KeywordQuery::new(["gene", "JW0013"])], &db, ExecutionMode::Isolated)
            .unwrap();
        assert_eq!(hits.len(), 1);
        let top = &hits[0][0];
        assert_eq!(db.get(top.tuple).unwrap().get_by_name("gid"), Some(&Value::text("JW0013")));
        assert_eq!(top.confidence, 1.0);
        assert!(stats.tuples_inspected >= 1);
    }

    #[test]
    fn full_match_outranks_partial() {
        let mut db = db();
        // A decoy containing only one of the two keywords many times.
        db.insert("gene", vec![Value::text("JW0999"), Value::text("grpX")]).unwrap();
        let backend = TfIdfSearch { min_score: 0.0, ..Default::default() };
        let (hits, _) = backend
            .run_group(&[KeywordQuery::new(["JW0013", "grpC"])], &db, ExecutionMode::Isolated)
            .unwrap();
        let first = db.get(hits[0][0].tuple).unwrap();
        assert_eq!(first.get_by_name("gid"), Some(&Value::text("JW0013")));
    }

    #[test]
    fn both_backends_find_unique_references() {
        let db = db();
        let queries = vec![KeywordQuery::new(["gene", "yaaB"])];
        let metadata = KeywordSearch::default();
        let tfidf = TfIdfSearch::default();
        let (a, _) =
            SearchBackend::run_group(&metadata, &queries, &db, ExecutionMode::Shared).unwrap();
        let (b, _) = tfidf.run_group(&queries, &db, ExecutionMode::Shared).unwrap();
        let target = |hits: &Vec<Vec<SearchHit>>| {
            hits[0]
                .iter()
                .map(|h| db.get(h.tuple).unwrap().get_by_name("name").unwrap().render())
                .collect::<Vec<_>>()
        };
        assert!(target(&a).contains(&"yaaB".to_string()));
        assert!(target(&b).contains(&"yaaB".to_string()));
        assert_eq!(metadata.name(), "metadata-approach");
        assert_eq!(tfidf.name(), "tfidf-disjunctive");
    }

    #[test]
    fn min_score_filters() {
        let db = db();
        let strict = TfIdfSearch { min_score: 1.1, full_match_boost: 2.0 };
        let (hits, _) = strict
            .run_group(&[KeywordQuery::new(["gene", "JW0013"])], &db, ExecutionMode::Isolated)
            .unwrap();
        assert!(hits[0].is_empty(), "nothing reaches a score above 1.1");
    }
}

//! Error type for the search layer.
//!
//! Search execution can now fail for governed reasons — a tripped
//! [`nebula_govern::BudgetExceeded`] budget or an injected fault — in
//! addition to genuine store errors. [`SearchError`] keeps the three cases
//! distinguishable so the engine above can degrade (budget), retry
//! (transient fault), or fail (everything else).

use std::fmt;

/// Errors surfaced by keyword-search execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// Execution tripped the installed resource budget.
    Budget(nebula_govern::BudgetExceeded),
    /// A seeded fault plan injected a failure at a search-layer site.
    Fault(nebula_govern::InjectedFault),
    /// The underlying relational store failed.
    Store(relstore::Error),
}

impl From<relstore::Error> for SearchError {
    fn from(e: relstore::Error) -> SearchError {
        // Lift governed causes out of the store error so callers can match
        // on them without digging.
        match e {
            relstore::Error::BudgetExceeded(b) => SearchError::Budget(b),
            relstore::Error::FaultInjected(fault) => SearchError::Fault(fault),
            other => SearchError::Store(other),
        }
    }
}

impl From<nebula_govern::BudgetExceeded> for SearchError {
    fn from(b: nebula_govern::BudgetExceeded) -> SearchError {
        SearchError::Budget(b)
    }
}

impl From<nebula_govern::InjectedFault> for SearchError {
    fn from(fault: nebula_govern::InjectedFault) -> SearchError {
        SearchError::Fault(fault)
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Budget(b) => write!(f, "search aborted: {b}"),
            SearchError::Fault(fault) => write!(f, "search failed: {fault}"),
            SearchError::Store(e) => write!(f, "search failed: {e}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Budget(b) => Some(b),
            SearchError::Fault(fault) => Some(fault),
            SearchError::Store(e) => Some(e),
        }
    }
}

//! Keyword → schema/value mappings (step 1 of the metadata approach).
//!
//! Each keyword of a query is scored against three kinds of potential
//! mappings: it may name a **table**, a **column**, or occur as a **value**
//! inside some column. Schema matching consults a [`SchemaVocabulary`] of
//! exact names, curator-supplied *equivalent names* (e.g. `GID` ≡
//! `"gene id"`), and synonyms; value matching probes the database's
//! inverted index, weighting rare (selective) terms above frequent ones.

use relstore::schema::{ColumnId, TableId};
use relstore::Database;
use std::collections::HashMap;

/// What a keyword might denote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingKind {
    /// The keyword names a table.
    Table(TableId),
    /// The keyword names a column of a table.
    Column(TableId, ColumnId),
    /// The keyword occurs as (part of) a value in `table.column`.
    Value(TableId, ColumnId),
}

/// One scored mapping of one keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Index of the keyword within the query.
    pub keyword: usize,
    /// What it maps to.
    pub kind: MappingKind,
    /// Confidence of this interpretation, in `(0, 1]`.
    pub weight: f64,
}

/// Match strengths for schema-name matching. Exact and equivalent-name
/// matches rank above synonym matches, mirroring the paper's `p(w, c)`
/// (§5.2.1: "the first two matching types give higher weight than the
/// third").
pub mod weights {
    /// Keyword equals the table/column name.
    pub const EXACT: f64 = 0.95;
    /// Keyword equals a curator-declared equivalent name.
    pub const EQUIVALENT: f64 = 0.9;
    /// Keyword equals a lexicon synonym.
    pub const SYNONYM: f64 = 0.65;
}

/// Vocabulary for schema matching: equivalent names and synonyms for tables
/// and columns. The schema's own names always match exactly.
#[derive(Debug, Clone, Default)]
pub struct SchemaVocabulary {
    /// `(lower-cased alias) -> tables it names`
    table_aliases: HashMap<String, Vec<(TableId, f64)>>,
    /// `(lower-cased alias) -> columns it names`
    column_aliases: HashMap<String, Vec<(TableId, ColumnId, f64)>>,
}

impl SchemaVocabulary {
    /// Empty vocabulary (schema names still match exactly).
    pub fn new() -> Self {
        SchemaVocabulary::default()
    }

    /// Declare a curator equivalent name for a table.
    pub fn table_equivalent(&mut self, alias: &str, table: TableId) {
        self.table_aliases
            .entry(alias.to_lowercase())
            .or_default()
            .push((table, weights::EQUIVALENT));
    }

    /// Declare a lexicon synonym for a table.
    pub fn table_synonym(&mut self, alias: &str, table: TableId) {
        self.table_aliases.entry(alias.to_lowercase()).or_default().push((table, weights::SYNONYM));
    }

    /// Declare a curator equivalent name for a column.
    pub fn column_equivalent(&mut self, alias: &str, table: TableId, column: ColumnId) {
        self.column_aliases.entry(alias.to_lowercase()).or_default().push((
            table,
            column,
            weights::EQUIVALENT,
        ));
    }

    /// Declare a lexicon synonym for a column.
    pub fn column_synonym(&mut self, alias: &str, table: TableId, column: ColumnId) {
        self.column_aliases.entry(alias.to_lowercase()).or_default().push((
            table,
            column,
            weights::SYNONYM,
        ));
    }

    /// Tables a (normalized) word may name, with weights. Regular plurals
    /// match their singular form ("genes" names the `gene` table).
    pub fn match_tables(&self, db: &Database, word: &str) -> Vec<(TableId, f64)> {
        let singular = crate::token::singularize(word);
        let mut out = Vec::new();
        for (tid, name) in db.catalog().iter() {
            if name.eq_ignore_ascii_case(word) || singular.as_deref() == Some(&name.to_lowercase())
            {
                out.push((tid, weights::EXACT));
            }
        }
        for key in std::iter::once(word).chain(singular.as_deref()) {
            if let Some(aliases) = self.table_aliases.get(key) {
                out.extend(aliases.iter().copied());
            }
        }
        dedup_best_table(out)
    }

    /// Columns a (normalized) word may name, with weights. Regular plurals
    /// match their singular form.
    pub fn match_columns(&self, db: &Database, word: &str) -> Vec<(TableId, ColumnId, f64)> {
        let singular = crate::token::singularize(word);
        let mut out = Vec::new();
        for (tid, _name) in db.catalog().iter() {
            if let Some(table) = db.table(tid) {
                for (cid, def) in table.schema().iter_columns() {
                    if def.name.eq_ignore_ascii_case(word)
                        || singular.as_deref() == Some(&def.name.to_lowercase())
                    {
                        out.push((tid, cid, weights::EXACT));
                    }
                }
            }
        }
        for key in std::iter::once(word).chain(singular.as_deref()) {
            if let Some(aliases) = self.column_aliases.get(key) {
                out.extend(aliases.iter().copied());
            }
        }
        dedup_best_column(out)
    }
}

/// Sort by table then weight descending, keep the best weight per table.
fn dedup_best_table(mut v: Vec<(TableId, f64)>) -> Vec<(TableId, f64)> {
    v.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.total_cmp(&a.1)));
    v.dedup_by_key(|e| e.0);
    v
}

fn dedup_best_column(mut v: Vec<(TableId, ColumnId, f64)>) -> Vec<(TableId, ColumnId, f64)> {
    v.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(b.2.total_cmp(&a.2)));
    v.dedup_by_key(|e| (e.0, e.1));
    v
}

/// Weight of a value mapping from the token's document frequency: rare
/// tokens are more likely to be intentional references.
/// `df = 1 → 1.0`, decreasing smoothly with frequency.
pub fn value_weight(df: usize) -> f64 {
    if df == 0 {
        0.0
    } else {
        1.0 / (1.0 + (df as f64).ln())
    }
}

/// Is `(table, column)` the referencing side of a foreign key?
pub fn is_fk_column(db: &Database, table: TableId, column: ColumnId) -> bool {
    db.catalog().outgoing(table).any(|fk| fk.from_table == table && fk.from_column == column)
}

/// Per-pair document frequency of one token.
fn token_pair_df(db: &Database, token: &str) -> HashMap<(TableId, ColumnId), usize> {
    let mut pair_df = HashMap::new();
    for p in db.inverted_index().lookup(token).iter() {
        *pair_df.entry((p.table, p.column)).or_insert(0) += 1;
    }
    pair_df
}

/// Weight of a `(table, column)` value mapping with the given document
/// frequency: rarity (`value_weight`) × a scale-invariant coverage
/// penalty (a token in nearly every row identifies nothing) × an FK damp
/// (a hit inside a foreign-key column primarily references the *other*
/// table's row — the metadata approach resolves such keywords through the
/// FK join, so the FK holder is a secondary interpretation).
pub fn pair_value_weight(db: &Database, table: TableId, column: ColumnId, df: usize) -> f64 {
    let rows = db.table(table).map(|t| t.len()).unwrap_or(0).max(df).max(1);
    let coverage = 1.0 - (df.saturating_sub(1)) as f64 / rows as f64;
    let fk_damp = if is_fk_column(db, table, column) { 0.5 } else { 1.0 };
    value_weight(df) * coverage * fk_damp
}

/// All value mappings of a (normalized) word: the distinct `(table,
/// column)` pairs whose cells contain it, weighted by
/// [`pair_value_weight`].
///
/// Multi-token words (e.g. the hyphenated protein name `G-Actin`) map to
/// the pairs containing **all** their tokens; the weakest token's weight
/// governs (conservative under token independence).
pub fn match_values(db: &Database, word: &str) -> Vec<(TableId, ColumnId, f64)> {
    let tokens = relstore::index::tokenize(word);
    if tokens.is_empty() {
        return Vec::new();
    }
    // Intersect per-token pair sets, tracking the max df (= the least
    // selective token) per surviving pair.
    let mut acc: Option<HashMap<(TableId, ColumnId), usize>> = None;
    for token in &tokens {
        let df = token_pair_df(db, token);
        if df.is_empty() {
            return Vec::new();
        }
        acc = Some(match acc {
            None => df,
            Some(prev) => prev
                .into_iter()
                .filter_map(|(pair, d)| df.get(&pair).map(|d2| (pair, d.max(*d2))))
                .collect(),
        });
    }
    let mut out: Vec<(TableId, ColumnId, f64)> = acc
        .unwrap_or_default()
        .into_iter()
        .filter_map(|((t, c), df)| {
            let w = pair_value_weight(db, t, c, df);
            (w > f64::EPSILON).then_some((t, c, w))
        })
        .collect();
    out.sort_by_key(|a| (a.0, a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        db.insert("gene", vec![Value::text("JW0014"), Value::text("groP")]).unwrap();
        db
    }

    #[test]
    fn exact_table_match() {
        let db = db();
        let vocab = SchemaVocabulary::new();
        let m = vocab.match_tables(&db, "gene");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, weights::EXACT);
        assert!(vocab.match_tables(&db, "nothing").is_empty());
    }

    #[test]
    fn equivalent_beats_synonym_on_same_table() {
        let db = db();
        let gene = db.catalog().resolve("gene").unwrap();
        let mut vocab = SchemaVocabulary::new();
        vocab.table_synonym("locus", gene);
        vocab.table_equivalent("locus", gene);
        let m = vocab.match_tables(&db, "locus");
        assert_eq!(m.len(), 1, "deduped per table");
        assert_eq!(m[0].1, weights::EQUIVALENT, "best weight kept");
    }

    #[test]
    fn column_matching_with_aliases() {
        let db = db();
        let gene = db.catalog().resolve("gene").unwrap();
        let gid = db.table(gene).unwrap().schema().column_id("gid").unwrap();
        let mut vocab = SchemaVocabulary::new();
        vocab.column_equivalent("id", gene, gid);
        let m = vocab.match_columns(&db, "id");
        assert_eq!(m, vec![(gene, gid, weights::EQUIVALENT)]);
        let exact = vocab.match_columns(&db, "GID");
        assert_eq!(exact[0].2, weights::EXACT);
    }

    #[test]
    fn value_weight_decreases_with_frequency() {
        assert_eq!(value_weight(0), 0.0);
        assert_eq!(value_weight(1), 1.0);
        assert!(value_weight(10) < value_weight(2));
        assert!(value_weight(10_000) > 0.0);
    }

    #[test]
    fn match_values_probes_inverted_index() {
        let db = db();
        let gene = db.catalog().resolve("gene").unwrap();
        let name = db.table(gene).unwrap().schema().column_id("name").unwrap();
        let m = match_values(&db, "grpc");
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].0, m[0].1), (gene, name));
        assert_eq!(m[0].2, 1.0, "unique token gets full weight");
        assert!(match_values(&db, "zzz").is_empty());
    }
}

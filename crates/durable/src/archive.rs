//! WAL archiving — the feed for disaster recovery.
//!
//! Checkpoints truncate the WAL, which is exactly right for crash
//! recovery and exactly wrong for disaster recovery: the history needed
//! to rewind to "just before the bad batch" is discarded. When archiving
//! is enabled ([`crate::Durability::set_archive`]), the manager seals the
//! WAL's valid prefix into an epoch-stamped [`crate::segment`] frame and
//! writes it to the archive directory **before** the truncate — no WAL
//! byte is discarded until its archived copy is durable. Each committed
//! checkpoint image is archived alongside as a *base*, so any LSN from
//! the oldest base's watermark to the newest sealed record is restorable
//! by loading a base and replaying segments.
//!
//! Archive files:
//!
//! - `segment-<base_lsn>.seg` — a sealed WAL run (`NEBSEG01` frame),
//! - `base-<watermark>.ckpt` — a checkpoint image (`NEBSCP01` frame).
//!
//! All writes roll the `ArchiveWrite` / `ArchiveFsync` / `Enospc` fault
//! sites; a failed archive write aborts the enclosing checkpoint, so the
//! live WAL keeps the records the archive failed to take.

use crate::segment::{decode_checkpoint_frame, decode_segment, encode_checkpoint_frame};
use crate::wal::read_wal;
use crate::{checkpoint, segment, DurableError};
use nebula_govern::{inject_io, FaultSite, IoFault};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Counter names this module publishes to `nebula-obs`.
pub mod counters {
    /// Sealed WAL segments archived.
    pub const SEGMENTS_ARCHIVED: &str = "backup.segments_archived";
    /// Base checkpoint images archived.
    pub const BASES_ARCHIVED: &str = "backup.bases_archived";
    /// Bytes written to archive directories.
    pub const BYTES_ARCHIVED: &str = "backup.bytes_archived";
    /// Archive writes that failed (injected or real).
    pub const ARCHIVE_FAILURES: &str = "backup.archive_failures";
}

/// File name of the sealed segment whose first record is `base_lsn`.
pub fn segment_file_name(base_lsn: u64) -> String {
    format!("segment-{base_lsn:020}.seg")
}

/// File name of the archived base checkpoint covering `watermark`.
pub fn base_file_name(watermark: u64) -> String {
    format!("base-{watermark:020}.ckpt")
}

/// Parse a `segment-<lsn>.seg` file name back to its base LSN.
pub fn parse_segment_lsn(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?.strip_suffix(".seg")?.parse().ok()
}

/// Parse a `base-<watermark>.ckpt` file name back to its watermark.
pub fn parse_base_watermark(name: &str) -> Option<u64> {
    name.strip_prefix("base-")?.strip_suffix(".ckpt")?.parse().ok()
}

/// Write one archive file with the full fault-site discipline: `Enospc`
/// before any byte lands, `ArchiveWrite` may tear the file mid-write
/// (the torn file *stays*, for the scrubber to find), `ArchiveFsync`
/// fails after the bytes were handed to the OS.
fn write_archive_file(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, DurableError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    if let Some(IoFault::NoSpace) = inject_io(FaultSite::Enospc, bytes.len()) {
        nebula_obs::counter_add(counters::ARCHIVE_FAILURES, 1);
        return Err(DurableError::NoSpace(format!("archiving {}", path.display())));
    }
    let mut f = std::fs::File::create(&path)?;
    if let Some(IoFault::TornWrite { keep }) = inject_io(FaultSite::ArchiveWrite, bytes.len()) {
        f.write_all(&bytes[..keep])?;
        let _ = f.sync_data();
        nebula_obs::counter_add(counters::ARCHIVE_FAILURES, 1);
        return Err(DurableError::Archive(format!(
            "torn archive write: {keep} of {} bytes reached {}",
            bytes.len(),
            path.display()
        )));
    }
    f.write_all(bytes)?;
    if let Some(IoFault::FsyncFail) = inject_io(FaultSite::ArchiveFsync, bytes.len()) {
        nebula_obs::counter_add(counters::ARCHIVE_FAILURES, 1);
        return Err(DurableError::Archive(format!("fsync failed archiving {}", path.display())));
    }
    f.sync_data()?;
    nebula_obs::counter_add(counters::BYTES_ARCHIVED, bytes.len() as u64);
    Ok(path)
}

/// Seal `records` (the WAL's valid prefix — concatenated record frames,
/// the first at `base_lsn`) into the archive. Returns the segment path,
/// or `None` when the prefix holds no records.
pub fn archive_segment(
    dir: &Path,
    epoch: u64,
    base_lsn: u64,
    records: &[u8],
) -> Result<Option<PathBuf>, DurableError> {
    let (recs, tail) = read_wal(records);
    if !tail.is_clean() {
        return Err(DurableError::Corrupt(format!(
            "refusing to archive an unclean WAL prefix: {}",
            tail.reason.as_deref().unwrap_or("unknown reason")
        )));
    }
    if recs.is_empty() {
        return Ok(None);
    }
    let frame = segment::encode_segment(epoch, base_lsn, recs.len() as u32, records);
    let path = write_archive_file(dir, &segment_file_name(base_lsn), &frame)?;
    nebula_obs::counter_add(counters::SEGMENTS_ARCHIVED, 1);
    Ok(Some(path))
}

/// Archive a committed checkpoint image as a restore base.
pub fn archive_base(
    dir: &Path,
    epoch: u64,
    watermark: u64,
    image: &[u8],
) -> Result<PathBuf, DurableError> {
    let frame = encode_checkpoint_frame(epoch, image);
    let path = write_archive_file(dir, &base_file_name(watermark), &frame)?;
    nebula_obs::counter_add(counters::BASES_ARCHIVED, 1);
    Ok(path)
}

/// Sealed segments in `dir`, sorted by base LSN.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    list_by(dir, parse_segment_lsn)
}

/// Archived bases in `dir`, sorted by watermark.
pub fn list_bases(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    list_by(dir, parse_base_watermark)
}

fn list_by(dir: &Path, parse: fn(&str) -> Option<u64>) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(key) = entry.file_name().to_str().and_then(parse) {
            out.push((key, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// A summary of what an archive directory can restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArchiveStats {
    /// Sealed WAL segments on disk.
    pub segments: usize,
    /// Archived base checkpoints on disk.
    pub bases: usize,
    /// The oldest LSN a restore can target (the oldest base's watermark).
    pub oldest_restorable_lsn: u64,
    /// The newest LSN the archive covers (last sealed record, or the
    /// newest base watermark when no segment reaches past it).
    pub newest_lsn: u64,
    /// Total archive bytes on disk.
    pub bytes: u64,
}

/// Survey an archive directory. Unreadable/torn files still count toward
/// `segments`/`bases`/`bytes` (the scrubber reports them); they just
/// cannot extend `newest_lsn`.
pub fn archive_stats(dir: &Path) -> std::io::Result<ArchiveStats> {
    let segments = list_segments(dir)?;
    let bases = list_bases(dir)?;
    let mut stats = ArchiveStats {
        segments: segments.len(),
        bases: bases.len(),
        oldest_restorable_lsn: bases.first().map(|(w, _)| *w).unwrap_or(0),
        newest_lsn: bases.last().map(|(w, _)| *w).unwrap_or(0),
        bytes: 0,
    };
    for (_, path) in bases.iter().chain(segments.iter()) {
        stats.bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    }
    if let Some((base_lsn, path)) = segments.last() {
        if let Ok(seg) =
            std::fs::read(path).map_err(DurableError::from).and_then(|b| decode_segment(&b))
        {
            let last = base_lsn + seg.records.len().saturating_sub(1) as u64;
            stats.newest_lsn = stats.newest_lsn.max(last);
        }
    }
    Ok(stats)
}

/// Decode and validate one archived base: envelope, checkpoint image,
/// and that the image's watermark matches the file name.
pub fn read_base(watermark: u64, path: &Path) -> Result<Vec<u8>, DurableError> {
    let bytes = std::fs::read(path)?;
    let frame = decode_checkpoint_frame(&bytes)?;
    let (image_watermark, _, _) = checkpoint::decode(&frame.image)?;
    if image_watermark != watermark {
        return Err(DurableError::Corrupt(format!(
            "archived base {} carries watermark {image_watermark}, expected {watermark}",
            path.display()
        )));
    }
    Ok(frame.image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, WalOp};
    use annostore::AnnotationId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-archive-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_bytes(first_lsn: u64, n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            let op = WalOp::AddAnnotation {
                expected: AnnotationId(i),
                text: format!("note {i}"),
                author: None,
                kind: None,
            };
            out.extend_from_slice(&encode_record(first_lsn + i, &op));
        }
        out
    }

    #[test]
    fn segments_round_trip_and_list_in_lsn_order() {
        let dir = temp_dir("roundtrip");
        assert!(archive_segment(&dir, 1, 11, &wal_bytes(11, 3)).unwrap().is_some());
        assert!(archive_segment(&dir, 1, 1, &wal_bytes(1, 10)).unwrap().is_some());
        let listed = list_segments(&dir).unwrap();
        assert_eq!(listed.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1, 11]);
        let seg = decode_segment(&std::fs::read(&listed[1].1).unwrap()).unwrap();
        assert_eq!(seg.base_lsn, 11);
        assert_eq!(seg.records.len(), 3);
        // An empty prefix archives nothing.
        assert!(archive_segment(&dir, 1, 14, &[]).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_restorable_range() {
        let dir = temp_dir("stats");
        let db = relstore::Database::new();
        let store = annostore::AnnotationStore::new();
        let image = checkpoint::encode(0, &db, &store);
        archive_base(&dir, 1, 0, &image).unwrap();
        archive_segment(&dir, 1, 1, &wal_bytes(1, 5)).unwrap();
        let stats = archive_stats(&dir).unwrap();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.bases, 1);
        assert_eq!(stats.oldest_restorable_lsn, 0);
        assert_eq!(stats.newest_lsn, 5);
        assert!(stats.bytes > 0);
        // A missing directory is just an empty archive.
        let empty = archive_stats(&temp_dir("stats-missing")).unwrap();
        assert_eq!(empty, ArchiveStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_archive_write_fails_and_leaves_the_torn_file() {
        let dir = temp_dir("torn");
        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(3).with_archive_faults(1.0, 0.0, 0.0),
        ));
        let err = archive_segment(&dir, 1, 1, &wal_bytes(1, 4)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::Archive(_)), "{err}");
        let listed = list_segments(&dir).unwrap();
        assert_eq!(listed.len(), 1, "the torn file stays for the scrubber");
        assert!(decode_segment(&std::fs::read(&listed[0].1).unwrap()).is_err());
        // A clean retry overwrites it in place.
        archive_segment(&dir, 1, 1, &wal_bytes(1, 4)).unwrap();
        assert!(decode_segment(&std::fs::read(&listed[0].1).unwrap()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_and_fsync_failures_surface_typed() {
        let dir = temp_dir("enospc");
        nebula_govern::set_fault_plan(Some(nebula_govern::FaultPlan::new(4).with_enospc(1.0)));
        let err = archive_segment(&dir, 1, 1, &wal_bytes(1, 2)).unwrap_err();
        assert!(matches!(err, DurableError::NoSpace(_)), "{err}");
        assert!(list_segments(&dir).unwrap().is_empty(), "enospc persists nothing");
        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(4).with_archive_faults(0.0, 0.0, 1.0),
        ));
        let err = archive_segment(&dir, 1, 1, &wal_bytes(1, 2)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::Archive(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_base_rejects_a_mislabeled_image() {
        let dir = temp_dir("mislabel");
        let db = relstore::Database::new();
        let store = annostore::AnnotationStore::new();
        let image = checkpoint::encode(7, &db, &store);
        let path = archive_base(&dir, 1, 7, &image).unwrap();
        assert_eq!(read_base(7, &path).unwrap(), image);
        let renamed = dir.join(base_file_name(9));
        std::fs::rename(&path, &renamed).unwrap();
        assert!(read_base(9, &renamed).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Anti-entropy media scrub: find at-rest corruption *between* checkpoints.
//!
//! Recovery ([`crate::recover`]) only validates durable state when it is
//! read back after a crash; a bit that rots on disk while the engine is
//! healthy stays invisible until the worst possible moment. The scrubber
//! closes that gap:
//!
//! - [`inject_rot`] is the fault half: it consults the seeded
//!   [`FaultSite::WalRot`]/[`FaultSite::CheckpointRot`] sites and, when one
//!   fires, physically flips the chosen bit in the on-disk WAL or newest
//!   checkpoint image — deterministic media decay.
//! - [`scrub`] is the detection half: a **read-only** pass that re-parses
//!   the WAL (every record CRC) and re-decodes every retained checkpoint
//!   (whole-image CRC), reporting exactly what failed without touching the
//!   files.
//!
//! The cluster layer (`nebula-replica`) drives both on a governed-clock
//! cadence and heals what the scrub finds by re-checkpointing from the
//! primary's shadow state.

use crate::wal::{read_wal, WAL_FILE};
use crate::{checkpoint, DurableError};
use nebula_govern::{inject_io, FaultSite, IoFault};
use std::fmt;
use std::path::Path;

/// Counter and span names the scrubber publishes to `nebula-obs`.
pub mod counters {
    /// Bits rotted on disk by [`super::inject_rot`].
    pub const BITROT_INJECTED: &str = "repair.bitrot_injected";
    /// Corrupt artifacts (WAL tails or checkpoint images) found by scrubs.
    pub const BITROT_DETECTED: &str = "repair.bitrot_detected";
    /// Scrub passes completed.
    pub const SCRUBS: &str = "repair.scrubs";
    /// Span: one scrub pass over a durability directory.
    pub const SPAN_SCRUB: &str = "repair.scrub";
}

/// What [`inject_rot`] did to a durability directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RotReport {
    /// Bit offset flipped in the WAL, if the `WalRot` site fired.
    pub wal_bit: Option<usize>,
    /// `(checkpoint seq, bit offset)` flipped, if `CheckpointRot` fired.
    pub checkpoint_bit: Option<(u64, usize)>,
}

impl RotReport {
    /// Did any bit actually rot?
    pub fn any(&self) -> bool {
        self.wal_bit.is_some() || self.checkpoint_bit.is_some()
    }
}

/// Read-only findings of one scrub pass over a durability directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Valid records in the WAL prefix.
    pub wal_records: usize,
    /// Records past the first invalid WAL frame.
    pub wal_dropped: usize,
    /// Why WAL parsing stopped early, when it did.
    pub wal_reason: Option<String>,
    /// Checkpoint images inspected.
    pub checkpoints: usize,
    /// Sequence numbers of checkpoint images that failed validation.
    pub corrupt_checkpoints: Vec<u64>,
}

impl ScrubReport {
    /// No corruption anywhere: the WAL parses end-to-end and every
    /// checkpoint image validates.
    pub fn is_clean(&self) -> bool {
        self.wal_dropped == 0 && self.corrupt_checkpoints.is_empty()
    }

    /// Corrupt artifacts found (invalid WAL tail counts as one).
    pub fn findings(&self) -> usize {
        usize::from(self.wal_dropped > 0) + self.corrupt_checkpoints.len()
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean ({} wal records, {} checkpoints)", self.wal_records, self.checkpoints)
        } else {
            write!(
                f,
                "CORRUPT: wal dropped {} ({}), checkpoints bad {:?}",
                self.wal_dropped,
                self.wal_reason.as_deref().unwrap_or("-"),
                self.corrupt_checkpoints
            )
        }
    }
}

/// Flip `bit` in the file at `path`, if the file is long enough.
/// Returns whether a byte was actually rewritten.
fn flip_on_disk(path: &Path, bit: usize) -> std::io::Result<bool> {
    let mut bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    let byte = bit / 8;
    if byte >= bytes.len() {
        return Ok(false);
    }
    bytes[byte] ^= 1 << (bit % 8);
    std::fs::write(path, &bytes)?;
    Ok(true)
}

/// Roll the seeded bit-rot sites against the durability directory `dir`,
/// physically flipping at most one WAL bit and one bit in the newest
/// checkpoint image.
///
/// Both sites are consulted on every call — each consumes exactly two
/// draws from the installed fault plan whether or not it fires — so the
/// rot schedule never shifts the stream seen by other fault sites. With no
/// plan installed this is a no-op.
pub fn inject_rot(dir: &Path) -> std::io::Result<RotReport> {
    let mut report = RotReport::default();

    let wal_path = dir.join(WAL_FILE);
    let wal_len = std::fs::metadata(&wal_path).map(|m| m.len() as usize).unwrap_or(0);
    if let Some(IoFault::BitFlip { bit }) = inject_io(FaultSite::WalRot, wal_len) {
        if flip_on_disk(&wal_path, bit)? {
            report.wal_bit = Some(bit);
        }
    }

    let newest = checkpoint::list_checkpoints(dir).ok().and_then(|cks| cks.into_iter().next_back());
    let ckpt_len = newest
        .as_ref()
        .and_then(|(_, p)| std::fs::metadata(p).ok())
        .map(|m| m.len() as usize)
        .unwrap_or(0);
    if let Some(IoFault::BitFlip { bit }) = inject_io(FaultSite::CheckpointRot, ckpt_len) {
        if let Some((seq, path)) = newest {
            if flip_on_disk(&path, bit)? {
                report.checkpoint_bit = Some((seq, bit));
            }
        }
    }

    if report.any() {
        let n = u64::from(report.wal_bit.is_some()) + u64::from(report.checkpoint_bit.is_some());
        nebula_obs::counter_add(counters::BITROT_INJECTED, n);
    }
    Ok(report)
}

/// Run one read-only scrub pass over the durability directory `dir`:
/// re-parse the WAL and re-decode every retained checkpoint image,
/// reporting (but never repairing) whatever fails validation.
pub fn scrub(dir: &Path) -> Result<ScrubReport, DurableError> {
    let span = nebula_obs::trace::span(counters::SPAN_SCRUB);
    let mut report = ScrubReport::default();

    let wal_path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (records, tail) = read_wal(&bytes);
    report.wal_records = records.len();
    report.wal_dropped = tail.dropped_records;
    report.wal_reason = tail.reason;

    for (seq, path) in checkpoint::list_checkpoints(dir)? {
        report.checkpoints += 1;
        let ok = std::fs::read(&path)
            .map_err(DurableError::from)
            .and_then(|image| checkpoint::decode(&image));
        if ok.is_err() {
            report.corrupt_checkpoints.push(seq);
        }
    }

    nebula_obs::counter_add(counters::SCRUBS, 1);
    if !report.is_clean() {
        nebula_obs::counter_add(counters::BITROT_DETECTED, report.findings() as u64);
        nebula_obs::trace::flight_event("scrub", report.to_string());
    }
    if span.is_active() {
        span.detail(report.to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Durability, DurabilityOptions};
    use annostore::AnnotationStore;
    use nebula_core::MutationSink;
    use nebula_govern::{set_fault_plan, FaultPlan};
    use relstore::Database;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-scrub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Seed a durability dir with a checkpoint plus a few WAL records.
    fn seeded(dir: &Path) -> (Database, AnnotationStore) {
        let db = Database::new();
        let mut store = AnnotationStore::new();
        let mut sink = Durability::begin(dir, &db, &store, DurabilityOptions::default()).unwrap();
        for i in 0..6 {
            let ann = annostore::Annotation::new(format!("scrub target {i}"));
            let expected = annostore::AnnotationId(store.annotation_count() as u64);
            sink.record(&nebula_core::Mutation::AddAnnotation { expected, annotation: &ann })
                .unwrap();
            store.add_annotation(ann);
            if i == 2 {
                sink.checkpoint(&db, &store).unwrap();
            }
        }
        sink.flush().unwrap();
        (db, store)
    }

    #[test]
    fn clean_directory_scrubs_clean() {
        let dir = temp_dir("clean");
        seeded(&dir);
        let report = scrub(&dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.checkpoints, 1);
        assert!(report.wal_records > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_wal_rot_is_detected() {
        let dir = temp_dir("walrot");
        seeded(&dir);
        set_fault_plan(Some(FaultPlan::new(11).with_bit_rot(1.0, 0.0)));
        let rot = inject_rot(&dir).unwrap();
        set_fault_plan(None);
        assert!(rot.wal_bit.is_some(), "wal rot must fire at rate 1.0");
        let report = scrub(&dir).unwrap();
        assert!(!report.is_clean(), "flipped wal bit must be found: {report}");
        assert!(report.wal_dropped > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_checkpoint_rot_is_detected() {
        let dir = temp_dir("ckptrot");
        seeded(&dir);
        set_fault_plan(Some(FaultPlan::new(12).with_bit_rot(0.0, 1.0)));
        let rot = inject_rot(&dir).unwrap();
        set_fault_plan(None);
        assert!(rot.checkpoint_bit.is_some(), "checkpoint rot must fire at rate 1.0");
        let report = scrub(&dir).unwrap();
        assert_eq!(report.corrupt_checkpoints.len(), 1, "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rot_without_plan_is_a_noop() {
        let dir = temp_dir("noplan");
        seeded(&dir);
        let rot = inject_rot(&dir).unwrap();
        assert!(!rot.any());
        assert!(scrub(&dir).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rot_consumes_fixed_draws() {
        // Same seed, rot sites toggled on/off: the downstream query-fault
        // stream must be identical either way.
        let dir = temp_dir("draws");
        seeded(&dir);
        let run = |plan: FaultPlan| {
            set_fault_plan(Some(plan));
            let _ = inject_rot(&dir).unwrap();
            let seq: Vec<bool> =
                (0..32).map(|_| nebula_govern::inject(FaultSite::Query).is_some()).collect();
            set_fault_plan(None);
            seq
        };
        let without = run(FaultPlan::new(9).with_query(0.5, true));
        let with = run(FaultPlan::new(9).with_query(0.5, true).with_bit_rot(1.0, 1.0));
        assert_eq!(without, with);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The crash-point harness: simulated kill-and-recover at every WAL
//! record boundary.
//!
//! Given a durability directory, the harness reads the committed
//! checkpoint and the log, then for **every** record boundary `i` it
//! recovers from `checkpoint + wal[..boundary_i]` — exactly the bytes a
//! crash at that instant would leave behind — and asserts the recovered
//! state equals an incrementally maintained reference replay (**prefix
//! consistency**). It additionally tears the log mid-record after each
//! boundary and asserts recovery still lands on the same prefix state
//! while reporting **exactly one** dropped record.
//!
//! States are compared by CRC32C digests of the canonical snapshot
//! encodings, so the comparison covers the relational and annotation
//! stores byte-for-byte.

use crate::checkpoint;
use crate::recover::{recover_from_bytes, replay_op};
use crate::wal::{read_wal, WAL_FILE};
use crate::DurableError;
use annostore::AnnotationStore;
use relstore::Database;
use std::path::Path;

/// What [`crash_points`] verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPointReport {
    /// Record boundaries exercised (records + 1, counting the empty
    /// prefix).
    pub boundaries: usize,
    /// Records in the log (each also torn mid-record once).
    pub records: usize,
    /// Mid-record torn cuts exercised.
    pub torn_cuts: usize,
}

/// CRC32C digests of the two snapshot encodings — a compact equality
/// witness for a full engine state.
pub fn state_digest(db: &Database, store: &AnnotationStore) -> (u32, u32) {
    (
        crate::crc32c::crc32c(&relstore::snapshot::save(db)),
        crate::crc32c::crc32c(&annostore::snapshot::save(store)),
    )
}

/// Kill-and-recover at every record boundary of the log in `dir`.
///
/// Requires a clean log (no pre-existing torn tail) so every boundary is
/// well defined; run this on a directory produced by a completed batch.
pub fn crash_points(dir: &Path) -> Result<CrashPointReport, DurableError> {
    let checkpoints = checkpoint::list_checkpoints(dir)?;
    let (_, ckpt_path) = checkpoints
        .last()
        .ok_or_else(|| DurableError::NotFound(format!("{} has no checkpoint", dir.display())))?;
    let image = std::fs::read(ckpt_path)?;
    let (watermark, mut ref_db, mut ref_store) = checkpoint::decode(&image)?;
    let wal_bytes = match std::fs::read(dir.join(WAL_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (records, tail) = read_wal(&wal_bytes);
    if !tail.is_clean() {
        return Err(DurableError::Corrupt(format!(
            "crash-point harness needs a clean log; tail drops {} record(s) ({})",
            tail.dropped_records,
            tail.reason.as_deref().unwrap_or("unknown reason")
        )));
    }

    let mut boundaries = 0usize;
    let mut torn_cuts = 0usize;
    let mut prev_end = 0usize;
    // Boundary 0: the empty prefix must recover to the checkpoint itself.
    check_boundary(&image, &wal_bytes[..0], state_digest(&ref_db, &ref_store), 0)?;
    boundaries += 1;

    for rec in &records {
        // Advance the reference replay by this one record.
        if rec.lsn > watermark {
            replay_op(&mut ref_db, &mut ref_store, &rec.op).map_err(|e| {
                DurableError::Replay(format!("reference replay at lsn {}: {e}", rec.lsn))
            })?;
        }
        let expected = state_digest(&ref_db, &ref_store);

        // Crash exactly at the record boundary: clean recovery, no drops.
        check_boundary(&image, &wal_bytes[..rec.end_offset], expected, 0)?;
        boundaries += 1;

        // Crash mid-way through the *next* frame (or mid-way through this
        // one, seen from the previous boundary): the torn record — and
        // only it — is dropped, and the state is the previous boundary's.
        let cut = prev_end + (rec.end_offset - prev_end) / 2;
        if cut > prev_end {
            let before = recover_from_bytes(Some(&image), &wal_bytes[..prev_end])?;
            let r = recover_from_bytes(Some(&image), &wal_bytes[..cut])?;
            if r.tail.dropped_records != 1 {
                return Err(DurableError::Corrupt(format!(
                    "torn cut at byte {cut}: expected exactly 1 dropped record, got {} ({:?})",
                    r.tail.dropped_records, r.tail.reason
                )));
            }
            let got = state_digest(&r.db, &r.store);
            let want = state_digest(&before.db, &before.store);
            if got != want {
                return Err(DurableError::Corrupt(format!(
                    "torn cut at byte {cut}: recovered state diverged from the prefix state"
                )));
            }
            torn_cuts += 1;
        }
        prev_end = rec.end_offset;
    }

    Ok(CrashPointReport { boundaries, records: records.len(), torn_cuts })
}

fn check_boundary(
    image: &[u8],
    wal_prefix: &[u8],
    expected: (u32, u32),
    expected_drops: usize,
) -> Result<(), DurableError> {
    let r = recover_from_bytes(Some(image), wal_prefix)?;
    if r.tail.dropped_records != expected_drops {
        return Err(DurableError::Corrupt(format!(
            "boundary at byte {}: expected {expected_drops} dropped record(s), got {}",
            wal_prefix.len(),
            r.tail.dropped_records
        )));
    }
    let got = state_digest(&r.db, &r.store);
    if got != expected {
        return Err(DurableError::Corrupt(format!(
            "boundary at byte {}: recovered digest {got:?} != reference {expected:?}",
            wal_prefix.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Durability, DurabilityOptions};
    use crate::wal::WalOp;
    use annostore::{Annotation, AnnotationId, AttachmentTarget};
    use relstore::{DataType, TableSchema, Value};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("nebula-durable-harness-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn every_boundary_of_a_mixed_log_recovers_consistently() {
        let dir = temp_dir("mixed");
        let mut db = Database::new();
        let schema = TableSchema::builder("gene").column("name", DataType::Text).build().unwrap();
        db.create_table(schema).unwrap();
        let mut tuples = Vec::new();
        for n in 0..4 {
            tuples.push(db.insert("gene", vec![Value::text(format!("g{n}"))]).unwrap());
        }
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();

        // A mixed run through every op kind, logged then applied.
        let ops = vec![
            WalOp::AddAnnotation {
                expected: AnnotationId(0),
                text: "observed in strain K-12".into(),
                author: Some("curator".into()),
                kind: Some("comment".into()),
            },
            WalOp::AttachTuple { annotation: AnnotationId(0), tuple: tuples[0] },
            WalOp::AttachPredicted {
                annotation: AnnotationId(0),
                tuple: tuples[1],
                confidence: 0.8,
            },
            WalOp::AcceptEdge { annotation: AnnotationId(0), tuple: tuples[1] },
            WalOp::AttachPredicted {
                annotation: AnnotationId(0),
                tuple: tuples[2],
                confidence: 0.4,
            },
            WalOp::RejectEdge { annotation: AnnotationId(0), tuple: tuples[2] },
            WalOp::TupleDeleted { tuple: tuples[3] },
        ];
        for op in &ops {
            d.append(op).unwrap();
            replay_op(&mut db, &mut store, op).unwrap();
        }
        drop(d);

        let report = crash_points(&dir).unwrap();
        assert_eq!(report.records, ops.len());
        assert_eq!(report.boundaries, ops.len() + 1);
        assert_eq!(report.torn_cuts, ops.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_dirty_log_is_refused() {
        let dir = temp_dir("dirty");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.append(&WalOp::AddAnnotation {
            expected: AnnotationId(0),
            text: "x".into(),
            author: None,
            kind: None,
        })
        .unwrap();
        drop(d);
        // Tear the tail by hand.
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        let err = crash_points(&dir).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_distinguishes_states() {
        let db = Database::new();
        let mut store = AnnotationStore::new();
        let base = state_digest(&db, &store);
        let aid = store.add_annotation(Annotation::new("note"));
        assert_ne!(state_digest(&db, &store), base);
        let mut db2 = Database::new();
        let schema = TableSchema::builder("t").column("c", DataType::Int).build().unwrap();
        db2.create_table(schema).unwrap();
        let tid = db2.insert("t", vec![Value::Int(1)]).unwrap();
        store.attach(aid, AttachmentTarget::tuple(tid)).unwrap();
        assert_ne!(state_digest(&db2, &store), state_digest(&db, &store));
    }
}

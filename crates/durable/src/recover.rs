//! Recovery: newest valid checkpoint + idempotent WAL replay with a
//! torn-tail report.
//!
//! ## Invariants
//!
//! - **Prefix consistency** — the recovered state equals replaying exactly
//!   the WAL's valid prefix on top of the checkpoint; nothing past the
//!   first invalid frame is applied, and nothing before it is lost.
//! - **Idempotent replay** — records with `lsn <= watermark` are already
//!   inside the checkpoint image and are skipped, so recovering twice (or
//!   recovering a log whose checkpoint raced ahead) changes nothing.
//! - **No partial application** — a record either replays fully or the
//!   recovery fails with [`DurableError::Replay`]; replay operations are
//!   themselves idempotent store operations (attach is a no-op on an
//!   existing edge, delete on a missing tuple is ignored).

use crate::checkpoint;
use crate::wal::{read_wal, TailReport, WalOp, WAL_FILE};
use crate::{counters, DurableError};
use annostore::{Annotation, AnnotationId, AnnotationStore, AttachmentTarget, StoreError};
use relstore::Database;
use std::path::Path;

/// The outcome of a recovery.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered relational store.
    pub db: Database,
    /// The recovered annotation store.
    pub store: AnnotationStore,
    /// Watermark of the checkpoint the recovery started from.
    pub watermark: u64,
    /// Highest LSN seen (checkpoint watermark or last replayed record).
    pub last_lsn: u64,
    /// Records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Records skipped because the checkpoint already covered them.
    pub skipped: usize,
    /// What the WAL tail looked like (dropped records, reason).
    pub tail: TailReport,
    /// Whether a checkpoint file was found (false = empty-state bootstrap).
    pub had_checkpoint: bool,
    /// When [`crate::Durability::resume`] repaired a torn tail, the LSN
    /// watermark the log was truncated back to (the highest LSN that
    /// survived). `None` when nothing was truncated. Replicas use this to
    /// decide whether WAL shipping can continue from their acked LSN or a
    /// checkpoint transfer is needed.
    pub wal_truncated_to: Option<u64>,
}

/// Apply one WAL operation to the state. Public so the crash-point
/// harness and the replication layer (`nebula-replica`) build their
/// reference and replica states through the same idempotent code path
/// recovery uses.
pub fn replay_op(
    db: &mut Database,
    store: &mut AnnotationStore,
    op: &WalOp,
) -> Result<(), DurableError> {
    match op {
        WalOp::AddAnnotation { expected, text, author, kind } => {
            let next = AnnotationId(store.annotation_count() as u64);
            if expected.0 < next.0 {
                // Already present (checkpoint raced ahead of the
                // watermark is impossible, but double replay is not).
                return Ok(());
            }
            if expected.0 > next.0 {
                return Err(DurableError::Replay(format!(
                    "annotation id gap: log expects {} but store would assign {}",
                    expected.0, next.0
                )));
            }
            let assigned = store.add_annotation(Annotation {
                text: text.clone(),
                author: author.clone(),
                kind: kind.clone(),
            });
            debug_assert_eq!(assigned, *expected);
            Ok(())
        }
        WalOp::AttachTuple { annotation, tuple } | WalOp::AcceptEdge { annotation, tuple } => store
            .attach(*annotation, AttachmentTarget::tuple(*tuple))
            .map_err(|e| replay_err("attach", e)),
        WalOp::AttachCell { annotation, tuple, column } => store
            .attach(*annotation, AttachmentTarget::cell(*tuple, *column))
            .map_err(|e| replay_err("attach cell", e)),
        WalOp::AttachPredicted { annotation, tuple, confidence } => store
            .attach_predicted(*annotation, *tuple, *confidence)
            .map_err(|e| replay_err("attach predicted", e)),
        WalOp::RejectEdge { annotation, tuple } => {
            match store.discard_prediction(*annotation, *tuple) {
                // The edge being gone already is fine: rejection is
                // idempotent under double replay.
                Ok(()) | Err(StoreError::UnknownEdge(..)) => Ok(()),
                Err(e) => Err(replay_err("reject", e)),
            }
        }
        WalOp::TupleDeleted { tuple } => {
            db.delete(*tuple);
            store.on_tuple_deleted(*tuple);
            Ok(())
        }
    }
}

fn replay_err(what: &str, e: StoreError) -> DurableError {
    DurableError::Replay(format!("{what}: {e}"))
}

/// Recover from raw bytes: an optional checkpoint image plus the WAL.
///
/// This is the pure core of [`recover`]; the crash-point harness calls it
/// directly with in-memory prefixes so it never touches the filesystem.
pub fn recover_from_bytes(
    checkpoint_image: Option<&[u8]>,
    wal_bytes: &[u8],
) -> Result<Recovered, DurableError> {
    let _span = nebula_obs::span(counters::SPAN_RECOVER);
    let (watermark, mut db, mut store, had_checkpoint) = match checkpoint_image {
        Some(image) => {
            let (w, db, store) = checkpoint::decode(image)?;
            (w, db, store, true)
        }
        None => (0, Database::new(), AnnotationStore::new(), false),
    };
    let (records, tail) = read_wal(wal_bytes);
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    let mut last_lsn = watermark;
    for rec in &records {
        if rec.lsn <= watermark {
            skipped += 1;
            continue;
        }
        replay_op(&mut db, &mut store, &rec.op).map_err(|e| match e {
            DurableError::Replay(msg) => DurableError::Replay(format!("lsn {}: {msg}", rec.lsn)),
            other => other,
        })?;
        replayed += 1;
        last_lsn = rec.lsn;
    }
    nebula_obs::counter_add(counters::RECOVERIES, 1);
    nebula_obs::counter_add(counters::RECORDS_REPLAYED, replayed as u64);
    nebula_obs::counter_add(counters::RECORDS_SKIPPED, skipped as u64);
    nebula_obs::counter_add(counters::RECORDS_DROPPED, tail.dropped_records as u64);
    Ok(Recovered {
        db,
        store,
        watermark,
        last_lsn,
        replayed,
        skipped,
        tail,
        had_checkpoint,
        wal_truncated_to: None,
    })
}

/// Recover durable state from a directory.
///
/// Tries checkpoints newest-first and falls back to older ones when an
/// image fails validation; replays the WAL's valid prefix on top.
pub fn recover(dir: &Path) -> Result<Recovered, DurableError> {
    let checkpoints = match checkpoint::list_checkpoints(dir) {
        Ok(list) => list,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let wal_path = dir.join(WAL_FILE);
    let wal_bytes = match std::fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    if checkpoints.is_empty() && wal_bytes.is_empty() {
        return Err(DurableError::NotFound(dir.display().to_string()));
    }

    let mut last_error: Option<DurableError> = None;
    for (_, path) in checkpoints.iter().rev() {
        let image = std::fs::read(path)?;
        match recover_from_bytes(Some(&image), &wal_bytes) {
            Ok(recovered) => return Ok(recovered),
            Err(e @ DurableError::Corrupt(_)) => {
                last_error = Some(DurableError::Corrupt(format!(
                    "{}: {e}",
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("checkpoint")
                )));
            }
            Err(e) => return Err(e),
        }
    }
    if let Some(e) = last_error {
        // Every checkpoint on disk failed validation; replaying the WAL
        // against empty state would silently lose the checkpointed data.
        return Err(e);
    }
    if checkpoints.is_empty() {
        // A WAL with no checkpoint: `begin` always writes one first, so
        // this is a damaged directory, not a fresh one.
        return Err(DurableError::Corrupt(format!(
            "{} has a WAL but no checkpoint",
            dir.display()
        )));
    }
    unreachable!("checkpoint loop either returns or records an error");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::encode_record;

    fn log_of(ops: &[(u64, WalOp)]) -> Vec<u8> {
        let mut log = Vec::new();
        for (lsn, op) in ops {
            log.extend_from_slice(&encode_record(*lsn, op));
        }
        log
    }

    fn ann(lsn: u64, id: u64, text: &str) -> (u64, WalOp) {
        (
            lsn,
            WalOp::AddAnnotation {
                expected: AnnotationId(id),
                text: text.to_string(),
                author: None,
                kind: None,
            },
        )
    }

    #[test]
    fn empty_bootstrap_replays_whole_log() {
        let log = log_of(&[ann(1, 0, "a"), ann(2, 1, "b")]);
        let r = recover_from_bytes(None, &log).unwrap();
        assert!(!r.had_checkpoint);
        assert_eq!(r.replayed, 2);
        assert_eq!(r.skipped, 0);
        assert_eq!(r.last_lsn, 2);
        assert_eq!(r.store.annotation_count(), 2);
        assert!(r.tail.is_clean());
    }

    #[test]
    fn watermark_skips_covered_records() {
        // Build checkpoint at watermark 1 holding annotation "a".
        let log = log_of(&[ann(1, 0, "a")]);
        let first = recover_from_bytes(None, &log).unwrap();
        let image = checkpoint::encode(1, &first.db, &first.store);
        // Full log has both records; replay must skip the covered one.
        let full = log_of(&[ann(1, 0, "a"), ann(2, 1, "b")]);
        let r = recover_from_bytes(Some(&image), &full).unwrap();
        assert_eq!(r.skipped, 1);
        assert_eq!(r.replayed, 1);
        assert_eq!(r.store.annotation_count(), 2);
    }

    #[test]
    fn annotation_id_gap_is_a_replay_error() {
        let log = log_of(&[ann(1, 3, "late")]);
        let err = recover_from_bytes(None, &log).unwrap_err();
        assert!(matches!(err, DurableError::Replay(_)), "{err}");
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let mut log = log_of(&[ann(1, 0, "a"), ann(2, 1, "b")]);
        log.truncate(log.len() - 3);
        let r = recover_from_bytes(None, &log).unwrap();
        assert_eq!(r.replayed, 1);
        assert_eq!(r.tail.dropped_records, 1);
        assert!(r.tail.reason.is_some());
    }

    #[test]
    fn missing_directory_state_is_not_found() {
        let dir = std::env::temp_dir().join("nebula-durable-missing-xyzzy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = recover(&dir).unwrap_err();
        assert!(matches!(err, DurableError::NotFound(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

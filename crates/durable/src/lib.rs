//! # nebula-durable — crash-safe durability for the annotation pipeline
//!
//! The relational and annotation stores are in-memory structures; this
//! crate makes their mutations survive a crash:
//!
//! - [`wal`] — an append-only **write-ahead log** of annotation-pipeline
//!   mutations. Every record is length-prefixed, CRC32C-checksummed, and
//!   carries a monotonically increasing log sequence number (LSN).
//! - [`checkpoint`] — periodic **checkpoints** that frame the existing
//!   `NEBREL1`/`NEBANN1` snapshot codecs with a magic, a whole-image
//!   checksum, and the LSN watermark the image covers, then truncate the
//!   log. A checkpoint is read back and verified **before** the old
//!   checkpoint is replaced or the WAL is truncated, so a corrupted image
//!   (e.g. an injected bit flip) never costs data.
//! - [`recover`] — loads the newest valid checkpoint and **replays** the
//!   WAL on top of it. A torn or truncated tail is tolerated: replay stops
//!   at the first record that fails its checksum and the [`TailReport`]
//!   states exactly how many records were dropped. Records at or below the
//!   checkpoint watermark are skipped, making replay idempotent.
//! - [`manager`] — [`Durability`], the [`nebula_core::MutationSink`]
//!   implementation the engine logs through (log **before** apply), with
//!   `nebula-govern` I/O fault injection wired into every write path.
//! - [`segment`] — epoch-stamped replication frames: shipped WAL segments
//!   and checkpoint transfers, the payloads `nebula-replica` moves from a
//!   primary to its replicas.
//! - [`harness`] — the crash-point harness: kills-and-recovers the store at
//!   every log record boundary and asserts the recovered state equals a
//!   reference replay (prefix consistency).
//!
//! All activity is reported through `nebula-obs` under `durable.*` names.

use std::fmt;

pub mod archive;
pub mod checkpoint;
pub mod crc32c;
pub mod harness;
pub mod manager;
pub mod recover;
pub mod scrub;
pub mod segment;
pub mod wal;

pub use archive::{archive_stats, ArchiveStats};
pub use harness::{crash_points, state_digest, CrashPointReport};
pub use manager::{ArchiveConfig, Durability, DurabilityOptions, SyncPolicy};
pub use recover::{recover, recover_from_bytes, replay_op, Recovered};
pub use scrub::{inject_rot, scrub, RotReport, ScrubReport};
pub use segment::{CheckpointFrame, Segment};
pub use wal::{TailReport, WalOp, WalRecord};

/// Counter and span names this crate publishes to `nebula-obs`.
pub mod counters {
    /// WAL records appended.
    pub const RECORDS_APPENDED: &str = "durable.records_appended";
    /// WAL bytes appended.
    pub const BYTES_APPENDED: &str = "durable.bytes_appended";
    /// Successful WAL fsyncs.
    pub const FSYNCS: &str = "durable.fsyncs";
    /// Appends that failed (injected or real I/O errors).
    pub const APPEND_FAILURES: &str = "durable.append_failures";
    /// Checkpoints committed.
    pub const CHECKPOINTS: &str = "durable.checkpoints";
    /// Checkpoints that failed verification or I/O (no data lost).
    pub const CHECKPOINT_FAILURES: &str = "durable.checkpoint_failures";
    /// Recovery runs.
    pub const RECOVERIES: &str = "durable.recoveries";
    /// Records replayed during recovery.
    pub const RECORDS_REPLAYED: &str = "durable.records_replayed";
    /// Already-covered records skipped during recovery (idempotent replay).
    pub const RECORDS_SKIPPED: &str = "durable.records_skipped";
    /// Torn-tail records dropped during recovery.
    pub const RECORDS_DROPPED: &str = "durable.records_dropped";
    /// WAL tails truncated on resume (repair-on-open).
    pub const WAL_TRUNCATIONS: &str = "durable.wal_truncations";
    /// Span: one WAL append.
    pub const SPAN_APPEND: &str = "durable.append";
    /// Span: one checkpoint.
    pub const SPAN_CHECKPOINT: &str = "durable.checkpoint";
    /// Span: one recovery.
    pub const SPAN_RECOVER: &str = "durable.recover";
}

/// Errors from the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An operating-system I/O failure.
    Io(String),
    /// The manager refused an append because a prior torn write or fsync
    /// failure left the on-disk log in an unknown state; recover first.
    Wedged(String),
    /// An (injected) torn write: only `written` of `expected` bytes made it
    /// to disk and the manager is now wedged.
    TornWrite {
        /// Bytes that reached the file.
        written: usize,
        /// Bytes the record needed.
        expected: usize,
    },
    /// An (injected) short write, already repaired by truncating back to
    /// the pre-write offset; the record was not persisted.
    ShortWrite {
        /// Bytes that briefly reached the file.
        written: usize,
        /// Bytes the record needed.
        expected: usize,
    },
    /// An (injected) fsync failure; the manager is now wedged.
    SyncFailed(String),
    /// A checkpoint or WAL image failed validation.
    Corrupt(String),
    /// Replaying a structurally valid record failed against the state —
    /// the checkpoint and log disagree.
    Replay(String),
    /// The directory holds no durable state to recover.
    NotFound(String),
    /// The directory already holds durable state; `begin` refuses to
    /// clobber it (recover or pick a fresh directory).
    DirectoryInUse(String),
    /// A write returned no-space (`ENOSPC`); the write path wedged with
    /// this typed error instead of panicking.
    NoSpace(String),
    /// An archive write failed (torn segment, failed fsync); the
    /// enclosing checkpoint aborted, so the live WAL kept the records.
    Archive(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(msg) => write!(f, "i/o error: {msg}"),
            DurableError::Wedged(why) => {
                write!(f, "log wedged ({why}); run recovery before appending")
            }
            DurableError::TornWrite { written, expected } => {
                write!(f, "torn write: {written} of {expected} bytes persisted")
            }
            DurableError::ShortWrite { written, expected } => {
                write!(f, "short write: {written} of {expected} bytes persisted (repaired)")
            }
            DurableError::SyncFailed(msg) => write!(f, "fsync failed: {msg}"),
            DurableError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            DurableError::Replay(msg) => write!(f, "replay failed: {msg}"),
            DurableError::NotFound(dir) => write!(f, "no durable state in {dir}"),
            DurableError::DirectoryInUse(dir) => {
                write!(f, "{dir} already holds durable state; RECOVER it or use a fresh directory")
            }
            DurableError::NoSpace(what) => {
                write!(f, "no space left on device (enospc) while {what}")
            }
            DurableError::Archive(msg) => write!(f, "archive write failed: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> DurableError {
        DurableError::Io(e.to_string())
    }
}

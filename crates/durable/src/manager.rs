//! [`Durability`] — the live WAL/checkpoint manager the engine logs
//! through.
//!
//! ## Write path
//!
//! [`Durability::append`] encodes one record and writes it to the log,
//! with `nebula-govern` I/O fault sites consulted at every step:
//!
//! 1. **Torn write** — only a prefix of the record reaches the file and
//!    *stays there*, as a real crash mid-write would leave it. The manager
//!    **wedges**: further appends are refused until a checkpoint (which
//!    truncates the log, discarding the torn bytes) or a restart through
//!    [`Durability::resume`] (which truncates to the valid prefix).
//! 2. **Short write** — a prefix reaches the file but the failure is
//!    detected immediately, so the manager truncates back to the pre-write
//!    offset and reports the error; the log stays clean and unwedged.
//! 3. **Fsync failure** — the record bytes are in the file but stable
//!    storage was never confirmed; the manager wedges.
//!
//! Because the engine logs **before** it applies and never applies a
//! mutation whose append failed, the in-memory state always equals the
//! log's valid prefix — which is exactly what wedged-state checkpointing
//! and crash recovery rely on.
//!
//! ## Checkpoint path
//!
//! [`Durability::checkpoint`] writes the framed image to `checkpoint.tmp`,
//! fsyncs it, then **reads it back and fully decodes it** before renaming
//! it into place and truncating the WAL. An injected bit flip (or any real
//! corruption) therefore fails the checkpoint cleanly — the previous
//! checkpoint and the complete WAL still hold every mutation, so nothing
//! is lost.

use crate::archive;
use crate::checkpoint;
use crate::recover::{recover, Recovered};
use crate::wal::{encode_record, WalOp, WAL_FILE};
use crate::{counters, DurableError};
use annostore::AnnotationStore;
use nebula_core::{Mutation, MutationSink, SinkError};
use nebula_govern::{inject_io, FaultSite, IoFault};
use relstore::Database;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When the WAL is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every record — maximum durability, slowest.
    EveryRecord,
    /// Fsync once per batch (the engine flushes at batch end).
    Batch,
}

/// Tuning knobs for [`Durability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Fsync cadence.
    pub sync: SyncPolicy,
    /// Take a checkpoint after this many records (`None` = only on
    /// explicit request).
    pub checkpoint_every: Option<usize>,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None }
    }
}

/// Where (and as whom) a manager archives sealed WAL segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// The archive directory (`segment-*.seg` + `base-*.ckpt` files).
    pub dir: PathBuf,
    /// Epoch stamped into every archived frame.
    pub epoch: u64,
}

/// The live durability manager: an open WAL plus checkpoint bookkeeping.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: File,
    wal_len: u64,
    next_lsn: u64,
    ckpt_seq: u64,
    watermark: u64,
    since_checkpoint: usize,
    options: DurabilityOptions,
    wedged: Option<String>,
    archive: Option<ArchiveConfig>,
}

impl Durability {
    /// Start durability in a fresh directory: write an initial checkpoint
    /// of the current state and open an empty WAL.
    ///
    /// Refuses a directory that already holds durable state
    /// ([`DurableError::DirectoryInUse`]) — recover it or pick another.
    pub fn begin(
        dir: &Path,
        db: &Database,
        store: &AnnotationStore,
        options: DurabilityOptions,
    ) -> Result<Durability, DurableError> {
        Durability::begin_at(dir, db, store, options, 1)
    }

    /// [`Durability::begin`], but the first append gets LSN `first_lsn`
    /// (which must be ≥ 1). The initial checkpoint carries watermark
    /// `first_lsn - 1`, so the new log slots into an existing LSN
    /// sequence — this is how a promoted replica becomes a primary
    /// without renumbering the history it inherited.
    pub fn begin_at(
        dir: &Path,
        db: &Database,
        store: &AnnotationStore,
        options: DurabilityOptions,
        first_lsn: u64,
    ) -> Result<Durability, DurableError> {
        std::fs::create_dir_all(dir)?;
        let existing = checkpoint::list_checkpoints(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let wal_populated = std::fs::metadata(&wal_path).map(|m| m.len() > 0).unwrap_or(false);
        if !existing.is_empty() || wal_populated {
            return Err(DurableError::DirectoryInUse(dir.display().to_string()));
        }
        let wal = OpenOptions::new().create(true).truncate(true).write(true).open(&wal_path)?;
        let mut durability = Durability {
            dir: dir.to_path_buf(),
            wal,
            wal_len: 0,
            next_lsn: first_lsn.max(1),
            ckpt_seq: 1,
            watermark: 0,
            since_checkpoint: 0,
            options,
            wedged: None,
            archive: None,
        };
        durability.checkpoint(db, store)?;
        Ok(durability)
    }

    /// Reopen a directory: recover its state, repair the WAL tail
    /// (truncate to the valid prefix), and return a manager ready to
    /// append, alongside the recovered state. When a torn tail was
    /// truncated, [`Recovered::wal_truncated_to`] carries the surviving
    /// LSN watermark so replication can make its catch-up decision.
    pub fn resume(
        dir: &Path,
        options: DurabilityOptions,
    ) -> Result<(Durability, Recovered), DurableError> {
        let mut recovered = recover(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let mut wal =
            OpenOptions::new().create(true).truncate(false).write(true).open(&wal_path)?;
        if recovered.tail.dropped_bytes > 0 {
            wal.set_len(recovered.tail.valid_bytes as u64)?;
            wal.sync_data()?;
            recovered.wal_truncated_to = Some(recovered.last_lsn);
            nebula_obs::counter_add(counters::WAL_TRUNCATIONS, 1);
        }
        wal.seek(SeekFrom::Start(recovered.tail.valid_bytes as u64))?;
        let ckpt_seq =
            checkpoint::list_checkpoints(dir)?.last().map(|(seq, _)| seq + 1).unwrap_or(1);
        let durability = Durability {
            dir: dir.to_path_buf(),
            wal,
            wal_len: recovered.tail.valid_bytes as u64,
            next_lsn: recovered.last_lsn + 1,
            ckpt_seq,
            watermark: recovered.watermark,
            since_checkpoint: recovered.replayed,
            options,
            wedged: None,
            archive: None,
        };
        Ok((durability, recovered))
    }

    /// Append one operation to the log. Returns the assigned LSN.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, DurableError> {
        let _span = nebula_obs::span(counters::SPAN_APPEND);
        let tspan = nebula_obs::trace::span("durable.append");
        if let Some(why) = &self.wedged {
            nebula_obs::counter_add(counters::APPEND_FAILURES, 1);
            return Err(DurableError::Wedged(why.clone()));
        }
        let lsn = self.next_lsn;
        if tspan.is_active() {
            tspan.detail(format!("lsn={lsn}"));
            nebula_obs::trace::note_lsn(lsn);
        }
        let record = encode_record(lsn, op);

        if let Some(IoFault::NoSpace) = inject_io(FaultSite::Enospc, record.len()) {
            // The filesystem is full: nothing reached the file, but no
            // further append can be trusted until space is freed (a
            // checkpoint truncates the log and unwedges).
            self.wedged = Some(format!("no space left on device before lsn {lsn}"));
            nebula_obs::trace::flight_event(
                "wedge",
                format!("no space left on device before lsn {lsn}"),
            );
            nebula_obs::counter_add(counters::APPEND_FAILURES, 1);
            return Err(DurableError::NoSpace(format!("appending lsn {lsn}")));
        }
        if let Some(IoFault::TornWrite { keep }) = inject_io(FaultSite::TornWrite, record.len()) {
            // A crash mid-write: the prefix stays on disk and the log is
            // in an unknown state until a checkpoint or recovery.
            self.wal.write_all(&record[..keep])?;
            let _ = self.wal.sync_data();
            self.wedged = Some(format!("torn write at lsn {lsn} ({keep} bytes persisted)"));
            nebula_obs::trace::flight_event(
                "wedge",
                format!("torn write at lsn {lsn} ({keep} bytes persisted)"),
            );
            nebula_obs::counter_add(counters::APPEND_FAILURES, 1);
            return Err(DurableError::TornWrite { written: keep, expected: record.len() });
        }
        if let Some(IoFault::ShortWrite { keep }) = inject_io(FaultSite::ShortWrite, record.len()) {
            // Detected immediately: restore the pre-write length so the
            // log stays clean.
            self.wal.write_all(&record[..keep])?;
            self.wal.set_len(self.wal_len)?;
            self.wal.seek(SeekFrom::Start(self.wal_len))?;
            nebula_obs::counter_add(counters::APPEND_FAILURES, 1);
            return Err(DurableError::ShortWrite { written: keep, expected: record.len() });
        }

        self.wal.write_all(&record)?;
        if self.options.sync == SyncPolicy::EveryRecord {
            let fsync_span = nebula_obs::trace::span("durable.fsync");
            if let Some(IoFault::FsyncFail) = inject_io(FaultSite::FsyncFail, record.len()) {
                self.wedged = Some(format!("fsync failed after lsn {lsn}"));
                nebula_obs::trace::flight_event("wedge", format!("fsync failed after lsn {lsn}"));
                nebula_obs::counter_add(counters::APPEND_FAILURES, 1);
                return Err(DurableError::SyncFailed(format!("after lsn {lsn}")));
            }
            self.wal.sync_data()?;
            nebula_obs::counter_add(counters::FSYNCS, 1);
            drop(fsync_span);
        }
        self.wal_len += record.len() as u64;
        self.next_lsn += 1;
        self.since_checkpoint += 1;
        nebula_obs::counter_add(counters::RECORDS_APPENDED, 1);
        nebula_obs::counter_add(counters::BYTES_APPENDED, record.len() as u64);
        Ok(lsn)
    }

    /// Fsync the log (used by the [`SyncPolicy::Batch`] policy at batch
    /// boundaries; a no-op under [`SyncPolicy::EveryRecord`]).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.options.sync != SyncPolicy::Batch || self.wedged.is_some() {
            return Ok(());
        }
        if let Some(IoFault::FsyncFail) = inject_io(FaultSite::FsyncFail, self.wal_len as usize) {
            self.wedged = Some("batch fsync failed".to_string());
            nebula_obs::trace::flight_event("wedge", "batch fsync failed".to_string());
            return Err(DurableError::SyncFailed("batch flush".to_string()));
        }
        self.wal.sync_data()?;
        nebula_obs::counter_add(counters::FSYNCS, 1);
        Ok(())
    }

    /// Take a checkpoint of `db`/`store`, verify it, commit it, and
    /// truncate the WAL. Returns the watermark the checkpoint covers.
    ///
    /// Valid — and the only self-service repair — while wedged: the
    /// in-memory state equals the log's valid prefix (failed appends are
    /// never applied), so persisting it and truncating the log discards
    /// exactly the torn bytes.
    pub fn checkpoint(
        &mut self,
        db: &Database,
        store: &AnnotationStore,
    ) -> Result<u64, DurableError> {
        let _span = nebula_obs::span(counters::SPAN_CHECKPOINT);
        let _tspan = nebula_obs::trace::span("durable.checkpoint");
        let watermark = self.next_lsn - 1;
        let mut image = checkpoint::encode(watermark, db, store);
        if let Some(IoFault::BitFlip { bit }) = inject_io(FaultSite::BitFlip, image.len()) {
            image[bit / 8] ^= 1 << (bit % 8);
        }

        let tmp_path = self.dir.join("checkpoint.tmp");
        let commit = (|| -> Result<(), DurableError> {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&image)?;
            tmp.sync_data()?;
            drop(tmp);
            // Read back and fully decode before committing: a corrupt
            // image (injected bit flip, real disk fault) must never
            // replace a good checkpoint or cost WAL records.
            let reread = std::fs::read(&tmp_path)?;
            checkpoint::decode(&reread)?;
            Ok(())
        })();
        if let Err(e) = commit {
            let _ = std::fs::remove_file(&tmp_path);
            nebula_obs::counter_add(counters::CHECKPOINT_FAILURES, 1);
            return Err(e);
        }
        // Archive before truncating: no WAL byte may be discarded until
        // its sealed archived copy (and the covering base image) is
        // durable. A failed archive write aborts the whole checkpoint —
        // the live WAL and the previous checkpoint still hold everything.
        if let Some(cfg) = self.archive.clone() {
            let sealed = (|| -> Result<(), DurableError> {
                if self.wal_len > 0 {
                    let wal_bytes = std::fs::read(self.dir.join(WAL_FILE))?;
                    let valid = &wal_bytes[..(self.wal_len as usize).min(wal_bytes.len())];
                    // At-rest rot (or a torn write awaiting this very
                    // checkpoint's repair) can damage record bytes inside
                    // the prefix. The base image below carries every
                    // record's effects, so seal only the clean decodable
                    // prefix: restores inside the damaged span come from
                    // the base, and no corrupt bytes enter the archive.
                    let (_, tail) = crate::wal::read_wal(valid);
                    archive::archive_segment(
                        &cfg.dir,
                        cfg.epoch,
                        self.watermark + 1,
                        &valid[..tail.valid_bytes],
                    )?;
                }
                archive::archive_base(&cfg.dir, cfg.epoch, watermark, &image)?;
                Ok(())
            })();
            if let Err(e) = sealed {
                let _ = std::fs::remove_file(&tmp_path);
                nebula_obs::counter_add(counters::CHECKPOINT_FAILURES, 1);
                return Err(e);
            }
        }

        let final_path = self.dir.join(checkpoint::file_name(self.ckpt_seq));
        std::fs::rename(&tmp_path, &final_path)?;

        // The image is durable: the log before the watermark is redundant.
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.sync_data()?;
        self.wal_len = 0;
        self.watermark = watermark;
        self.since_checkpoint = 0;
        self.wedged = None;
        for (seq, path) in checkpoint::list_checkpoints(&self.dir)? {
            if seq < self.ckpt_seq {
                let _ = std::fs::remove_file(path);
            }
        }
        self.ckpt_seq += 1;
        nebula_obs::counter_add(counters::CHECKPOINTS, 1);
        Ok(watermark)
    }

    /// Enable WAL archiving into `dir`, stamping frames with `epoch`.
    ///
    /// The current checkpoint is copied in as the first restore base, so
    /// the archive's restorable range starts at the live watermark; every
    /// later checkpoint seals the WAL into the archive before truncating
    /// it.
    pub fn set_archive(&mut self, dir: &Path, epoch: u64) -> Result<(), DurableError> {
        let newest = checkpoint::list_checkpoints(&self.dir)?
            .into_iter()
            .next_back()
            .ok_or_else(|| DurableError::NotFound(self.dir.display().to_string()))?;
        let image = std::fs::read(newest.1)?;
        let (watermark, _, _) = checkpoint::decode(&image)?;
        archive::archive_base(dir, epoch, watermark, &image)?;
        self.archive = Some(ArchiveConfig { dir: dir.to_path_buf(), epoch });
        Ok(())
    }

    /// The archive directory, when archiving is enabled.
    pub fn archive_dir(&self) -> Option<&Path> {
        self.archive.as_ref().map(|cfg| cfg.dir.as_path())
    }

    /// Survey the archive, when archiving is enabled.
    pub fn archive_stats(&self) -> Option<archive::ArchiveStats> {
        self.archive.as_ref().and_then(|cfg| archive::archive_stats(&cfg.dir).ok())
    }

    /// The directory this manager persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The LSN the next append will use.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The watermark of the last committed checkpoint.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Bytes currently in the WAL's valid prefix.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_len
    }

    /// Is the log wedged (torn write / fsync failure awaiting repair)?
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }
}

impl MutationSink for Durability {
    fn record(&mut self, mutation: &Mutation<'_>) -> Result<u64, SinkError> {
        self.append(&WalOp::from_mutation(mutation)).map_err(|e| SinkError(e.to_string()))
    }

    fn checkpoint_due(&self) -> bool {
        self.options.checkpoint_every.is_some_and(|every| self.since_checkpoint >= every)
    }

    fn checkpoint(&mut self, db: &Database, store: &AnnotationStore) -> Result<u64, SinkError> {
        Durability::checkpoint(self, db, store).map_err(|e| SinkError(e.to_string()))
    }

    fn flush(&mut self) -> Result<(), SinkError> {
        self.sync().map_err(|e| SinkError(e.to_string()))
    }

    fn healthy(&self) -> bool {
        !self.is_wedged()
    }

    fn set_archive(&mut self, dir: &Path) -> Result<(), SinkError> {
        // A standalone log lives in epoch 1 (no failovers to distinguish).
        Durability::set_archive(self, dir, 1).map_err(|e| SinkError(e.to_string()))
    }

    fn archive_dir(&self) -> Option<PathBuf> {
        Durability::archive_dir(self).map(Path::to_path_buf)
    }

    fn describe(&self) -> String {
        let policy = match self.options.sync {
            SyncPolicy::EveryRecord => "every-record",
            SyncPolicy::Batch => "batch",
        };
        let every =
            self.options.checkpoint_every.map_or_else(|| "manual".to_string(), |n| n.to_string());
        let archived = match &self.archive {
            Some(cfg) => match archive::archive_stats(&cfg.dir) {
                Ok(s) => format!(
                    " archive[dir={} segments={} oldest_restorable_lsn={}]",
                    cfg.dir.display(),
                    s.segments,
                    s.oldest_restorable_lsn
                ),
                Err(_) => format!(" archive[dir={} unreadable]", cfg.dir.display()),
            },
            None => String::new(),
        };
        format!(
            "dir={} sync={policy} checkpoint_every={every} next_lsn={} watermark={} \
             wal_bytes={}{}{archived}",
            self.dir.display(),
            self.next_lsn,
            self.watermark,
            self.wal_len,
            if self.wedged.is_some() { " WEDGED" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;
    use annostore::AnnotationId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn op(n: u64) -> WalOp {
        WalOp::AddAnnotation {
            expected: AnnotationId(n),
            text: format!("note {n}"),
            author: None,
            kind: None,
        }
    }

    #[test]
    fn begin_append_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        for n in 0..4u64 {
            let lsn = d.append(&op(n)).unwrap();
            assert_eq!(lsn, n + 1);
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        drop(d);
        let r = recover(&dir).unwrap();
        assert_eq!(r.replayed, 4);
        assert_eq!(r.store.annotation_count(), 4);
        assert_eq!(r.last_lsn, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_refuses_a_directory_in_use() {
        let dir = temp_dir("in-use");
        let db = Database::new();
        let store = AnnotationStore::new();
        let d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        drop(d);
        let err = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap_err();
        assert!(matches!(err, DurableError::DirectoryInUse(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_raises_watermark() {
        let dir = temp_dir("ckpt");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        for n in 0..3u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        assert!(d.wal_bytes() > 0);
        let watermark = d.checkpoint(&db, &store).unwrap();
        assert_eq!(watermark, 3);
        assert_eq!(d.wal_bytes(), 0);
        // One more record after the checkpoint; recovery must skip
        // nothing and replay exactly one.
        d.append(&op(3)).unwrap();
        crate::recover::replay_op(&mut db, &mut store, &op(3)).unwrap();
        drop(d);
        let r = recover(&dir).unwrap();
        assert_eq!(r.watermark, 3);
        assert_eq!(r.replayed, 1);
        assert_eq!(r.skipped, 0);
        assert_eq!(r.store.annotation_count(), 4);
        // Exactly one checkpoint file remains.
        assert_eq!(checkpoint::list_checkpoints(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_the_lsn_sequence() {
        let dir = temp_dir("resume");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        for n in 0..2u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        drop(d);
        let (mut d2, r) = Durability::resume(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(r.replayed, 2);
        assert_eq!(d2.next_lsn(), 3);
        assert_eq!(d2.append(&op(2)).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_repairs_a_torn_tail() {
        let dir = temp_dir("repair");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.append(&op(0)).unwrap();
        let valid = d.wal_bytes();
        drop(d);
        // Tear the log by appending half of a record by hand.
        let torn = encode_record(2, &op(1));
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();

        let (d2, r) = Durability::resume(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(r.tail.dropped_records, 1);
        assert_eq!(
            r.wal_truncated_to,
            Some(1),
            "truncation reports the surviving LSN watermark, not just a counter"
        );
        assert_eq!(d2.wal_bytes(), valid);
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), valid);
        assert_eq!(d2.next_lsn(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_resume_reports_no_truncation() {
        let dir = temp_dir("clean-resume");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.append(&op(0)).unwrap();
        drop(d);
        let (_, r) = Durability::resume(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(r.wal_truncated_to, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_at_slots_into_an_existing_lsn_sequence() {
        let dir = temp_dir("begin-at");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        // A promoted replica at LSN 2 continues the history from LSN 3.
        for n in 0..2u64 {
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        let mut d =
            Durability::begin_at(&dir, &db, &store, DurabilityOptions::default(), 3).unwrap();
        assert_eq!(d.next_lsn(), 3);
        assert_eq!(d.watermark(), 2, "initial checkpoint covers the inherited prefix");
        assert_eq!(d.append(&op(2)).unwrap(), 3);
        drop(d);
        let r = recover(&dir).unwrap();
        assert_eq!(r.watermark, 2);
        assert_eq!(r.replayed, 1);
        assert_eq!(r.last_lsn, 3);
        assert_eq!(r.store.annotation_count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_wedges_until_checkpoint() {
        let dir = temp_dir("wedge");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.append(&op(0)).unwrap();
        crate::recover::replay_op(&mut db, &mut store, &op(0)).unwrap();

        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(0xDEAD_BEEF).with_torn_writes(1.0),
        ));
        let err = d.append(&op(1)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::TornWrite { .. }), "{err}");
        assert!(d.is_wedged());
        // While wedged, appends are refused...
        assert!(matches!(d.append(&op(1)), Err(DurableError::Wedged(_))));
        // ...but the on-disk log still recovers to the applied prefix.
        let r = recover(&dir).unwrap();
        assert_eq!(r.store.annotation_count(), 1);
        // A checkpoint repairs the log and unwedges the manager.
        d.checkpoint(&db, &store).unwrap();
        assert!(!d.is_wedged());
        d.append(&op(1)).unwrap();
        crate::recover::replay_op(&mut db, &mut store, &op(1)).unwrap();
        drop(d);
        let r = recover(&dir).unwrap();
        assert_eq!(r.store.annotation_count(), 2);
        assert!(r.tail.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_self_repairs() {
        let dir = temp_dir("short");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.append(&op(0)).unwrap();
        let before = d.wal_bytes();

        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(7).with_short_writes(1.0),
        ));
        let err = d.append(&op(1)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::ShortWrite { .. }), "{err}");
        assert!(!d.is_wedged());
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), before);
        // The retry goes straight through with the same LSN.
        assert_eq!(d.append(&op(1)).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_fails_the_checkpoint_without_losing_data() {
        let dir = temp_dir("flip");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        for n in 0..3u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        nebula_govern::set_fault_plan(Some(nebula_govern::FaultPlan::new(99).with_bit_flips(1.0)));
        let err = d.checkpoint(&db, &store).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::Corrupt(_)), "{err}");
        // WAL untouched, old checkpoint still valid, no tmp file left.
        assert!(d.wal_bytes() > 0);
        assert!(!dir.join("checkpoint.tmp").exists());
        let r = recover(&dir).unwrap();
        assert_eq!(r.store.annotation_count(), 3);
        // And a clean checkpoint succeeds afterwards.
        d.checkpoint(&db, &store).unwrap();
        assert_eq!(d.wal_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_seal_the_wal_into_the_archive_before_truncating() {
        let dir = temp_dir("archive-seal");
        let arch = temp_dir("archive-seal-dest");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.set_archive(&arch, 1).unwrap();
        for n in 0..3u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        d.checkpoint(&db, &store).unwrap();
        for n in 3..5u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        d.checkpoint(&db, &store).unwrap();
        let stats = d.archive_stats().unwrap();
        assert_eq!(stats.segments, 2, "one sealed segment per truncating checkpoint");
        assert_eq!(stats.bases, 3, "set_archive base + one per checkpoint");
        assert_eq!(stats.oldest_restorable_lsn, 0);
        assert_eq!(stats.newest_lsn, 5);
        // The sealed segments replay to exactly the live history.
        let segs = crate::archive::list_segments(&arch).unwrap();
        let first = crate::segment::decode_segment(&std::fs::read(&segs[0].1).unwrap()).unwrap();
        assert_eq!(first.base_lsn, 1);
        assert_eq!(first.records.len(), 3);
        let second = crate::segment::decode_segment(&std::fs::read(&segs[1].1).unwrap()).unwrap();
        assert_eq!(second.base_lsn, 4);
        assert_eq!(second.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&arch);
    }

    #[test]
    fn a_failed_archive_write_aborts_the_checkpoint_and_keeps_the_wal() {
        let dir = temp_dir("archive-abort");
        let arch = temp_dir("archive-abort-dest");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        d.set_archive(&arch, 1).unwrap();
        for n in 0..2u64 {
            d.append(&op(n)).unwrap();
            crate::recover::replay_op(&mut db, &mut store, &op(n)).unwrap();
        }
        let wal_before = d.wal_bytes();
        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(17).with_archive_faults(1.0, 0.0, 0.0),
        ));
        let err = d.checkpoint(&db, &store).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::Archive(_)), "{err}");
        assert_eq!(d.wal_bytes(), wal_before, "the WAL kept what the archive failed to take");
        assert_eq!(d.watermark(), 0);
        // Recovery still sees everything, and a clean retry succeeds.
        let r = recover(&dir).unwrap();
        assert_eq!(r.store.annotation_count(), 2);
        d.checkpoint(&db, &store).unwrap();
        assert_eq!(d.archive_stats().unwrap().newest_lsn, 2);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&arch);
    }

    #[test]
    fn enospc_wedges_the_append_path_until_checkpoint() {
        let dir = temp_dir("enospc-wedge");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        nebula_govern::set_fault_plan(Some(nebula_govern::FaultPlan::new(8).with_enospc(1.0)));
        let err = d.append(&op(0)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::NoSpace(_)), "{err}");
        assert!(d.is_wedged());
        assert!(!MutationSink::healthy(&d), "the sink reports unhealthy so ingest sheds");
        assert!(matches!(d.append(&op(0)), Err(DurableError::Wedged(_))));
        assert_eq!(d.wal_bytes(), 0, "enospc persisted nothing");
        // Space freed: a checkpoint unwedges and appends flow again.
        d.checkpoint(&db, &store).unwrap();
        d.append(&op(0)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_wedges_but_recovery_may_replay_the_record() {
        let dir = temp_dir("fsync");
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut d = Durability::begin(&dir, &db, &store, DurabilityOptions::default()).unwrap();
        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(5).with_fsync_failures(1.0),
        ));
        let err = d.append(&op(0)).unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, DurableError::SyncFailed(_)), "{err}");
        assert!(d.is_wedged());
        // The record bytes reached the file; standard WAL semantics allow
        // a logged-but-unapplied record to replay on recovery.
        let r = recover(&dir).unwrap();
        assert!(r.store.annotation_count() <= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

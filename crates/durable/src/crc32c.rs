//! CRC32C (Castagnoli), the checksum guarding WAL records and checkpoint
//! images.
//!
//! Table-driven software implementation built at compile time — no
//! dependencies, no runtime initialization. CRC32C is preferred over
//! CRC32 (IEEE) for storage because its polynomial detects more of the
//! short-burst errors torn writes produce; it is the checksum used by
//! iSCSI, ext4, and RocksDB logs.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over more data (`seed` is a previous `crc32c` result).
pub fn crc32c_append(seed: u32, data: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let (a, b) = data.split_at(17);
        assert_eq!(crc32c_append(crc32c(a), b), crc32c(data));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let data = b"nebula durable log record";
        let base = crc32c(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.to_vec();
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}

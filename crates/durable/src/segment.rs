//! Epoch-stamped replication frames: WAL segments and checkpoint
//! transfers.
//!
//! WAL shipping moves two payload kinds from a primary to its replicas:
//!
//! - a **segment** — a contiguous run of already-encoded WAL record
//!   frames, so the bytes a replica replays are byte-identical to the
//!   bytes the primary's log holds; and
//! - a **checkpoint transfer** — a full checkpoint image (the `NEBCKPT1`
//!   framing from [`crate::checkpoint`]) for replicas that have fallen
//!   behind the primary's truncated log.
//!
//! Both are wrapped in a magic + CRC32C envelope that additionally stamps
//! the primary's **epoch**. The epoch is the fencing token of failover:
//! promotion bumps it, every frame carries it, and a receiver holding a
//! higher epoch rejects the frame — which is how a deposed primary's
//! writes die on the wire instead of forking history.

use crate::crc32c::crc32c;
use crate::wal::{read_wal, WalRecord};
use crate::DurableError;

/// Magic prefix of a shipped WAL segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"NEBSEG01";
/// Magic prefix of a shipped checkpoint transfer.
pub const CKPT_FRAME_MAGIC: &[u8; 8] = b"NEBSCP01";

/// A decoded, validated WAL segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The shipping primary's epoch.
    pub epoch: u64,
    /// LSN of the first record (0 when the segment is empty).
    pub base_lsn: u64,
    /// The records, decoded through the same [`read_wal`] path recovery
    /// uses.
    pub records: Vec<WalRecord>,
}

/// A decoded, validated checkpoint transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFrame {
    /// The shipping primary's epoch.
    pub epoch: u64,
    /// The raw `NEBCKPT1` image; decode with [`crate::checkpoint::decode`].
    pub image: Vec<u8>,
}

/// Frame a run of already-encoded WAL record bytes as one epoch-stamped
/// segment. `records` is the concatenation of [`crate::wal::encode_record`]
/// outputs, `count` of them, the first at `base_lsn`.
pub fn encode_segment(epoch: u64, base_lsn: u64, count: u32, records: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(20 + records.len());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(&base_lsn.to_le_bytes());
    body.extend_from_slice(&count.to_le_bytes());
    body.extend_from_slice(records);
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode and fully validate a shipped segment: magic, whole-frame
/// checksum, per-record checksums (via [`read_wal`]), record count, and
/// LSN contiguity from `base_lsn`.
pub fn decode_segment(bytes: &[u8]) -> Result<Segment, DurableError> {
    let body = check_envelope(bytes, SEGMENT_MAGIC, "segment")?;
    if body.len() < 20 {
        return Err(DurableError::Corrupt("segment body shorter than its header".into()));
    }
    let epoch = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let base_lsn = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(body[16..20].try_into().expect("4 bytes"));
    let (records, tail) = read_wal(&body[20..]);
    if !tail.is_clean() {
        return Err(DurableError::Corrupt(format!(
            "segment drops {} record(s): {}",
            tail.dropped_records,
            tail.reason.as_deref().unwrap_or("unknown reason")
        )));
    }
    if records.len() != count as usize {
        return Err(DurableError::Corrupt(format!(
            "segment claims {count} record(s) but holds {}",
            records.len()
        )));
    }
    for (i, rec) in records.iter().enumerate() {
        if rec.lsn != base_lsn + i as u64 {
            return Err(DurableError::Corrupt(format!(
                "segment record {i} has lsn {} but the run starts at {base_lsn}",
                rec.lsn
            )));
        }
    }
    Ok(Segment { epoch, base_lsn, records })
}

/// Frame a checkpoint image as one epoch-stamped transfer.
pub fn encode_checkpoint_frame(epoch: u64, image: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + image.len());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(image);
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(CKPT_FRAME_MAGIC);
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode and validate a checkpoint transfer envelope. The inner image is
/// returned as-is; [`crate::checkpoint::decode`] validates it separately.
pub fn decode_checkpoint_frame(bytes: &[u8]) -> Result<CheckpointFrame, DurableError> {
    let body = check_envelope(bytes, CKPT_FRAME_MAGIC, "checkpoint transfer")?;
    if body.len() < 8 {
        return Err(DurableError::Corrupt("checkpoint transfer missing its epoch".into()));
    }
    let epoch = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    Ok(CheckpointFrame { epoch, image: body[8..].to_vec() })
}

fn check_envelope<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    what: &str,
) -> Result<&'a [u8], DurableError> {
    if bytes.len() < 12 || &bytes[0..8] != magic {
        return Err(DurableError::Corrupt(format!("not a {what} frame")));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    if crc32c(body) != stored {
        return Err(DurableError::Corrupt(format!("{what} frame failed its checksum")));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, WalOp};
    use annostore::AnnotationId;

    fn op(n: u64) -> WalOp {
        WalOp::AddAnnotation {
            expected: AnnotationId(n),
            text: format!("note {n}"),
            author: None,
            kind: None,
        }
    }

    fn run(base: u64, n: u64) -> (u32, Vec<u8>) {
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend_from_slice(&encode_record(base + i, &op(i)));
        }
        (n as u32, bytes)
    }

    #[test]
    fn segment_roundtrip_preserves_epoch_and_records() {
        let (count, bytes) = run(5, 3);
        let framed = encode_segment(7, 5, count, &bytes);
        let seg = decode_segment(&framed).unwrap();
        assert_eq!(seg.epoch, 7);
        assert_eq!(seg.base_lsn, 5);
        assert_eq!(seg.records.len(), 3);
        assert_eq!(seg.records[2].lsn, 7);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let framed = encode_segment(2, 0, 0, &[]);
        let seg = decode_segment(&framed).unwrap();
        assert_eq!(seg.records.len(), 0);
    }

    #[test]
    fn corrupted_segment_is_rejected() {
        let (count, bytes) = run(1, 2);
        let mut framed = encode_segment(1, 1, count, &bytes);
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        assert!(matches!(decode_segment(&framed), Err(DurableError::Corrupt(_))));
    }

    #[test]
    fn wrong_count_and_gapped_lsns_are_rejected() {
        let (_, bytes) = run(1, 2);
        let framed = encode_segment(1, 1, 3, &bytes);
        assert!(matches!(decode_segment(&framed), Err(DurableError::Corrupt(_))));
        // A gap: records at lsn 1 then lsn 3.
        let mut gapped = encode_record(1, &op(0));
        gapped.extend_from_slice(&encode_record(3, &op(1)));
        let framed = encode_segment(1, 1, 2, &gapped);
        assert!(matches!(decode_segment(&framed), Err(DurableError::Corrupt(_))));
    }

    #[test]
    fn checkpoint_frame_roundtrips_and_rejects_flips() {
        let image = vec![1u8, 2, 3, 4, 5];
        let framed = encode_checkpoint_frame(9, &image);
        let f = decode_checkpoint_frame(&framed).unwrap();
        assert_eq!(f.epoch, 9);
        assert_eq!(f.image, image);
        let mut bad = framed.clone();
        bad[14] ^= 1;
        assert!(matches!(decode_checkpoint_frame(&bad), Err(DurableError::Corrupt(_))));
        assert!(matches!(decode_segment(&framed), Err(DurableError::Corrupt(_))), "wrong magic");
    }
}

//! The write-ahead log record codec and the torn-tail-tolerant reader.
//!
//! ## Record layout
//!
//! Every record is framed as:
//!
//! ```text
//! u32 payload_len   (little-endian; length of payload only)
//! u32 crc32c        (over the payload bytes)
//! payload:
//!   u64 lsn         (monotonically increasing log sequence number)
//!   u8  op_tag
//!   ... op fields (see the tag constants)
//! ```
//!
//! Strings are `u32 len + UTF-8 bytes`; optional strings carry a one-byte
//! presence flag; tuple ids are `u32 table + u64 row`.
//!
//! ## Tail tolerance
//!
//! [`read_wal`] parses records until the first frame that is incomplete,
//! fails its checksum, decodes to garbage, or breaks LSN monotonicity.
//! Everything before that point is the **valid prefix**; everything after
//! is counted — by walking the surviving length prefixes — so the
//! [`TailReport`] can state exactly how many records were dropped. The
//! count is exact for truncations and payload corruption; if a length
//! field itself was corrupted the walk (and therefore the count) is
//! best-effort beyond that frame.

use crate::crc32c::crc32c;
use annostore::AnnotationId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nebula_core::Mutation;
use relstore::schema::{ColumnId, TableId};
use relstore::TupleId;

/// The WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame header bytes (`payload_len` + `crc32c`).
pub const HEADER_BYTES: usize = 8;

/// Smallest possible payload: the LSN and the op tag.
const MIN_PAYLOAD: usize = 9;

/// Sanity cap on one record; anything larger is treated as corruption.
const MAX_PAYLOAD: usize = 1 << 24;

const TAG_ADD_ANNOTATION: u8 = 1;
const TAG_ATTACH_TUPLE: u8 = 2;
const TAG_ATTACH_CELL: u8 = 3;
const TAG_ATTACH_PREDICTED: u8 = 4;
const TAG_ACCEPT_EDGE: u8 = 5;
const TAG_REJECT_EDGE: u8 = 6;
const TAG_TUPLE_DELETED: u8 = 7;

/// One logged mutation, in owned form.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A new annotation; `expected` is the id the store must assign.
    AddAnnotation {
        /// The id the store must assign on replay.
        expected: AnnotationId,
        /// Annotation text.
        text: String,
        /// Optional author.
        author: Option<String>,
        /// Optional kind.
        kind: Option<String>,
    },
    /// A true whole-tuple attachment.
    AttachTuple {
        /// Attaching annotation.
        annotation: AnnotationId,
        /// Target tuple.
        tuple: TupleId,
    },
    /// A curated attachment refined to one cell.
    AttachCell {
        /// Attaching annotation.
        annotation: AnnotationId,
        /// Target tuple.
        tuple: TupleId,
        /// Target column.
        column: ColumnId,
    },
    /// A predicted attachment.
    AttachPredicted {
        /// Attaching annotation.
        annotation: AnnotationId,
        /// Predicted target tuple.
        tuple: TupleId,
        /// Prediction confidence.
        confidence: f64,
    },
    /// A predicted edge promoted to true.
    AcceptEdge {
        /// Attaching annotation.
        annotation: AnnotationId,
        /// Accepted tuple.
        tuple: TupleId,
    },
    /// A predicted edge discarded.
    RejectEdge {
        /// Attaching annotation.
        annotation: AnnotationId,
        /// Rejected tuple.
        tuple: TupleId,
    },
    /// A tuple deleted from the relational store.
    TupleDeleted {
        /// Deleted tuple.
        tuple: TupleId,
    },
}

impl WalOp {
    /// Owned WAL form of an engine [`Mutation`].
    pub fn from_mutation(m: &Mutation<'_>) -> WalOp {
        match *m {
            Mutation::AddAnnotation { expected, annotation } => WalOp::AddAnnotation {
                expected,
                text: annotation.text.clone(),
                author: annotation.author.clone(),
                kind: annotation.kind.clone(),
            },
            Mutation::AttachTuple { annotation, tuple } => WalOp::AttachTuple { annotation, tuple },
            Mutation::AttachCell { annotation, tuple, column } => {
                WalOp::AttachCell { annotation, tuple, column }
            }
            Mutation::AttachPredicted { annotation, tuple, confidence } => {
                WalOp::AttachPredicted { annotation, tuple, confidence }
            }
            Mutation::AcceptEdge { annotation, tuple } => WalOp::AcceptEdge { annotation, tuple },
            Mutation::RejectEdge { annotation, tuple } => WalOp::RejectEdge { annotation, tuple },
            Mutation::TupleDeleted { tuple } => WalOp::TupleDeleted { tuple },
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WalOp::AddAnnotation { .. } => TAG_ADD_ANNOTATION,
            WalOp::AttachTuple { .. } => TAG_ATTACH_TUPLE,
            WalOp::AttachCell { .. } => TAG_ATTACH_CELL,
            WalOp::AttachPredicted { .. } => TAG_ATTACH_PREDICTED,
            WalOp::AcceptEdge { .. } => TAG_ACCEPT_EDGE,
            WalOp::RejectEdge { .. } => TAG_REJECT_EDGE,
            WalOp::TupleDeleted { .. } => TAG_TUPLE_DELETED,
        }
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_opt_string(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        Some(s) => {
            buf.put_u8(1);
            put_string(buf, s);
        }
        None => buf.put_u8(0),
    }
}

fn put_tuple(buf: &mut BytesMut, t: TupleId) {
    buf.put_u32_le(t.table.0);
    buf.put_u64_le(t.row);
}

/// Encode one record (header + payload) ready to append.
pub fn encode_record(lsn: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u64_le(lsn);
    payload.put_u8(op.tag());
    match op {
        WalOp::AddAnnotation { expected, text, author, kind } => {
            payload.put_u64_le(expected.0);
            put_string(&mut payload, text);
            put_opt_string(&mut payload, author);
            put_opt_string(&mut payload, kind);
        }
        WalOp::AttachTuple { annotation, tuple }
        | WalOp::AcceptEdge { annotation, tuple }
        | WalOp::RejectEdge { annotation, tuple } => {
            payload.put_u64_le(annotation.0);
            put_tuple(&mut payload, *tuple);
        }
        WalOp::AttachCell { annotation, tuple, column } => {
            payload.put_u64_le(annotation.0);
            put_tuple(&mut payload, *tuple);
            payload.put_u32_le(column.0);
        }
        WalOp::AttachPredicted { annotation, tuple, confidence } => {
            payload.put_u64_le(annotation.0);
            put_tuple(&mut payload, *tuple);
            payload.put_f64_le(*confidence);
        }
        WalOp::TupleDeleted { tuple } => put_tuple(&mut payload, *tuple),
    }
    let mut frame = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32c(&payload));
    frame.put_slice(&payload);
    frame.freeze().to_vec()
}

fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), String> {
    if buf.remaining() < n {
        Err(format!("payload truncated reading {what}"))
    } else {
        Ok(())
    }
}

fn get_string(buf: &mut Bytes) -> Result<String, String> {
    need(buf, 4, "string length")?;
    let len = buf.get_u32_le() as usize;
    if len > buf.remaining() {
        return Err(format!("string length {len} exceeds payload"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| "invalid UTF-8".to_string())
}

fn get_opt_string(buf: &mut Bytes) -> Result<Option<String>, String> {
    need(buf, 1, "presence flag")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => get_string(buf).map(Some),
        other => Err(format!("bad presence flag {other}")),
    }
}

fn get_tuple(buf: &mut Bytes) -> Result<TupleId, String> {
    need(buf, 12, "tuple id")?;
    let table = TableId(buf.get_u32_le());
    let row = buf.get_u64_le();
    Ok(TupleId::new(table, row))
}

fn get_annotation_id(buf: &mut Bytes) -> Result<AnnotationId, String> {
    need(buf, 8, "annotation id")?;
    Ok(AnnotationId(buf.get_u64_le()))
}

/// Decode one payload (after its checksum was verified).
fn decode_payload(payload: &[u8]) -> Result<(u64, WalOp), String> {
    let mut buf = Bytes::copy_from_slice(payload);
    need(&buf, MIN_PAYLOAD, "record head")?;
    let lsn = buf.get_u64_le();
    let tag = buf.get_u8();
    let op = match tag {
        TAG_ADD_ANNOTATION => {
            let expected = get_annotation_id(&mut buf)?;
            let text = get_string(&mut buf)?;
            let author = get_opt_string(&mut buf)?;
            let kind = get_opt_string(&mut buf)?;
            WalOp::AddAnnotation { expected, text, author, kind }
        }
        TAG_ATTACH_TUPLE => WalOp::AttachTuple {
            annotation: get_annotation_id(&mut buf)?,
            tuple: get_tuple(&mut buf)?,
        },
        TAG_ATTACH_CELL => WalOp::AttachCell {
            annotation: get_annotation_id(&mut buf)?,
            tuple: get_tuple(&mut buf)?,
            column: {
                need(&buf, 4, "column id")?;
                ColumnId(buf.get_u32_le())
            },
        },
        TAG_ATTACH_PREDICTED => WalOp::AttachPredicted {
            annotation: get_annotation_id(&mut buf)?,
            tuple: get_tuple(&mut buf)?,
            confidence: {
                need(&buf, 8, "confidence")?;
                buf.get_f64_le()
            },
        },
        TAG_ACCEPT_EDGE => WalOp::AcceptEdge {
            annotation: get_annotation_id(&mut buf)?,
            tuple: get_tuple(&mut buf)?,
        },
        TAG_REJECT_EDGE => WalOp::RejectEdge {
            annotation: get_annotation_id(&mut buf)?,
            tuple: get_tuple(&mut buf)?,
        },
        TAG_TUPLE_DELETED => WalOp::TupleDeleted { tuple: get_tuple(&mut buf)? },
        other => return Err(format!("unknown op tag {other}")),
    };
    if !buf.is_empty() {
        return Err(format!("{} trailing payload bytes", buf.remaining()));
    }
    Ok((lsn, op))
}

/// One decoded record plus where its frame ends in the byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// The logged mutation.
    pub op: WalOp,
    /// Byte offset one past this record's frame (a valid crash point).
    pub end_offset: usize,
}

/// What [`read_wal`] found past the valid prefix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TailReport {
    /// Records in the valid prefix.
    pub valid_records: usize,
    /// Bytes in the valid prefix.
    pub valid_bytes: usize,
    /// Records dropped after the first invalid frame (exact for
    /// truncation and payload corruption; a partial trailing frame counts
    /// as one).
    pub dropped_records: usize,
    /// Bytes dropped.
    pub dropped_bytes: usize,
    /// Why parsing stopped, when it did not consume the whole buffer.
    pub reason: Option<String>,
}

impl TailReport {
    /// Did the whole buffer parse as valid records?
    pub fn is_clean(&self) -> bool {
        self.dropped_records == 0 && self.dropped_bytes == 0
    }
}

/// Parse a WAL byte stream into its valid prefix plus a tail report.
pub fn read_wal(bytes: &[u8]) -> (Vec<WalRecord>, TailReport) {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut offset = 0usize;
    let mut last_lsn: Option<u64> = None;
    let mut reason: Option<String> = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < HEADER_BYTES {
            reason = Some(format!("truncated frame header at byte {offset}"));
            break;
        }
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
            reason = Some(format!("implausible payload length {len} at byte {offset}"));
            break;
        }
        if len > remaining - HEADER_BYTES {
            reason = Some(format!("truncated record body at byte {offset}"));
            break;
        }
        let stored_crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        let payload = &bytes[offset + HEADER_BYTES..offset + HEADER_BYTES + len];
        if crc32c(payload) != stored_crc {
            reason = Some(format!("checksum mismatch at byte {offset}"));
            break;
        }
        match decode_payload(payload) {
            Err(e) => {
                reason = Some(format!("undecodable record at byte {offset}: {e}"));
                break;
            }
            Ok((lsn, op)) => {
                if last_lsn.is_some_and(|prev| lsn <= prev) {
                    reason = Some(format!("non-monotonic lsn {lsn} at byte {offset}"));
                    break;
                }
                last_lsn = Some(lsn);
                offset += HEADER_BYTES + len;
                records.push(WalRecord { lsn, op, end_offset: offset });
            }
        }
    }

    // Count what the invalid tail held by walking the surviving length
    // prefixes; a final partial frame counts as one record.
    let valid_bytes = offset;
    let mut dropped_records = 0usize;
    let mut walk = offset;
    while walk < bytes.len() {
        let remaining = bytes.len() - walk;
        dropped_records += 1;
        if remaining < HEADER_BYTES {
            break;
        }
        let len =
            u32::from_le_bytes([bytes[walk], bytes[walk + 1], bytes[walk + 2], bytes[walk + 3]])
                as usize;
        if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) || len > remaining - HEADER_BYTES {
            break;
        }
        walk += HEADER_BYTES + len;
    }
    let report = TailReport {
        valid_records: records.len(),
        valid_bytes,
        dropped_records,
        dropped_bytes: bytes.len() - valid_bytes,
        reason,
    };
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::AddAnnotation {
                expected: AnnotationId(0),
                text: "from the exp, gene JW0001".into(),
                author: Some("alice".into()),
                kind: None,
            },
            WalOp::AttachTuple { annotation: AnnotationId(0), tuple: t(3) },
            WalOp::AttachCell { annotation: AnnotationId(0), tuple: t(3), column: ColumnId(1) },
            WalOp::AttachPredicted { annotation: AnnotationId(0), tuple: t(4), confidence: 0.75 },
            WalOp::AcceptEdge { annotation: AnnotationId(0), tuple: t(4) },
            WalOp::RejectEdge { annotation: AnnotationId(0), tuple: t(5) },
            WalOp::TupleDeleted { tuple: t(5) },
        ]
    }

    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        for (i, op) in sample_ops().iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, op));
        }
        log
    }

    #[test]
    fn roundtrip_all_ops() {
        let log = sample_log();
        let (records, tail) = read_wal(&log);
        assert!(tail.is_clean(), "{tail:?}");
        assert_eq!(records.len(), sample_ops().len());
        for (rec, op) in records.iter().zip(sample_ops()) {
            assert_eq!(rec.op, op);
        }
        assert_eq!(records.last().map(|r| r.end_offset), Some(log.len()));
    }

    #[test]
    fn every_truncation_reports_exactly_one_dropped_record() {
        let one = encode_record(1, &sample_ops()[0]);
        for cut in 0..one.len() {
            let (records, tail) = read_wal(&one[..cut]);
            if cut == 0 {
                assert!(tail.is_clean());
                continue;
            }
            assert!(records.is_empty());
            assert_eq!(tail.dropped_records, 1, "cut at {cut}");
            assert_eq!(tail.dropped_bytes, cut);
            assert!(tail.reason.is_some());
        }
    }

    #[test]
    fn corrupt_mid_log_record_preserves_prefix_and_counts_drops_exactly() {
        let log = sample_log();
        let (full, _) = read_wal(&log);
        // Flip a bit in record 4's stored checksum: 3 valid, 4 dropped
        // (the corrupt one plus the three intact frames behind it, counted
        // exactly because every length prefix survives).
        let mut bad = log.clone();
        bad[full[2].end_offset + 4] ^= 0x01;
        let (records, tail) = read_wal(&bad);
        assert_eq!(records.len(), 3);
        assert_eq!(tail.valid_bytes, full[2].end_offset);
        assert_eq!(tail.dropped_records, 4);
        assert_eq!(tail.dropped_bytes, log.len() - full[2].end_offset);
    }

    #[test]
    fn payload_bit_flip_drops_exactly_the_corrupt_record() {
        let log = sample_log();
        let (full, _) = read_wal(&log);
        // Flip one payload bit in record 2 (offset inside its payload).
        let start = full[0].end_offset;
        let mut bad = log.clone();
        bad[start + HEADER_BYTES + 9] ^= 0x10;
        let (records, tail) = read_wal(&bad);
        assert_eq!(records.len(), 1);
        assert_eq!(tail.dropped_records, full.len() - 1, "corrupt + everything behind it");
        assert!(tail.reason.as_deref().unwrap_or("").contains("checksum"));
    }

    #[test]
    fn lsn_regression_stops_parsing() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(5, &sample_ops()[1]));
        log.extend_from_slice(&encode_record(5, &sample_ops()[2]));
        let (records, tail) = read_wal(&log);
        assert_eq!(records.len(), 1);
        assert_eq!(tail.dropped_records, 1);
        assert!(tail.reason.as_deref().unwrap_or("").contains("non-monotonic"));
    }
}

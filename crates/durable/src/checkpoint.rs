//! Checkpoint image framing: the existing `NEBREL1`/`NEBANN1` snapshot
//! codecs wrapped in a magic, a whole-image checksum, and the LSN
//! watermark the image covers.
//!
//! ```text
//! [0..8)   magic  b"NEBCKPT1"
//! [8..12)  u32    crc32c(body)
//! [12..)   body:
//!            u64 watermark       (highest LSN the image includes)
//!            u32 rel_len
//!            rel_len bytes       (NEBREL1 relational snapshot)
//!            u32 ann_len
//!            ann_len bytes       (NEBANN1 annotation snapshot)
//! ```
//!
//! The checksum covers the body only, so a bit flip anywhere in either
//! embedded snapshot (or the watermark) is caught before the snapshots
//! are even parsed.

use crate::crc32c::crc32c;
use crate::DurableError;
use annostore::AnnotationStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use relstore::Database;
use std::path::{Path, PathBuf};

/// Leading magic of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"NEBCKPT1";

/// Encode a checkpoint image covering everything up to `watermark`.
pub fn encode(watermark: u64, db: &Database, store: &AnnotationStore) -> Vec<u8> {
    let rel = relstore::snapshot::save(db);
    let ann = annostore::snapshot::save(store);
    let mut body = BytesMut::with_capacity(16 + rel.len() + ann.len());
    body.put_u64_le(watermark);
    body.put_u32_le(rel.len() as u32);
    body.put_slice(&rel);
    body.put_u32_le(ann.len() as u32);
    body.put_slice(&ann);
    let mut image = BytesMut::with_capacity(12 + body.len());
    image.put_slice(MAGIC);
    image.put_u32_le(crc32c(&body));
    image.put_slice(&body);
    image.freeze().to_vec()
}

/// Decode and fully validate a checkpoint image.
pub fn decode(bytes: &[u8]) -> Result<(u64, Database, AnnotationStore), DurableError> {
    if bytes.len() < 12 {
        return Err(DurableError::Corrupt(format!(
            "checkpoint too small ({} bytes) for its header",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(DurableError::Corrupt("bad checkpoint magic".to_string()));
    }
    let stored_crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let body = &bytes[12..];
    if crc32c(body) != stored_crc {
        return Err(DurableError::Corrupt("checkpoint checksum mismatch".to_string()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    if buf.remaining() < 12 {
        return Err(DurableError::Corrupt("checkpoint body truncated".to_string()));
    }
    let watermark = buf.get_u64_le();
    let rel_len = buf.get_u32_le() as usize;
    if rel_len > buf.remaining() {
        return Err(DurableError::Corrupt(format!(
            "relational snapshot length {rel_len} exceeds checkpoint body"
        )));
    }
    let rel_bytes = buf.copy_to_bytes(rel_len);
    if buf.remaining() < 4 {
        return Err(DurableError::Corrupt("checkpoint body missing annotation length".to_string()));
    }
    let ann_len = buf.get_u32_le() as usize;
    if ann_len != buf.remaining() {
        return Err(DurableError::Corrupt(format!(
            "annotation snapshot length {ann_len} does not match remaining {} bytes",
            buf.remaining()
        )));
    }
    let ann_bytes = buf.copy_to_bytes(ann_len);
    let db = relstore::snapshot::load(&rel_bytes)
        .map_err(|e| DurableError::Corrupt(format!("relational snapshot: {e}")))?;
    let store = annostore::snapshot::load(&ann_bytes)
        .map_err(|e| DurableError::Corrupt(format!("annotation snapshot: {e}")))?;
    Ok((watermark, db, store))
}

/// Name of the checkpoint file with the given sequence number.
pub fn file_name(seq: u64) -> String {
    format!("checkpoint-{seq:08}.ckpt")
}

/// Parse a checkpoint sequence number back out of a file name.
pub fn parse_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("checkpoint-")?;
    let digits = rest.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

/// List checkpoint files in `dir`, ascending by sequence number.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_seq) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::Annotation;
    use relstore::{DataType, Database, TableSchema, Value};

    fn tiny_state() -> (Database, AnnotationStore) {
        let mut db = Database::new();
        let schema = TableSchema::builder("gene")
            .column("name", DataType::Text)
            .column("len", DataType::Int)
            .build()
            .unwrap();
        db.create_table(schema).unwrap();
        let tid = db.insert("gene", vec![Value::text("thrL"), Value::Int(66)]).unwrap();
        let mut store = AnnotationStore::new();
        let aid = store.add_annotation(Annotation::new("operon leader peptide"));
        store.attach(aid, annostore::AttachmentTarget::tuple(tid)).unwrap();
        (db, store)
    }

    #[test]
    fn roundtrip_preserves_watermark_and_state() {
        let (db, store) = tiny_state();
        let image = encode(42, &db, &store);
        let (watermark, db2, store2) = decode(&image).unwrap();
        assert_eq!(watermark, 42);
        assert_eq!(relstore::snapshot::save(&db2).to_vec(), relstore::snapshot::save(&db).to_vec());
        assert_eq!(store2.annotation_count(), 1);
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let (db, store) = tiny_state();
        let image = encode(7, &db, &store);
        // Sample every 13th byte to keep the test fast while still
        // covering magic, checksum, watermark, and both snapshots.
        for byte in (0..image.len()).step_by(13) {
            let mut bad = image.clone();
            bad[byte] ^= 0x04;
            assert!(decode(&bad).is_err(), "flip at byte {byte} accepted");
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let (db, store) = tiny_state();
        let image = encode(7, &db, &store);
        for cut in [0, 5, 11, 12, 20, image.len() - 1] {
            assert!(decode(&image[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(file_name(3), "checkpoint-00000003.ckpt");
        assert_eq!(parse_seq("checkpoint-00000003.ckpt"), Some(3));
        assert_eq!(parse_seq("checkpoint-123456789.ckpt"), Some(123_456_789));
        assert_eq!(parse_seq("wal.log"), None);
        assert_eq!(parse_seq("checkpoint-xyz.ckpt"), None);
    }
}

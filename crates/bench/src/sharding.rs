//! Sharding experiment: scatter-gather ingest across shard counts and
//! net profiles.
//!
//! Each cell ingests the same annotation sequence through a
//! [`ShardCluster`] at a different `(shard count, net profile)` point and
//! reports what partitioning cost and what it preserved: ingest wall
//! time and throughput, how many annotations degraded to typed partial
//! results, the fabric's delivery summary, and the tentpole invariants —
//!
//! - on a **clean** fabric nothing degrades and the merged per-shard
//!   slices reassemble byte-identically at every shard count;
//! - on a **lossy** fabric probes may time out (typed partials, counted,
//!   never silent) and applies are nacked-and-retried, but the durable
//!   history still replays to the same bytes: the merged image always
//!   matches an unsharded twin replayed from the cluster's own log.
//!
//! The fault seed is `NEBULA_FAULT_SEED` (hex or decimal; default
//! `0xF00D`), shared with the other robustness experiments.

use crate::degradation::fault_seed;
use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, NebulaConfig, SearchMode, VerificationBounds};
use nebula_shard::{NetProfile, ShardCluster, ShardConfig};
use std::time::Instant;

/// Shard counts per net profile.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One `(shard count, net profile)` cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Shard count.
    pub shards: usize,
    /// Net-profile label (`clean` or `lossy`).
    pub net: String,
    /// Annotations ingested.
    pub total: usize,
    /// Ingest wall time in milliseconds.
    pub wall_ms: f64,
    /// Annotations per second.
    pub throughput: f64,
    /// Annotations that completed with a typed partial result.
    pub partials: usize,
    /// Shards still behind the head after the run (must drain to 0).
    pub lagging: usize,
    /// Does the merged image match the unsharded twin's replay?
    pub digest_match: bool,
    /// The fabric's one-line delivery summary.
    pub transport: String,
}

/// Run one cell.
fn scenario(setup: &Setup, n: usize, shards: usize, net: &str) -> Cell {
    let seed = fault_seed();
    let mut config = ShardConfig::new(shards);
    if net == "lossy" {
        config.net = Some(NetProfile::lossy(seed));
    }
    let engine_config = NebulaConfig {
        bounds: VerificationBounds::new(0.4, 0.85),
        search_mode: SearchMode::Full,
        ..Default::default()
    };
    let mut cluster = ShardCluster::new(
        &setup.bundle.db,
        &setup.bundle.annotations,
        &setup.bundle.meta,
        &engine_config,
        config,
    )
    .expect("cluster boots");

    let source = &setup.set(100).annotations;
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = &source[i % source.len()];
            (wa.annotation.clone(), distort(&wa.ideal, 1).0)
        })
        .collect();

    let t0 = Instant::now();
    let mut partials = 0usize;
    for (annotation, focal) in &items {
        let outcome = cluster.ingest(annotation, focal).expect("sharded ingest");
        if !outcome.degradations.is_empty() {
            partials += 1;
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Drain: a lossy fabric may leave shards behind the head; every
    // heal pass resends the missed batches with fresh fault draws.
    let mut rounds = 0;
    while !cluster.lagging().is_empty() && rounds < 64 {
        for s in cluster.lagging() {
            cluster.heal_shard(s);
        }
        rounds += 1;
    }

    let digest_match = match (cluster.merged_checkpoint(), cluster.rebuild_twin()) {
        (Ok(merged), Ok(twin)) => merged == twin.checkpoint(),
        _ => false,
    };
    Cell {
        shards,
        net: net.to_string(),
        total: items.len(),
        wall_ms,
        throughput: items.len() as f64 / (wall_ms / 1e3).max(1e-9),
        partials,
        lagging: cluster.lagging().len(),
        digest_match,
        transport: format!("{:?}", cluster.transport_stats()),
    }
}

/// Run the grid: shard counts `{1, 2, 4}` crossed with net profiles
/// `{clean, lossy}`.
pub fn run(setup: &Setup, n: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for net in ["clean", "lossy"] {
        for shards in SHARD_COUNTS {
            cells.push(scenario(setup, n, shards, net));
        }
    }
    cells
}

/// Render the grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        format!("Sharding: scatter-gather ingest throughput (seed={:#x})", fault_seed()),
        &["net", "shards", "annotations", "wall_ms", "annos/s", "partials", "lagging", "digest"],
    );
    for c in cells {
        t.row(vec![
            c.net.clone(),
            c.shards.to_string(),
            c.total.to_string(),
            format!("{:.1}", c.wall_ms),
            format!("{:.0}", c.throughput),
            c.partials.to_string(),
            c.lagging.to_string(),
            if c.digest_match { "match" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn every_cell_reassembles_byte_identically() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let cells = run(&setup, 24);
        assert_eq!(cells.len(), 6);
        for c in &cells {
            assert_eq!(c.total, 24, "{}/{}", c.net, c.shards);
            assert!(c.throughput > 0.0, "{}/{}", c.net, c.shards);
            assert_eq!(c.lagging, 0, "{}/{} drained: {c:?}", c.net, c.shards);
            assert!(c.digest_match, "{}/{} merged == twin: {c:?}", c.net, c.shards);
            if c.net == "clean" {
                assert_eq!(c.partials, 0, "clean fabric never degrades: {c:?}");
            }
        }
        let rendered = table(&cells).render();
        assert!(rendered.contains("lossy"), "{rendered}");
    }
}

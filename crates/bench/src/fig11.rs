//! Figure 11 — generation of keyword queries.
//!
//! (a) per-phase execution time of `QueryGeneration()` (map generation /
//!     overlay + context adjustment / query generation) across cutoff
//!     thresholds ε and annotation size groups `L^m`;
//! (b) number of generated keyword queries;
//! (c) false-positive / false-negative percentages of the generated
//!     queries against the known embedded references.
//!
//! Uses the `D_large` workload (the experiment is independent of database
//! size — §8.2).

use crate::setup::Setup;
use crate::table::{fmt_duration, fmt_pct, Table};
use nebula_core::{AdjustParams, GeneratedQuery, QueryGenConfig};
use nebula_workload::WorkloadAnnotation;
use std::time::Instant;

/// One measured cell of Figure 11.
#[derive(Debug, Clone)]
pub struct QueryGenCell {
    /// Cutoff threshold ε.
    pub epsilon: f64,
    /// Size group (`L^m` bytes).
    pub max_bytes: usize,
    /// Average seconds in phase 1 (signature-map generation).
    pub t_maps: f64,
    /// Average seconds in phase 2 (overlay + context adjustment).
    pub t_adjust: f64,
    /// Average seconds in phase 3 (query generation).
    pub t_queries: f64,
    /// Average number of generated queries.
    pub queries: f64,
    /// Fraction of generated queries that are false positives.
    pub fp: f64,
    /// Fraction of embedded references missed by every query.
    pub fn_: f64,
}

/// The ε values the paper sweeps.
pub const EPSILONS: [f64; 3] = [0.4, 0.6, 0.8];

/// Run the full Figure 11 sweep.
pub fn run(setup: &Setup) -> Vec<QueryGenCell> {
    let mut cells = Vec::new();
    for &epsilon in &EPSILONS {
        for set in &setup.workload {
            let config = QueryGenConfig {
                epsilon,
                adjust: AdjustParams::default(),
                context_adjustment: true,
                backward_search: true,
            };
            let mut cell = QueryGenCell {
                epsilon,
                max_bytes: set.max_bytes,
                t_maps: 0.0,
                t_adjust: 0.0,
                t_queries: 0.0,
                queries: 0.0,
                fp: 0.0,
                fn_: 0.0,
            };
            let n = set.annotations.len() as f64;
            for wa in &set.annotations {
                let (times, queries) = timed_generation(setup, &wa.annotation.text, &config);
                cell.t_maps += times.0 / n;
                cell.t_adjust += times.1 / n;
                cell.t_queries += times.2 / n;
                cell.queries += queries.len() as f64 / n;
                let (fp, fn_) = query_quality(setup, wa, &queries);
                cell.fp += fp / n;
                cell.fn_ += fn_ / n;
            }
            cells.push(cell);
        }
    }
    cells
}

/// Time the three phases of `QueryGeneration()` separately.
fn timed_generation(
    setup: &Setup,
    text: &str,
    config: &QueryGenConfig,
) -> ((f64, f64, f64), Vec<GeneratedQuery>) {
    use nebula_core::sigmap::{
        generate_concept_map, generate_value_map, overlay, split_annotation,
    };

    let t0 = Instant::now();
    let words = split_annotation(text);
    let cmap = generate_concept_map(&setup.bundle.db, &setup.bundle.meta, &words, config.epsilon);
    let vmap = generate_value_map(&setup.bundle.db, &setup.bundle.meta, &words, config.epsilon);
    let t1 = Instant::now();
    let mut map = overlay(&words, cmap, vmap);
    nebula_core::context_based_adjustment(&mut map, &config.adjust);
    let t2 = Instant::now();
    let queries = nebula_core::querygen::concept_map_to_queries(
        &setup.bundle.db,
        &setup.bundle.meta,
        &map,
        config,
    );
    let t3 = Instant::now();
    (((t1 - t0).as_secs_f64(), (t2 - t1).as_secs_f64(), (t3 - t2).as_secs_f64()), queries)
}

/// Judge generated queries against the annotation's known embedded
/// references: a query is a true positive iff one of its keywords is the
/// id or name of an ideal tuple; a reference is missed (false negative)
/// when no query keyword names it.
pub fn query_quality(
    setup: &Setup,
    wa: &WorkloadAnnotation,
    queries: &[GeneratedQuery],
) -> (f64, f64) {
    // Reference strings of the ideal tuples that actually appear in the
    // annotation's text.
    let mut ref_strings: Vec<Vec<String>> = Vec::new();
    for t in &wa.ideal {
        let Some(tuple) = setup.bundle.db.get(*t) else { continue };
        let mut forms = Vec::new();
        if let Some(k) = tuple.key() {
            let k = k.render();
            if wa.annotation.text.contains(&k) {
                forms.push(k.to_lowercase());
            }
        }
        for col in ["name", "pname"] {
            if let Some(name) = tuple.get_by_name(col) {
                let n = name.render();
                if !n.is_empty() && wa.annotation.text.contains(&n) {
                    forms.push(n.to_lowercase());
                }
            }
        }
        if !forms.is_empty() {
            ref_strings.push(forms);
        }
    }

    let mut fp = 0usize;
    let mut covered = vec![false; ref_strings.len()];
    for q in queries {
        let mut is_tp = false;
        for kw in &q.keywords {
            let kw = kw.to_lowercase();
            for (i, forms) in ref_strings.iter().enumerate() {
                if forms.contains(&kw) {
                    covered[i] = true;
                    is_tp = true;
                }
            }
        }
        if !is_tp {
            fp += 1;
        }
    }
    let fp_ratio = if queries.is_empty() { 0.0 } else { fp as f64 / queries.len() as f64 };
    let fn_ratio = if ref_strings.is_empty() {
        0.0
    } else {
        covered.iter().filter(|c| !**c).count() as f64 / ref_strings.len() as f64
    };
    (fp_ratio, fn_ratio)
}

/// Render Figure 11(a): per-phase times.
pub fn table_a(cells: &[QueryGenCell]) -> Table {
    let mut t = Table::new(
        "Figure 11(a): query-generation time per phase",
        &["ε", "L^m", "maps", "overlay+adjust", "querygen", "total"],
    );
    for c in cells {
        t.row(vec![
            format!("{:.1}", c.epsilon),
            format!("L^{}", c.max_bytes),
            fmt_duration(c.t_maps),
            fmt_duration(c.t_adjust),
            fmt_duration(c.t_queries),
            fmt_duration(c.t_maps + c.t_adjust + c.t_queries),
        ]);
    }
    t
}

/// Render Figure 11(b): number of generated queries.
pub fn table_b(cells: &[QueryGenCell]) -> Table {
    let mut t = Table::new(
        "Figure 11(b): number of generated keyword queries",
        &["ε", "L^m", "queries (avg)"],
    );
    for c in cells {
        t.row(vec![
            format!("{:.1}", c.epsilon),
            format!("L^{}", c.max_bytes),
            format!("{:.1}", c.queries),
        ]);
    }
    t
}

/// Render Figure 11(c): FP/FN percentages of the generated queries.
pub fn table_c(cells: &[QueryGenCell]) -> Table {
    let mut t = Table::new(
        "Figure 11(c): false positives / false negatives of generated queries",
        &["ε", "L^m", "FP%", "FN%"],
    );
    for c in cells {
        t.row(vec![
            format!("{:.1}", c.epsilon),
            format!("L^{}", c.max_bytes),
            fmt_pct(c.fp),
            fmt_pct(c.fn_),
        ]);
    }
    t
}

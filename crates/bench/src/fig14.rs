//! Figure 14 — focal-spreading approximate search.
//!
//! `D_large`, ε = 0.6, the `L^100` set, no sharing. The distortion degree
//! Δ (number of focal links kept) varies on the x-axis; the hop radius K
//! varies per series. Compared against the basic full-database search:
//! the paper reports ~15× faster execution and an order of magnitude
//! fewer produced tuples.

use crate::setup::Setup;
use crate::table::{fmt_duration, Table};
use nebula_core::{
    build_minidb, distort, generate_queries, identify_related_tuples, translate_candidates,
    ExecutionConfig, QueryGenConfig,
};
use std::time::Instant;
use textsearch::{ExecutionMode, KeywordSearch, SearchOptions};

/// One measured cell of Figure 14.
#[derive(Debug, Clone)]
pub struct FocalCell {
    /// Distortion degree Δ (links kept = focal size).
    pub delta: usize,
    /// Hop radius K (`None` = basic full search).
    pub k: Option<usize>,
    /// Average seconds per annotation (includes miniDB materialization).
    pub seconds: f64,
    /// Average number of produced tuples.
    pub tuples: f64,
    /// Average miniDB size in tuples (0 for full search).
    pub minidb_tuples: f64,
}

/// Run Figure 14 on one dataset (the paper uses `D_large`).
pub fn run_dataset(setup: &Setup, max_bytes: usize) -> Vec<FocalCell> {
    let set = setup.set(max_bytes);
    let config = QueryGenConfig { epsilon: 0.6, ..Default::default() };
    let exec = ExecutionConfig {
        mode: ExecutionMode::Isolated,
        acg_adjustment: true,
        ..Default::default()
    };
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });

    let deltas = [1usize, 2, 3];
    let ks: [Option<usize>; 4] = [None, Some(2), Some(3), Some(4)];
    let mut cells = Vec::new();
    for &delta in &deltas {
        for &k in &ks {
            let mut seconds = 0.0;
            let mut tuples = 0.0;
            let mut minidb_tuples = 0.0;
            let n = set.annotations.len() as f64;
            for wa in &set.annotations {
                let (focal, _) = distort(&wa.ideal, delta);
                let queries = generate_queries(
                    &setup.bundle.db,
                    &setup.bundle.meta,
                    &wa.annotation.text,
                    &config,
                );
                match k {
                    None => {
                        let t0 = Instant::now();
                        let (cands, _) = identify_related_tuples(
                            &setup.bundle.db,
                            &engine,
                            &queries,
                            &focal,
                            Some(&setup.acg),
                            &exec,
                        )
                        .expect("ungoverned search cannot fail");
                        seconds += t0.elapsed().as_secs_f64() / n;
                        tuples += cands.len() as f64 / n;
                    }
                    Some(k) => {
                        let t0 = Instant::now();
                        let (mini, back) = build_minidb(&setup.bundle.db, &setup.acg, &focal, k);
                        let mini_engine = KeywordSearch::new(SearchOptions {
                            vocab: setup.bundle.meta.to_vocabulary(&mini),
                            ..Default::default()
                        });
                        let (cands, _) = identify_related_tuples(
                            &mini,
                            &mini_engine,
                            &queries,
                            &[],
                            None,
                            &ExecutionConfig { acg_adjustment: false, ..exec },
                        )
                        .expect("ungoverned search cannot fail");
                        let mut cands = translate_candidates(cands, &back);
                        cands.retain(|c| !focal.contains(&c.tuple));
                        seconds += t0.elapsed().as_secs_f64() / n;
                        tuples += cands.len() as f64 / n;
                        minidb_tuples += mini.total_tuples() as f64 / n;
                    }
                }
            }
            cells.push(FocalCell { delta, k, seconds, tuples, minidb_tuples });
        }
    }
    cells
}

/// Render Figure 14(a): execution time.
pub fn table_a(cells: &[FocalCell]) -> Table {
    let mut t = Table::new(
        "Figure 14(a): focal-spreading execution time (D_large, ε=0.6, L^100)",
        &["Δ", "config", "time", "speedup vs basic", "miniDB tuples"],
    );
    for c in cells {
        let basic = cells
            .iter()
            .find(|b| b.delta == c.delta && b.k.is_none())
            .map(|b| b.seconds)
            .unwrap_or(0.0);
        let speedup = if c.k.is_some() && c.seconds > 0.0 {
            format!("{:.1}x", basic / c.seconds)
        } else {
            "-".into()
        };
        t.row(vec![
            c.delta.to_string(),
            c.k.map(|k| format!("K={k}")).unwrap_or_else(|| "basic (full)".into()),
            fmt_duration(c.seconds),
            speedup,
            if c.k.is_some() { format!("{:.0}", c.minidb_tuples) } else { "-".into() },
        ]);
    }
    t
}

/// Render Figure 14(b): produced tuples.
pub fn table_b(cells: &[FocalCell]) -> Table {
    let mut t = Table::new(
        "Figure 14(b): focal-spreading produced tuples (D_large, ε=0.6, L^100)",
        &["Δ", "config", "tuples", "reduction vs basic"],
    );
    for c in cells {
        let basic = cells
            .iter()
            .find(|b| b.delta == c.delta && b.k.is_none())
            .map(|b| b.tuples)
            .unwrap_or(0.0);
        let reduction = if c.k.is_some() && c.tuples > 0.0 {
            format!("{:.1}x", basic / c.tuples)
        } else {
            "-".into()
        };
        t.row(vec![
            c.delta.to_string(),
            c.k.map(|k| format!("K={k}")).unwrap_or_else(|| "basic (full)".into()),
            format!("{:.1}", c.tuples),
            reduction,
        ]);
    }
    t
}

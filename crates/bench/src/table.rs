//! Minimal fixed-width text-table rendering for the `reproduce` binary.

/// A printable table: a title, column headers, and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (figure id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", &["config", "time"]);
        t.row(vec!["Nebula-0.6".into(), "1.2ms".into()]);
        t.row(vec!["Naive".into(), "99s".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("Nebula-0.6"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(2.5), "2.50s");
        assert_eq!(fmt_duration(0.0025), "2.50ms");
        assert_eq!(fmt_duration(0.0000025), "2.5µs");
    }

    #[test]
    fn pct() {
        assert_eq!(fmt_pct(0.715), "71.5%");
    }
}

//! Repair experiment: reconvergence cost vs injected divergence depth.
//!
//! Each cell injects a divergence of a chosen depth into a healthy
//! two-replica cluster and measures what healing it cost: how far the
//! range-digest ladder had to probe to pin the last agreed LSN, how many
//! suffix LSNs were rewound, how many records the resync shipped, and the
//! wall time of the whole heal. Two healing paths are swept:
//!
//! - **scrub-repair** — a replica's in-memory state is poisoned
//!   ([`Cluster::chaos_corrupt_replica`]) `depth` records before the end
//!   of the history; the anti-entropy scrub detects the divergence and
//!   [`Cluster::repair_replica`] rewinds + resyncs it;
//! - **rejoin** — the primary writes a `depth`-record un-acked suffix
//!   under a partition, a replica is promoted over it, the new chain
//!   advances `depth` *different* records, and [`Cluster::rejoin`]
//!   demotes the deposed primary, rewinds exactly its fenced suffix, and
//!   catches it up on the new epoch.
//!
//! The tentpole claims under test: the ladder's probe count stays
//! logarithmic in the history (never a full-history walk), the rewind is
//! exactly the injected suffix (nothing sound is discarded, nothing
//! poisoned survives), and both paths always reconverge.

use crate::table::Table;
use annostore::{AnnotationId, AnnotationStore};
use nebula_durable::wal::WalOp;
use nebula_replica::{Cluster, ClusterConfig, SimTransport};
use relstore::Database;
use std::path::PathBuf;
use std::time::Instant;

/// Replicas per cell (nodes 1..=2; the primary is node 0).
const REPLICAS: usize = 2;

/// One `(mode, depth)` cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Healing path (`scrub-repair` or `rejoin`).
    pub mode: String,
    /// Records in the history before healing begins.
    pub history: u64,
    /// Requested divergence depth (records past the agreement point).
    pub depth: u64,
    /// The last LSN the ladder proved both sides agreed on.
    pub agreed: u64,
    /// Suffix LSNs discarded from the diverged side.
    pub rewound: u64,
    /// Records shipped to bring the healed node back to the target LSN.
    pub resynced: u64,
    /// Ladder probes spent pinning the agreement point.
    pub probes: u64,
    /// Pump rounds the repair needed (`None` for rejoin, which converges
    /// inside its own bounded catch-up).
    pub rounds: Option<usize>,
    /// Wall time of detection + heal, in milliseconds.
    pub wall_ms: f64,
    /// Did the healed node reconverge to the primary's digest?
    pub converged: bool,
}

fn scenario_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nebula-bench-repair-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("note {n}"),
        author: None,
        kind: None,
    }
}

/// Same LSN slot, different bytes: the new epoch's chain records these so
/// the fork past the promotion point is genuine.
fn fork_op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("forked note {n}"),
        author: None,
        kind: None,
    }
}

fn fresh_cluster(tag: &str) -> (Cluster, PathBuf) {
    let dir = scenario_dir(tag);
    let cluster = Cluster::new(
        &dir,
        &Database::new(),
        &AnnotationStore::new(),
        REPLICAS,
        Box::new(SimTransport::reliable(REPLICAS + 1)),
        ClusterConfig::default(),
    )
    .expect("fresh cluster directory");
    (cluster, dir)
}

/// Scrub-repair path: poison replica 1 `depth` records before the end of
/// an `n`-record history, then let the scrub find it and the repair heal.
fn scenario_repair(n: u64, depth: u64) -> Cell {
    let (mut cluster, dir) = fresh_cluster(&format!("repair-{n}-{depth}"));
    for i in 0..n - depth {
        cluster.record(&op(i)).expect("record");
    }
    cluster.chaos_corrupt_replica(1).expect("replica 1 is attached");
    for i in n - depth..n {
        cluster.record(&op(i)).expect("record");
    }
    cluster.pump(4);

    let t0 = Instant::now();
    let summary = cluster.scrub();
    let found = summary.diverged.contains(&1) || summary.wedged.contains(&1);
    let out = cluster.repair_replica(1).expect("repair");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let want = cluster.primary().shadow_digest();
    let healed = cluster.replica(1).is_some_and(|r| !r.is_wedged() && r.digest() == want);
    let cell = Cell {
        mode: "scrub-repair".to_string(),
        history: n,
        depth,
        agreed: out.agreed,
        rewound: out.rewound,
        resynced: out.resynced,
        probes: summary.probes + out.probes,
        rounds: Some(out.rounds),
        wall_ms,
        converged: found && out.converged && healed,
    };
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    cell
}

/// Rejoin path: the primary writes a `depth`-record un-acked suffix under
/// a full partition, a replica is promoted over it, the new chain forks
/// for `depth` records, and the deposed primary rejoins.
fn scenario_rejoin(n: u64, depth: u64) -> Cell {
    let (mut cluster, dir) = fresh_cluster(&format!("rejoin-{n}-{depth}"));
    for i in 0..n {
        cluster.record(&op(i)).expect("record");
    }
    // The suffix no replica ever acks: written into the void of a full
    // partition, it exists only on the soon-to-be-deposed primary.
    for node in 1..=REPLICAS {
        cluster.set_partitioned(node, true);
    }
    for i in n..n + depth {
        cluster.record(&op(i)).expect("record under partition");
    }
    for node in 1..=REPLICAS {
        cluster.set_partitioned(node, false);
    }
    let target = cluster.best_failover_candidate().expect("a live candidate");
    cluster.promote(target).expect("promotion");
    let promoted_at = cluster.primary().last_lsn();
    // The new epoch advances different bytes over the same LSN slots, so
    // the deposed suffix is a genuine fork, not a replayable tail.
    for i in promoted_at..promoted_at + depth {
        cluster.record(&fork_op(i)).expect("record on the new primary");
    }
    cluster.pump(4);

    let t0 = Instant::now();
    let out = cluster.rejoin(0).expect("rejoin the deposed primary");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let want = cluster.primary().shadow_digest();
    let healed = cluster.replica(0).is_some_and(|r| !r.is_wedged() && r.digest() == want);
    let cell = Cell {
        mode: "rejoin".to_string(),
        history: n,
        depth,
        agreed: out.agreed,
        rewound: out.rewound,
        resynced: cluster.primary().last_lsn().saturating_sub(out.agreed),
        probes: out.probes,
        rounds: None,
        wall_ms,
        converged: out.converged && healed && cluster.deposed_nodes().is_empty(),
    };
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    cell
}

/// Run the grid: both healing paths crossed with divergence depths
/// `{1, 4, 16, 64}` (capped below half the history) over an `n`-record
/// history.
pub fn run(n: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for depth in [1u64, 4, 16, 64] {
        if depth * 2 >= n {
            continue;
        }
        cells.push(scenario_repair(n, depth));
        cells.push(scenario_rejoin(n, depth));
    }
    cells
}

/// Render the grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Repair: reconvergence cost vs injected divergence depth".to_string(),
        &[
            "mode",
            "history",
            "depth",
            "agreed",
            "rewound",
            "resynced",
            "probes",
            "rounds",
            "wall_ms",
            "converged",
        ],
    );
    for c in cells {
        t.row(vec![
            c.mode.clone(),
            c.history.to_string(),
            c.depth.to_string(),
            c.agreed.to_string(),
            c.rewound.to_string(),
            c.resynced.to_string(),
            c.probes.to_string(),
            c.rounds.map_or_else(|| "-".to_string(), |r| r.to_string()),
            format!("{:.1}", c.wall_ms),
            if c.converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_heal_every_depth() {
        let cells = run(48);
        assert_eq!(cells.len(), 6, "depths 1/4/16 across two modes");
        for c in &cells {
            assert!(c.converged, "{}/{}: {c:?}", c.mode, c.depth);
            assert!(c.probes > 0, "{}/{}: the ladder probed", c.mode, c.depth);
            // The ladder binary-searches: probes stay logarithmic in the
            // history, never a full-history walk.
            assert!(c.probes < c.history, "{}/{}: {c:?}", c.mode, c.depth);
            match c.mode.as_str() {
                // Corruption lands *at* the poisoned LSN, so the agreement
                // point sits one LSN before it: the measured divergence is
                // depth or depth + 1, never less, never unbounded.
                "scrub-repair" => {
                    let measured = c.history - c.agreed;
                    assert!(
                        measured == c.depth || measured == c.depth + 1,
                        "{}/{}: {c:?}",
                        c.mode,
                        c.depth
                    );
                    assert_eq!(c.resynced, measured, "{}/{}: {c:?}", c.mode, c.depth);
                }
                // The rejoin rewinds exactly the fenced suffix and resyncs
                // exactly the new chain's fork.
                _ => {
                    assert_eq!(c.rewound, c.depth, "{}/{}: {c:?}", c.mode, c.depth);
                    assert_eq!(c.resynced, c.depth, "{}/{}: {c:?}", c.mode, c.depth);
                }
            }
        }
        let rendered = table(&cells).render();
        assert!(rendered.contains("scrub-repair") && rendered.contains("rejoin"), "{rendered}");
    }
}

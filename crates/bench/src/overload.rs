//! Overload experiment: concurrent ingest under arrival pressure.
//!
//! Each cell offers the same annotation stream to the ingest worker pool
//! at a different `(arrival rate, workers, fault plan)` point and reports
//! what the admission/backpressure machinery did about it: how much was
//! committed, how much was shed (with typed reasons), the p99 sojourn
//! latency of the work that did run, and the final health state. The
//! invariants under test are the tentpole overload claims:
//!
//! - every offered item lands in exactly one accounted state
//!   (committed or typed shed) — nothing is silently dropped;
//! - shedding engages under burst arrivals and disengages under paced
//!   arrivals — the queue is bounded, so p99 cannot grow without bound;
//! - worker count never changes *what* is computed (the single-writer
//!   turn gate serializes execution), only how arrival spikes are
//!   absorbed; and
//! - no cell panics or wedges the engine.
//!
//! The fault seed is `NEBULA_FAULT_SEED` (hex or decimal; default
//! `0xF00D`), shared with the degradation experiment.

use crate::degradation::fault_seed;
use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, NebulaConfig, VerificationBounds};
use nebula_govern::FaultPlan;
use nebula_ingest::{ingest_batch, HealthState, IngestConfig, IngestItem, ShedReason};
use std::time::Duration;

/// One `(arrival, workers, faults)` cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Arrival-process label (`burst` or `paced@<gap>`).
    pub arrival: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Fault-plan label.
    pub faults: String,
    /// Items offered.
    pub total: usize,
    /// Items that executed (any terminal batch status).
    pub committed: usize,
    /// Items shed by admission or dispatch.
    pub shed: usize,
    /// Sheds from the bounded queue overflowing.
    pub shed_queue_full: usize,
    /// Sheds from expired dispatch deadlines.
    pub shed_deadline: usize,
    /// Sheds from an open circuit breaker.
    pub shed_circuit: usize,
    /// Committed items the containment harness quarantined.
    pub quarantined: usize,
    /// `shed / total`.
    pub shed_rate: f64,
    /// p99 sojourn time over executed items, in nanoseconds.
    pub p99_ns: u64,
    /// Final health state of the run.
    pub health: HealthState,
}

/// The arrival processes swept by the grid, slowest first.
fn arrivals() -> Vec<(String, Option<Duration>)> {
    vec![
        ("paced@10ms".to_string(), Some(Duration::from_millis(10))),
        ("paced@500us".to_string(), Some(Duration::from_micros(500))),
        ("burst".to_string(), None),
    ]
}

/// Run one cell: `n` annotations offered under the given arrival gap,
/// worker count, and fault plan, through a small bounded queue.
fn scenario(
    setup: &Setup,
    n: usize,
    arrival: &str,
    gap: Option<Duration>,
    workers: usize,
    fault_label: &str,
    plan: Option<FaultPlan>,
) -> Cell {
    // Fresh store per cell so earlier cells don't seed the ACG.
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = setup
        .engine(NebulaConfig { bounds: VerificationBounds::new(0.4, 0.85), ..Default::default() });
    // Cycle the workload group until the offered burst reaches `n`.
    let source = &setup.set(100).annotations;
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = &source[i % source.len()];
            IngestItem::new(wa.annotation.clone(), distort(&wa.ideal, 1).0)
        })
        .collect();
    let config =
        IngestConfig { workers, queue_capacity: 8, admit_gap: gap, ..IngestConfig::default() };
    nebula_govern::set_fault_plan(plan);
    let report = ingest_batch(&mut nebula, &setup.bundle.db, &mut store, &items, &config);
    nebula_govern::set_fault_plan(None);
    let by_reason = |reason: ShedReason| report.sheds.iter().filter(|s| s.reason == reason).count();
    Cell {
        arrival: arrival.to_string(),
        workers,
        faults: fault_label.to_string(),
        total: report.total(),
        committed: report.batch.total(),
        shed: report.sheds.len(),
        shed_queue_full: by_reason(ShedReason::QueueFull),
        shed_deadline: by_reason(ShedReason::DeadlineExpired),
        shed_circuit: by_reason(ShedReason::CircuitOpen),
        quarantined: report.batch.quarantined,
        shed_rate: report.shed_rate(),
        p99_ns: report.p99_latency_ns(),
        health: report.health,
    }
}

/// Run the grid: three arrival processes crossed with worker counts
/// `{1, 4}` and fault plans `{off, uniform@0.25 with stage latency}`.
pub fn run(setup: &Setup, n: usize) -> Vec<Cell> {
    let seed = fault_seed();
    let plans: Vec<(String, Option<FaultPlan>)> = vec![
        ("off".to_string(), None),
        (
            "uniform@0.25+lat".to_string(),
            // A quarter of governed sites fault, and half the stage
            // boundaries stall 1ms — the slow-service regime that makes
            // paced arrival rates bite.
            Some(FaultPlan::uniform(seed, 0.25).with_latency(0.5, Duration::from_millis(1))),
        ),
    ];
    let mut cells = Vec::new();
    for (arrival, gap) in arrivals() {
        for &workers in &[1usize, 4] {
            for (label, plan) in &plans {
                cells.push(scenario(setup, n, &arrival, gap, workers, label, plan.clone()));
            }
        }
    }
    cells
}

/// Render the grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        format!("Overload: concurrent ingest under arrival pressure (seed={:#x})", fault_seed()),
        &[
            "arrival",
            "workers",
            "faults",
            "total",
            "committed",
            "shed",
            "shed rate",
            "q-full",
            "deadline",
            "breaker",
            "quarantined",
            "p99 (ms)",
            "health",
        ],
    );
    for c in cells {
        t.row(vec![
            c.arrival.clone(),
            c.workers.to_string(),
            c.faults.clone(),
            c.total.to_string(),
            c.committed.to_string(),
            c.shed.to_string(),
            format!("{:.0}%", c.shed_rate * 100.0),
            c.shed_queue_full.to_string(),
            c.shed_deadline.to_string(),
            c.shed_circuit.to_string(),
            c.quarantined.to_string(),
            format!("{:.2}", c.p99_ns as f64 / 1e6),
            c.health.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn every_cell_accounts_for_every_item_and_never_wedges() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let cells = run(&setup, 40);
        assert_eq!(cells.len(), 12);
        for c in &cells {
            assert_eq!(
                c.committed + c.shed,
                c.total,
                "{} w={} {}: every item is committed or shed",
                c.arrival,
                c.workers,
                c.faults
            );
            assert_ne!(c.health, HealthState::Wedged, "{c:?}");
        }
        // Burst arrivals overflow the bounded queue at every worker count.
        for c in cells.iter().filter(|c| c.arrival == "burst") {
            assert!(c.shed > 0, "burst must shed: {c:?}");
            assert!(c.p99_ns > 0, "something still commits: {c:?}");
        }
        // With no faults, the slowest pacing stays comfortably under the
        // service rate, so the queue never sustains a backlog (a generous
        // bound, not a wall-clock-sensitive exact zero). Under the faulty
        // plan the breaker is allowed to shed at any pace — that's its job.
        for c in cells.iter().filter(|c| c.arrival == "paced@10ms" && c.faults == "off") {
            assert!(c.shed_rate < 0.25, "slow pacing barely sheds: {c:?}");
        }
        // When the faulty plan sheds, the sheds carry typed reasons.
        for c in cells.iter().filter(|c| c.faults != "off") {
            assert_eq!(
                c.shed_queue_full + c.shed_deadline + c.shed_circuit,
                c.shed,
                "typed reasons cover every shed: {c:?}"
            );
        }
        let rendered = table(&cells).render();
        assert!(rendered.contains("shed rate"), "{rendered}");
    }
}

//! Recovery experiment: backup cost and restore time vs archive depth.
//!
//! Each cell builds the same `n`-record history through a live WAL
//! manager with archiving armed, checkpointing every `ckpt_every`
//! records — so the archive holds `n / ckpt_every` sealed segments plus
//! one base per checkpoint. It then measures the disaster-recovery
//! round trip:
//!
//! - **backup** — `create_bundle` wall time and the bytes the signed
//!   bundle occupies (checkpoint first, so the bundle covers the head);
//! - **verify** — re-deriving every manifest digest, the gate every
//!   restore runs before touching state;
//! - **restore** — full point-in-time rebuild to the head: load the
//!   newest base, replay the archived tail through `replay_op`;
//! - **pitr** — the same rebuild stopped at the history's midpoint,
//!   which must pick an older base and replay a partial tail.
//!
//! The claims under test: backup cost is linear in archive bytes, not
//! history length; restore time is governed by the replayed tail (deep
//! archives with frequent bases restore *faster* because the newest base
//! sits closer to the target); and every restore digest-matches the live
//! engine at the target LSN.

use crate::table::Table;
use annostore::{AnnotationId, AnnotationStore};
use nebula_backup::{create_bundle, restore, verify_bundle, BundleSpec};
use nebula_durable::wal::WalOp;
use nebula_durable::{archive_stats, replay_op, state_digest, Durability, DurabilityOptions};
use relstore::Database;
use std::path::PathBuf;
use std::time::Instant;

/// One `(ckpt_every)` cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Records between checkpoints (the archive-depth knob).
    pub ckpt_every: u64,
    /// Records in the history.
    pub records: u64,
    /// Sealed segments in the archive at backup time.
    pub segments: usize,
    /// Base checkpoints in the archive at backup time.
    pub bases: usize,
    /// Bytes in the captured bundle (archive files + manifest).
    pub bundle_bytes: u64,
    /// `create_bundle` wall time in milliseconds.
    pub backup_ms: f64,
    /// `verify_bundle` wall time in milliseconds.
    pub verify_ms: f64,
    /// Full restore-to-head wall time in milliseconds.
    pub restore_ms: f64,
    /// Records the full restore replayed past its base.
    pub replayed: usize,
    /// Restore-to-midpoint wall time in milliseconds.
    pub pitr_ms: f64,
    /// Records the midpoint restore replayed past its base.
    pub pitr_replayed: usize,
    /// Did both restores digest-match the live state at their targets?
    pub converged: bool,
}

fn scenario_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nebula-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn op(n: u64) -> WalOp {
    WalOp::AddAnnotation {
        expected: AnnotationId(n),
        text: format!("recovery bench note {n}"),
        author: None,
        kind: None,
    }
}

/// Build an `n`-record archived history checkpointed every `ckpt_every`
/// records, then measure the backup/verify/restore round trip.
fn scenario(n: u64, ckpt_every: u64) -> Cell {
    let root = scenario_dir(&format!("{n}-{ckpt_every}"));
    let wal_dir = root.join("wal");
    let archive = root.join("archive");
    let bundle_dir = root.join("bundle");

    let mut db = Database::new();
    let mut store = AnnotationStore::new();
    let mut wal = Durability::begin(&wal_dir, &db, &store, DurabilityOptions::default())
        .expect("fresh durability directory");
    wal.set_archive(&archive, 1).expect("arm archiving");

    // Track the live state at the midpoint so the PITR restore has a
    // reference digest to converge against.
    let mid = n / 2;
    let mut mid_digest = state_digest(&db, &store);
    for i in 0..n {
        let o = op(i);
        wal.append(&o).expect("append");
        replay_op(&mut db, &mut store, &o).expect("replay");
        if i + 1 == mid {
            mid_digest = state_digest(&db, &store);
        }
        if (i + 1) % ckpt_every == 0 {
            wal.checkpoint(&db, &store).expect("checkpoint");
        }
    }
    // BACKUP TO semantics: checkpoint first so the bundle covers the head.
    wal.checkpoint(&db, &store).expect("sealing checkpoint");
    let stats = archive_stats(&archive).expect("archive stats");

    let t0 = Instant::now();
    let manifest = create_bundle(&BundleSpec {
        archive_dir: archive.clone(),
        bundle_dir: bundle_dir.clone(),
        pages: None,
        created_seq: 1,
    })
    .expect("bundle capture");
    let backup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bundle_bytes = manifest.entries.iter().map(|e| e.len).sum::<u64>();

    let t0 = Instant::now();
    verify_bundle(&bundle_dir).expect("manifest verification");
    let verify_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let full = restore(&bundle_dir, None).expect("restore to head");
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let pitr = restore(&bundle_dir, Some(mid)).expect("restore to midpoint");
    let pitr_ms = t0.elapsed().as_secs_f64() * 1e3;

    let converged = state_digest(&full.db, &full.store) == state_digest(&db, &store)
        && full.applied == n
        && state_digest(&pitr.db, &pitr.store) == mid_digest
        && pitr.applied == mid;

    let cell = Cell {
        ckpt_every,
        records: n,
        segments: stats.segments,
        bases: stats.bases,
        bundle_bytes,
        backup_ms,
        verify_ms,
        restore_ms,
        replayed: full.replayed,
        pitr_ms,
        pitr_replayed: pitr.replayed,
        converged,
    };
    drop(wal);
    let _ = std::fs::remove_dir_all(&root);
    cell
}

/// Run the sweep: one `n`-record history per checkpoint cadence, from
/// coarse (one giant segment) to fine (many small ones).
pub fn run(n: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for ckpt_every in [n, n / 4, n / 16, n / 64] {
        if ckpt_every == 0 {
            continue;
        }
        cells.push(scenario(n, ckpt_every));
    }
    cells
}

/// Render the sweep.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Recovery: backup cost and restore time vs archive depth".to_string(),
        &[
            "ckpt_every",
            "records",
            "segments",
            "bases",
            "bundle_kb",
            "backup_ms",
            "verify_ms",
            "restore_ms",
            "replayed",
            "pitr_ms",
            "pitr_replayed",
            "converged",
        ],
    );
    for c in cells {
        t.row(vec![
            c.ckpt_every.to_string(),
            c.records.to_string(),
            c.segments.to_string(),
            c.bases.to_string(),
            format!("{:.1}", c.bundle_bytes as f64 / 1024.0),
            format!("{:.1}", c.backup_ms),
            format!("{:.1}", c.verify_ms),
            format!("{:.1}", c.restore_ms),
            c.replayed.to_string(),
            format!("{:.1}", c.pitr_ms),
            c.pitr_replayed.to_string(),
            if c.converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_sweep_converges_at_every_depth() {
        let cells = run(96);
        assert!(!cells.is_empty());
        for c in &cells {
            assert!(c.converged, "cell {c:?} failed to converge");
            assert!(c.segments > 0, "cell {c:?} archived no segments");
            assert_eq!(c.records, 96);
        }
        // Finer cadences put the newest base closer to the head, so the
        // full restore replays a shorter tail.
        let coarse = &cells[0];
        let fine = cells.last().expect("cells");
        assert!(fine.replayed <= coarse.replayed);
    }
}

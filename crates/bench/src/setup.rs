//! Shared experiment setup: datasets, workloads, and engine builders.

use nebula_core::{Acg, Nebula, NebulaConfig, NebulaMeta};
use nebula_workload::{
    build_workload, generate_dataset, DatasetBundle, DatasetSpec, WorkloadSet, WorkloadSpec,
};

/// Experiment scale. `Full` mirrors the paper's relative dataset sizes
/// (scaled to laptop magnitude); `Fast` divides everything by ~10 so a
/// whole figure regenerates in seconds (shapes are preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale full datasets (D_small / D_mid / D_large presets).
    Full,
    /// ~10× smaller datasets for quick runs and CI.
    Fast,
}

impl Scale {
    fn shrink(self, spec: DatasetSpec) -> DatasetSpec {
        match self {
            Scale::Full => spec,
            Scale::Fast => DatasetSpec {
                genes: (spec.genes / 10).max(40),
                proteins: (spec.proteins / 10).max(60),
                publications: (spec.publications / 10).max(80),
                protein_sample_size: (spec.protein_sample_size / 10).max(20),
                ..spec
            },
        }
    }

    /// The `D_small` spec at this scale.
    pub fn small(self) -> DatasetSpec {
        self.shrink(DatasetSpec::small())
    }

    /// The `D_mid` spec at this scale.
    pub fn mid(self) -> DatasetSpec {
        self.shrink(DatasetSpec::mid())
    }

    /// The `D_large` spec at this scale.
    pub fn large(self) -> DatasetSpec {
        self.shrink(DatasetSpec::large())
    }
}

/// One prepared experiment environment: a dataset bundle plus its
/// workload, with the ACG pre-built from the dataset annotations
/// (excluding the workload, per §8.1).
pub struct Setup {
    /// The generated dataset.
    pub bundle: DatasetBundle,
    /// The `L^m` workload sets.
    pub workload: Vec<WorkloadSet>,
    /// The ACG built at once from the dataset's annotations.
    pub acg: Acg,
    /// Display name (`D_small` …).
    pub name: &'static str,
}

/// The default deterministic seed of the whole evaluation.
pub const SEED: u64 = 0x2015_0531;

impl Setup {
    /// Build a named dataset + workload.
    pub fn new(name: &'static str, spec: &DatasetSpec) -> Setup {
        let bundle = generate_dataset(spec, SEED);
        let workload = build_workload(&bundle, &WorkloadSpec::default(), SEED);
        let mut acg = Acg::build_from_store(&bundle.annotations);
        // The experiments treat the pre-built graph as mature.
        acg.set_stable(true);
        Setup { bundle, workload, acg, name }
    }

    /// `D_small` at the given scale.
    pub fn small(scale: Scale) -> Setup {
        Setup::new("D_small", &scale.small())
    }

    /// `D_mid` at the given scale.
    pub fn mid(scale: Scale) -> Setup {
        Setup::new("D_mid", &scale.mid())
    }

    /// `D_large` at the given scale.
    pub fn large(scale: Scale) -> Setup {
        Setup::new("D_large", &scale.large())
    }

    /// The workload set with the given byte cap.
    pub fn set(&self, max_bytes: usize) -> &WorkloadSet {
        self.workload.iter().find(|s| s.max_bytes == max_bytes).expect("workload set exists")
    }

    /// A Nebula engine over this dataset with the given config, ACG
    /// pre-loaded.
    pub fn engine(&self, config: NebulaConfig) -> Nebula {
        let mut nebula = Nebula::new(config, self.meta());
        *nebula.acg_mut() = self.acg.clone();
        nebula.acg_mut().set_stable(true);
        nebula
    }

    /// A fresh copy of the dataset's NebulaMeta.
    pub fn meta(&self) -> NebulaMeta {
        self.bundle.meta.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scale_shrinks() {
        let full = Scale::Full.large();
        let fast = Scale::Fast.large();
        assert!(fast.genes < full.genes);
        assert!(fast.publications < full.publications);
    }

    #[test]
    fn setup_builds_consistently() {
        let s = Setup::new("test", &nebula_workload::DatasetSpec::tiny());
        assert_eq!(s.workload.len(), 4);
        assert!(s.acg.is_stable());
        assert!(s.acg.edge_count() > 0);
        assert_eq!(s.set(100).max_bytes, 100);
    }
}

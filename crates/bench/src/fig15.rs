//! Figure 15 — verification and assessment criteria.
//!
//! (a) the four criteria (F_N, F_P, M_F, M_H) for eight configurations —
//!     Nebula-0.6 and Nebula-0.8 (basic full search) plus six
//!     focal-spreading settings over (Δ, K) — with the β bounds
//!     auto-adjusted by `BoundsSetting()` over a training workload;
//! (b) the extreme no-expert case β_lower = β_upper = 0.5;
//! plus the §8.2 naive-baseline assessment at `L^50`.

use crate::setup::{Setup, SEED};
use crate::table::{fmt_pct, Table};
use nebula_core::{
    assess_predictions, build_minidb, distort, generate_queries, identify_related_tuples,
    translate_candidates, AssessmentReport, BoundsSetting, Candidate, ExecutionConfig,
    QueryGenConfig, TrainingExample, VerificationBounds,
};
use nebula_workload::{build_workload, WorkloadAnnotation, WorkloadSpec};
use textsearch::{naive_search, ExecutionMode, KeywordSearch, SearchOptions};

/// One of the eight x-axis configurations of Figure 15(a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssessConfig {
    /// Basic full-database search with cutoff ε.
    Basic {
        /// Cutoff threshold.
        epsilon: f64,
    },
    /// Focal-based spreading with distortion Δ and radius K (ε = 0.6).
    Focal {
        /// Links kept.
        delta: usize,
        /// Hop radius.
        k: usize,
    },
}

impl AssessConfig {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            AssessConfig::Basic { epsilon } => format!("Nebula-{epsilon:.1}"),
            AssessConfig::Focal { delta, k } => format!("Focal Δ={delta} K={k}"),
        }
    }

    /// The paper's eight configurations.
    pub fn paper_set() -> Vec<AssessConfig> {
        vec![
            AssessConfig::Basic { epsilon: 0.6 },
            AssessConfig::Basic { epsilon: 0.8 },
            AssessConfig::Focal { delta: 1, k: 3 },
            AssessConfig::Focal { delta: 2, k: 2 },
            AssessConfig::Focal { delta: 2, k: 3 },
            AssessConfig::Focal { delta: 2, k: 4 },
            AssessConfig::Focal { delta: 3, k: 3 },
            AssessConfig::Focal { delta: 3, k: 4 },
        ]
    }
}

/// Produce candidates for one workload annotation under a configuration.
/// Returns `(candidates, focal)`.
pub fn candidates_for(
    setup: &Setup,
    wa: &WorkloadAnnotation,
    config: AssessConfig,
) -> (Vec<Candidate>, Vec<relstore::TupleId>) {
    let (epsilon, delta, k) = match config {
        AssessConfig::Basic { epsilon } => (epsilon, 1, None),
        AssessConfig::Focal { delta, k } => (0.6, delta, Some(k)),
    };
    let (focal, _) = distort(&wa.ideal, delta);
    let qconfig = QueryGenConfig { epsilon, ..Default::default() };
    let queries =
        generate_queries(&setup.bundle.db, &setup.bundle.meta, &wa.annotation.text, &qconfig);
    let exec =
        ExecutionConfig { mode: ExecutionMode::Shared, acg_adjustment: true, ..Default::default() };
    let cands = match k {
        None => {
            let engine = KeywordSearch::new(SearchOptions {
                vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
                ..Default::default()
            });
            identify_related_tuples(
                &setup.bundle.db,
                &engine,
                &queries,
                &focal,
                Some(&setup.acg),
                &exec,
            )
            .expect("ungoverned search cannot fail")
            .0
        }
        Some(k) => {
            let (mini, back) = build_minidb(&setup.bundle.db, &setup.acg, &focal, k);
            let engine = KeywordSearch::new(SearchOptions {
                vocab: setup.bundle.meta.to_vocabulary(&mini),
                ..Default::default()
            });
            let (cands, _) = identify_related_tuples(
                &mini,
                &engine,
                &queries,
                &[],
                None,
                &ExecutionConfig { acg_adjustment: false, ..exec },
            )
            .expect("ungoverned search cannot fail");
            let mut cands = translate_candidates(cands, &back);
            cands.retain(|c| !focal.contains(&c.tuple));
            cands
        }
    };
    (cands, focal)
}

/// Build the training set and run `BoundsSetting()` (the paper uses 500
/// manually verified annotations; `training_size` scales that down).
///
/// Implements the §7 enhancement (1): each training annotation is
/// distorted at several degrees Δ ∈ {1, 2, 3}, producing less- and
/// more-distorted versions of the dataset.
pub fn tune_bounds(setup: &Setup, training_size: usize) -> (VerificationBounds, AssessmentReport) {
    let spec = WorkloadSpec { sizes: vec![100], per_subset: (training_size / 3).max(1) };
    let training = build_workload(&setup.bundle, &spec, SEED ^ 0x7ea1_7ea1);
    let mut examples: Vec<TrainingExample> = Vec::new();
    for wa in &training[0].annotations {
        for delta in 1..=3usize {
            if delta > 1 && wa.ideal.len() <= delta {
                continue; // nothing left to discover at this distortion
            }
            let (candidates, focal) = if delta == 1 {
                candidates_for(setup, wa, AssessConfig::Basic { epsilon: 0.6 })
            } else {
                let (focal, _) = distort(&wa.ideal, delta);
                let qconfig = QueryGenConfig::default();
                let queries = generate_queries(
                    &setup.bundle.db,
                    &setup.bundle.meta,
                    &wa.annotation.text,
                    &qconfig,
                );
                let engine = KeywordSearch::new(SearchOptions {
                    vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
                    ..Default::default()
                });
                let (cands, _) = identify_related_tuples(
                    &setup.bundle.db,
                    &engine,
                    &queries,
                    &focal,
                    Some(&setup.acg),
                    &ExecutionConfig::default(),
                )
                .expect("ungoverned search cannot fail");
                (cands, focal)
            };
            examples.push(TrainingExample { candidates, ideal: wa.ideal.clone(), focal });
        }
    }
    let eval = BoundsSetting::default().select(&examples);
    (eval.bounds, eval.report)
}

/// One assessed configuration.
#[derive(Debug, Clone)]
pub struct AssessCell {
    /// The configuration.
    pub config: AssessConfig,
    /// Averaged criteria over the `L^100` annotations.
    pub report: AssessmentReport,
}

/// Run Figure 15 for the given bounds over the `L^100` set.
pub fn run_with_bounds(setup: &Setup, bounds: &VerificationBounds) -> Vec<AssessCell> {
    let set = setup.set(100);
    AssessConfig::paper_set()
        .into_iter()
        .map(|config| {
            let reports: Vec<AssessmentReport> = set
                .annotations
                .iter()
                .map(|wa| {
                    let (cands, focal) = candidates_for(setup, wa, config);
                    assess_predictions(&cands, bounds, &wa.ideal, &focal).1
                })
                .collect();
            AssessCell { config, report: AssessmentReport::average(&reports) }
        })
        .collect()
}

/// The §8.2 naive-baseline assessment at `L^50`: the whole-annotation
/// search's hits become the "predictions".
pub fn naive_assessment(setup: &Setup, bounds: &VerificationBounds) -> (AssessmentReport, f64) {
    let set = setup.set(50);
    let mut reports = Vec::new();
    let mut avg_tuples = 0.0;
    let n = set.annotations.len() as f64;
    for wa in &set.annotations {
        let (hits, _) = naive_search(&setup.bundle.db, &wa.annotation.text)
            .expect("ungoverned search cannot fail");
        avg_tuples += hits.len() as f64 / n;
        let (focal, _) = distort(&wa.ideal, 1);
        let cands: Vec<Candidate> = hits
            .iter()
            .filter(|h| !focal.contains(&h.tuple))
            .map(|h| Candidate { tuple: h.tuple, confidence: h.confidence, evidence: vec![] })
            .collect();
        reports.push(assess_predictions(&cands, bounds, &wa.ideal, &focal).1);
    }
    (AssessmentReport::average(&reports), avg_tuples)
}

/// Render a Figure 15 table.
pub fn table(title: &str, bounds: &VerificationBounds, cells: &[AssessCell]) -> Table {
    let mut t = Table::new(
        format!("{title} (β_lower={:.2}, β_upper={:.2})", bounds.lower, bounds.upper),
        &["config", "F_N", "F_P", "M_F", "M_H"],
    );
    for c in cells {
        t.row(vec![
            c.config.label(),
            fmt_pct(c.report.f_n),
            fmt_pct(c.report.f_p),
            format!("{:.1}", c.report.m_f),
            format!("{:.2}", c.report.m_h),
        ]);
    }
    t
}

/// Render the naive assessment row.
pub fn naive_table(report: &AssessmentReport, avg_tuples: f64) -> Table {
    let mut t = Table::new(
        "§8.2 naive-baseline assessment (L^50)",
        &["approach", "returned tuples", "F_N", "F_P", "M_F", "M_H"],
    );
    t.row(vec![
        "Naive".into(),
        format!("{avg_tuples:.0}"),
        fmt_pct(report.f_n),
        fmt_pct(report.f_p),
        format!("{:.1}", report.m_f),
        format!("{:.2e}", report.m_h),
    ]);
    t
}

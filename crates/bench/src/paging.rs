//! Paging experiment: the cost of breaking the RAM ceiling.
//!
//! The same row/posting workload — bulk inserts with a long-text tail,
//! point updates, deletes, two full read sweeps, and inverted-index
//! lookups — runs once on the RAM backend and once per buffer-pool size
//! on the paged backend. Each cell reports wall time, throughput, the
//! `page.*` pool accounting (hits / misses / evictions / write-backs),
//! the final file size in pages, and the tentpole invariants:
//!
//! - the paged database **fingerprints identically** to the RAM twin at
//!   every pool size, even when the pool is far smaller than the file
//!   (pure eviction churn);
//! - after the final flush the page file **scrubs clean** end to end.
//!
//! Pool sizes sweep from "everything resident" down to the 2-frame
//! minimum, so the table shows the full curve from RAM-like caching to
//! disk-bound thrashing.

use crate::table::Table;
use nebula_pagestore::PagedStorage;
use relstore::{snapshot, DataType, Database, TableSchema, TupleId, Value};
use std::sync::Arc;
use std::time::Instant;

/// Buffer-pool sizes (frames) swept by the paged cells.
const POOL_SIZES: [usize; 4] = [256, 64, 8, 2];

/// One backend cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Backend label (`mem` or `disk`).
    pub backend: String,
    /// Buffer-pool frames (0 for the RAM backend).
    pub pool_frames: usize,
    /// Mutations + reads executed.
    pub total_ops: usize,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Operations per second.
    pub throughput: f64,
    /// Final page-file size in pages (0 for RAM).
    pub file_pages: u32,
    /// Buffer-pool hits.
    pub hits: u64,
    /// Buffer-pool misses (disk reads).
    pub misses: u64,
    /// Clock-hand evictions.
    pub evictions: u64,
    /// Dirty pages written back across all flushes.
    pub write_backs: u64,
    /// Does the database fingerprint match the RAM twin's?
    pub digest_match: bool,
    /// Did the final scrub come back clean?
    pub scrub_clean: bool,
}

/// The deterministic workload: returns (ops executed, fingerprint).
fn drive(db: &mut Database, n: usize) -> (usize, u64) {
    db.create_table(
        TableSchema::builder("entries")
            .column("id", DataType::Int)
            .column("body", DataType::Text)
            .primary_key("id")
            .build()
            .expect("schema"),
    )
    .expect("table");
    let mut ops = 0usize;
    let mut live: Vec<TupleId> = Vec::new();
    for i in 0..n {
        // Every 9th row carries a long tail so records overflow pages.
        let body = if i % 9 == 0 {
            format!("entry {i} zebra {}", "x".repeat(3000 + (i * 97) % 2000))
        } else {
            format!("entry {i} zebra {}", "b".repeat((i * 131) % 800))
        };
        live.push(
            db.insert("entries", vec![Value::Int(i as i64), Value::text(body)]).expect("insert"),
        );
        ops += 1;
    }
    for (i, tid) in live.clone().iter().enumerate().step_by(5) {
        db.update(*tid, vec![Value::Int(i as i64), Value::text(format!("rewritten {i} zebra"))])
            .expect("update");
        ops += 1;
    }
    for tid in live.iter().skip(2).step_by(10) {
        assert!(db.delete(*tid), "delete {tid:?}");
        ops += 1;
    }
    // Two full sweeps (forward + reverse) so a small pool churns.
    for tid in live.iter().chain(live.iter().rev()) {
        let _ = db.get(*tid);
        ops += 1;
    }
    for token in ["zebra", "rewritten", "entry"] {
        let _ = db.inverted_index().lookup(token).len();
        ops += 1;
    }
    (ops, snapshot::fingerprint(db))
}

/// Run the sweep: one RAM cell, then the paged backend at each pool size.
pub fn run(n: usize) -> Vec<Cell> {
    let mut cells = Vec::new();

    let t0 = Instant::now();
    let mut mem = Database::new();
    let (ops, mem_fp) = drive(&mut mem, n);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    cells.push(Cell {
        backend: "mem".into(),
        pool_frames: 0,
        total_ops: ops,
        wall_ms,
        throughput: ops as f64 / (wall_ms / 1e3).max(1e-9),
        file_pages: 0,
        hits: 0,
        misses: 0,
        evictions: 0,
        write_backs: 0,
        digest_match: true,
        scrub_clean: true,
    });

    for frames in POOL_SIZES {
        let dir = std::env::temp_dir()
            .join(format!("nebula-bench-paging-{frames}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench directory");
        let store = PagedStorage::open(&dir, frames).expect("paged store");
        let t0 = Instant::now();
        let mut db = Database::with_storage(Arc::new(store.clone()));
        let (ops, fp) = drive(&mut db, n);
        store.flush_pages().expect("flush");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let scrub_clean = store.scrub().map(|r| r.is_clean()).unwrap_or(false);
        let m = store.metrics();
        cells.push(Cell {
            backend: "disk".into(),
            pool_frames: frames,
            total_ops: ops,
            wall_ms,
            throughput: ops as f64 / (wall_ms / 1e3).max(1e-9),
            file_pages: m.page_count,
            hits: m.pool.hits,
            misses: m.pool.misses,
            evictions: m.pool.evictions,
            write_backs: m.pool.write_backs,
            digest_match: fp == mem_fp,
            scrub_clean,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    cells
}

/// Render the sweep.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Paging: row/posting workload across backends and pool sizes",
        &[
            "backend",
            "pool",
            "ops",
            "wall_ms",
            "ops/s",
            "pages",
            "hits",
            "misses",
            "evict",
            "writeback",
            "digest",
            "scrub",
        ],
    );
    for c in cells {
        t.row(vec![
            c.backend.clone(),
            if c.pool_frames == 0 { "-".into() } else { c.pool_frames.to_string() },
            c.total_ops.to_string(),
            format!("{:.1}", c.wall_ms),
            format!("{:.0}", c.throughput),
            if c.backend == "mem" { "-".into() } else { c.file_pages.to_string() },
            c.hits.to_string(),
            c.misses.to_string(),
            c.evictions.to_string(),
            c.write_backs.to_string(),
            if c.digest_match { "match" } else { "MISMATCH" }.to_string(),
            if c.scrub_clean { "clean" } else { "CORRUPT" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pool_size_matches_the_ram_twin() {
        let cells = run(120);
        assert_eq!(cells.len(), 1 + POOL_SIZES.len());
        for c in &cells {
            assert!(c.digest_match, "{}/{}: fingerprint drifted: {c:?}", c.backend, c.pool_frames);
            assert!(c.scrub_clean, "{}/{}: file corrupt: {c:?}", c.backend, c.pool_frames);
            assert!(c.throughput > 0.0);
        }
        // The smallest pool actually thrashed; the biggest barely missed.
        let tiny = cells.last().expect("2-frame cell");
        assert!(tiny.evictions > 0, "2-frame pool must evict: {tiny:?}");
        assert!(tiny.file_pages as usize > 2, "file outgrew the pool");
    }
}

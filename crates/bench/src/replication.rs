//! Replication experiment: WAL shipping under transport faults.
//!
//! Each cell runs the same batch ingest through a [`Cluster`] of three
//! replicas at a different `(net profile, commit rule)` point and reports
//! what replication cost and what it guaranteed: batch wall time, the
//! primary's final LSN, how many extra pump rounds the cluster needed to
//! converge after the batch, and the safety outcomes. The invariants
//! under test are the tentpole replication claims:
//!
//! - under every net profile the cluster **converges**: once the
//!   transport drains, every live replica's applied LSN reaches the
//!   primary's and its full-state digest matches the primary's shadow —
//!   loss, delay, reordering, duplication, and flapping links change how
//!   long convergence takes, never where it lands;
//! - divergence detection stays silent (no replica is wedged) because
//!   replay is deterministic; and
//! - ack-quorum only changes *when* a record counts as committed, never
//!   what the replicas end up holding.
//!
//! The fault seed is `NEBULA_FAULT_SEED` (hex or decimal; default
//! `0xF00D`), shared with the degradation and overload experiments.

use crate::degradation::fault_seed;
use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, CommitRule, Nebula, NebulaConfig, VerificationBounds};
use nebula_govern::FaultPlan;
use nebula_replica::{Cluster, ClusterConfig, ClusterSink, SimTransport};
use std::path::PathBuf;
use std::time::Instant;

/// Replicas per cell (nodes 1..=3; the primary is node 0).
const REPLICAS: usize = 3;

/// Convergence pump budget after the batch (a cap, not a target).
const DRAIN_ROUNDS: usize = 2_000;

/// One `(net profile, commit rule)` cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Net-profile label (`clean`, `lossy`, `flaky`).
    pub net: String,
    /// Commit-rule label (`ack-none` or `ack-quorum(q)`).
    pub rule: String,
    /// Annotations ingested.
    pub total: usize,
    /// The primary's final LSN (records shipped).
    pub records: u64,
    /// Batch wall time in milliseconds.
    pub wall_ms: f64,
    /// Did any record exhaust its lag budget mid-batch?
    pub lagged: bool,
    /// Pump rounds needed after the batch before every live replica
    /// acked the final LSN (0 = already converged).
    pub drain_rounds: usize,
    /// Did every live replica converge within the drain budget?
    pub converged: bool,
    /// Do all live replicas' state digests match the primary's shadow?
    pub digests_match: bool,
    /// Replicas wedged by divergence detection (must stay 0).
    pub wedged: usize,
    /// Divergences the primary reported (must stay 0).
    pub divergences: usize,
    /// The transport's one-line delivery summary.
    pub transport: String,
}

fn scenario_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nebula-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(setup: &Setup) -> Nebula {
    setup.engine(NebulaConfig { bounds: VerificationBounds::new(0.4, 0.85), ..Default::default() })
}

/// Run one cell.
fn scenario(setup: &Setup, n: usize, net: &str, transport: SimTransport, rule: CommitRule) -> Cell {
    // Fresh store per cell so earlier cells don't seed the ACG.
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = engine(setup);
    let source = &setup.set(100).annotations;
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = &source[i % source.len()];
            (wa.annotation.clone(), distort(&wa.ideal, 1).0)
        })
        .collect();

    let dir = scenario_dir(&format!("{net}-{rule}"));
    let config = ClusterConfig { rule, ..ClusterConfig::default() };
    let cluster =
        Cluster::new(&dir, &setup.bundle.db, &store, REPLICAS, Box::new(transport), config)
            .expect("fresh cluster directory");
    let sink = ClusterSink::new(cluster);
    let handle = sink.handle();
    nebula.set_mutation_sink(Some(Box::new(sink)));

    let t0 = Instant::now();
    let report = nebula.process_batch(&setup.bundle.db, &mut store, &items);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(nebula.take_mutation_sink());

    let mut cluster = handle.lock();
    let lagged = cluster.lag_exceeded();
    // Drain: keep pumping until every live replica acked the final LSN.
    let last = cluster.primary().last_lsn();
    let mut drain_rounds = 0;
    while cluster.primary().min_acked() < last && drain_rounds < DRAIN_ROUNDS {
        cluster.pump(1);
        drain_rounds += 1;
    }
    let converged = cluster.primary().min_acked() >= last;
    let want = cluster.primary().shadow_digest();
    let replica_wedges = cluster.replicas().iter().filter(|r| r.is_wedged()).count();
    let digests_match = replica_wedges == 0
        && cluster.replicas().iter().all(|r| r.digest() == want && r.applied() == last);
    let cell = Cell {
        net: net.to_string(),
        rule: rule.to_string(),
        total: report.total(),
        records: last,
        wall_ms,
        lagged,
        drain_rounds,
        converged: converged && digests_match,
        digests_match,
        wedged: cluster.primary().wedged_count() + replica_wedges,
        divergences: cluster.primary().divergences().len(),
        transport: cluster.describe_transport(),
    };
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    cell
}

/// Build the transport for one net-profile label.
fn transport_for(net: &str) -> SimTransport {
    let seed = fault_seed();
    let nodes = REPLICAS + 1;
    match net {
        // Loss, delay, reordering, and duplication on every link.
        "lossy" => SimTransport::new(nodes, FaultPlan::new(seed).with_net(0.15, 0.15, 0.1, 0.1)),
        // Milder per-frame faults plus a deterministic link-flap schedule
        // that keeps each replica dark for a third of the run.
        "flaky" => SimTransport::new(nodes, FaultPlan::new(seed).with_net(0.05, 0.1, 0.05, 0.05))
            .with_flap(40),
        _ => SimTransport::reliable(nodes),
    }
}

/// Run the grid: net profiles `{clean, lossy, flaky}` crossed with
/// commit rules `{ack-none, ack-quorum(2)}`.
pub fn run(setup: &Setup, n: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for net in ["clean", "lossy", "flaky"] {
        for rule in [CommitRule::Local, CommitRule::Quorum(2)] {
            cells.push(scenario(setup, n, net, transport_for(net), rule));
        }
    }
    cells
}

/// Render the grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        format!("Replication: WAL shipping under transport faults (seed={:#x})", fault_seed()),
        &[
            "net",
            "rule",
            "annotations",
            "records",
            "wall_ms",
            "lagged",
            "drain",
            "converged",
            "digests",
            "wedged",
            "divergences",
        ],
    );
    for c in cells {
        t.row(vec![
            c.net.clone(),
            c.rule.clone(),
            c.total.to_string(),
            c.records.to_string(),
            format!("{:.1}", c.wall_ms),
            if c.lagged { "yes" } else { "no" }.to_string(),
            c.drain_rounds.to_string(),
            if c.converged { "yes" } else { "NO" }.to_string(),
            if c.digests_match { "match" } else { "MISMATCH" }.to_string(),
            c.wedged.to_string(),
            c.divergences.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn every_profile_converges_to_the_primary_digest() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let cells = run(&setup, 30);
        assert_eq!(cells.len(), 6);
        for c in &cells {
            assert!(c.records > 0, "{}/{}: the batch shipped records", c.net, c.rule);
            assert!(c.converged, "{}/{} must converge: {c:?}", c.net, c.rule);
            assert!(c.digests_match, "{}/{} digests: {c:?}", c.net, c.rule);
            assert_eq!(c.wedged, 0, "{c:?}");
            assert_eq!(c.divergences, 0, "{c:?}");
        }
        // The commit rule never changes what the batch produces or ships.
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].total, pair[1].total, "{}", pair[0].net);
            assert_eq!(pair[0].records, pair[1].records, "{}", pair[0].net);
        }
        // Faulty transports actually exercised their faults.
        for c in cells.iter().filter(|c| c.net != "clean") {
            assert!(
                c.transport.contains("dropped=") && !c.transport.contains("dropped=0 "),
                "{}/{} transport saw loss: {}",
                c.net,
                c.rule,
                c.transport
            );
        }
        let rendered = table(&cells).render();
        assert!(rendered.contains("ack-quorum(2)"), "{rendered}");
    }
}

//! Tracing experiment: instrumentation overhead and commit critical-path
//! attribution.
//!
//! Two questions, one experiment:
//!
//! - **Overhead** — what does end-to-end tracing cost on the hot path?
//!   The same pipeline workload runs with tracing off and on (telemetry
//!   stays on in both modes, so the `core.process_annotation` histogram
//!   is the common yardstick), interleaved round-by-round so ambient
//!   machine noise hits both modes alike. The tentpole claim is that the
//!   tracing-on mean stays within 10% of tracing-off.
//! - **Attribution** — where does commit latency actually go? Each grid
//!   cell replays a representative scenario (sequential pipeline,
//!   concurrent ingest at 1 and 4 workers with and without the fault
//!   plan, replicated commits under ack-quorum) with tracing on and
//!   aggregates critical-path self times across every committed
//!   annotation's span tree.
//!
//! The fault seed is `NEBULA_FAULT_SEED` (hex or decimal; default
//! `0xF00D`), shared with the other grid experiments.

use crate::degradation::fault_seed;
use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, CommitRule, NebulaConfig, VerificationBounds};
use nebula_govern::FaultPlan;
use nebula_ingest::{ingest_batch, IngestConfig, IngestItem};
use nebula_obs::trace;
use nebula_replica::{Cluster, ClusterConfig, ClusterSink, SimTransport};
use std::path::PathBuf;
use std::time::Duration;

/// On/off overhead on the pipeline experiment's end-to-end histogram.
#[derive(Debug, Clone)]
pub struct Overhead {
    /// Interleaved measurement rounds per mode.
    pub rounds: usize,
    /// Annotations timed with tracing off.
    pub annotations_off: u64,
    /// Annotations timed with tracing on.
    pub annotations_on: u64,
    /// Mean `core.process_annotation` latency, tracing off.
    pub mean_off_ns: f64,
    /// Mean `core.process_annotation` latency, tracing on.
    pub mean_on_ns: f64,
}

impl Overhead {
    /// Tracing-on mean relative to tracing-off, as a signed percentage.
    pub fn overhead_pct(&self) -> f64 {
        if self.mean_off_ns <= 0.0 {
            return 0.0;
        }
        (self.mean_on_ns / self.mean_off_ns - 1.0) * 100.0
    }
}

/// One pipeline round in one tracing mode; returns the round's
/// `(count, sum_ns)` slice of the end-to-end histogram.
fn pipeline_round(setup: &Setup, tracing_on: bool) -> (u64, u64) {
    trace::set_enabled(tracing_on);
    let baseline = nebula_obs::snapshot();
    let _ = crate::pipeline::run(setup, 100);
    let diff = nebula_obs::snapshot().diff(&baseline);
    trace::set_enabled(false);
    diff.histograms.get(nebula_obs::names::PIPELINE).map(|h| (h.count, h.sum_ns)).unwrap_or((0, 0))
}

/// Measure the on/off overhead: `rounds` interleaved pipeline rounds per
/// mode, after one warm-up round that is thrown away.
pub fn run_overhead(setup: &Setup, rounds: usize) -> Overhead {
    let obs_was = nebula_obs::enabled();
    let trace_was = trace::enabled();
    nebula_obs::set_enabled(true);
    // Warm-up: first-touch effects (allocator, page cache, ACG growth in
    // the cloned store) must not land on whichever mode runs first.
    let _ = pipeline_round(setup, false);
    let rounds = rounds.max(1);
    let (mut off, mut on) = ((0u64, 0u64), (0u64, 0u64));
    for _ in 0..rounds {
        let r = pipeline_round(setup, false);
        off = (off.0 + r.0, off.1 + r.1);
        let r = pipeline_round(setup, true);
        on = (on.0 + r.0, on.1 + r.1);
    }
    nebula_obs::set_enabled(obs_was);
    trace::set_enabled(trace_was);
    let mean = |(count, sum): (u64, u64)| if count == 0 { 0.0 } else { sum as f64 / count as f64 };
    Overhead {
        rounds,
        annotations_off: off.0,
        annotations_on: on.0,
        mean_off_ns: mean(off),
        mean_on_ns: mean(on),
    }
}

/// One attribution cell: a scenario's aggregate critical path.
#[derive(Debug, Clone)]
pub struct AttributionCell {
    /// Scenario label.
    pub scenario: String,
    /// Committed annotations traced.
    pub traces: usize,
    /// Sum of root (end-to-end) durations.
    pub total_ns: u64,
    /// The segment holding the largest share of the critical path.
    pub dominant: String,
    /// `dominant / total`.
    pub dominant_share: f64,
    /// All segments, largest first.
    pub segments: Vec<(String, u64)>,
}

fn cell_from(scenario: String, traces: &[trace::Trace]) -> AttributionCell {
    let attr = trace::attribution(traces);
    let (dominant, dominant_ns) =
        attr.dominant().map(|(label, ns)| (label.to_string(), ns)).unwrap_or_default();
    AttributionCell {
        scenario,
        traces: attr.traces,
        total_ns: attr.total_ns,
        dominant,
        dominant_share: if attr.total_ns == 0 {
            0.0
        } else {
            dominant_ns as f64 / attr.total_ns as f64
        },
        segments: attr.segments.iter().map(|(label, ns)| (label.to_string(), *ns)).collect(),
    }
}

/// Sequential pipeline: every commit is a single-threaded span tree.
fn pipeline_cell(setup: &Setup) -> AttributionCell {
    trace::reset();
    let _ = crate::pipeline::run(setup, 100);
    cell_from("pipeline".to_string(), &trace::traces())
}

/// Concurrent ingest: burst arrivals through the worker pool, with the
/// queue sized to the batch so every item commits (and is traced).
fn ingest_cell(
    setup: &Setup,
    n: usize,
    workers: usize,
    fault_label: &str,
    plan: Option<FaultPlan>,
) -> AttributionCell {
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = setup
        .engine(NebulaConfig { bounds: VerificationBounds::new(0.4, 0.85), ..Default::default() });
    let source = &setup.set(100).annotations;
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = &source[i % source.len()];
            IngestItem::new(wa.annotation.clone(), distort(&wa.ideal, 1).0)
        })
        .collect();
    let config = IngestConfig { workers, queue_capacity: n.max(1), ..IngestConfig::default() };
    nebula_govern::set_fault_plan(plan);
    trace::reset();
    let _ = ingest_batch(&mut nebula, &setup.bundle.db, &mut store, &items, &config);
    nebula_govern::set_fault_plan(None);
    cell_from(format!("ingest w={workers} faults={fault_label}"), &trace::traces())
}

/// Replicated commits: the batch flows through a three-replica cluster
/// under ack-quorum(2), so WAL and shipping spans join the tree.
fn replication_cell(setup: &Setup, n: usize) -> AttributionCell {
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = setup
        .engine(NebulaConfig { bounds: VerificationBounds::new(0.4, 0.85), ..Default::default() });
    let source = &setup.set(100).annotations;
    let items: Vec<_> = (0..n)
        .map(|i| {
            let wa = &source[i % source.len()];
            (wa.annotation.clone(), distort(&wa.ideal, 1).0)
        })
        .collect();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("nebula-bench-trace-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ClusterConfig { rule: CommitRule::Quorum(2), ..ClusterConfig::default() };
    let cluster = Cluster::new(
        &dir,
        &setup.bundle.db,
        &store,
        3,
        Box::new(SimTransport::reliable(4)),
        config,
    )
    .expect("fresh cluster directory");
    nebula.set_mutation_sink(Some(Box::new(ClusterSink::new(cluster))));
    trace::reset();
    let _ = nebula.process_batch(&setup.bundle.db, &mut store, &items);
    drop(nebula.take_mutation_sink());
    let cell = cell_from("replicated ack-quorum(2)".to_string(), &trace::traces());
    let _ = std::fs::remove_dir_all(&dir);
    cell
}

/// Run the attribution grid: sequential pipeline, ingest at 1 and 4
/// workers (clean and faulty), and a replicated batch.
pub fn run_attribution(setup: &Setup, n: usize) -> Vec<AttributionCell> {
    let trace_was = trace::enabled();
    trace::set_enabled(true);
    let seed = fault_seed();
    // The overload experiment's slow-service regime: a quarter of the
    // governed sites fault and half the stage boundaries stall 1ms.
    let faulty = FaultPlan::uniform(seed, 0.25).with_latency(0.5, Duration::from_millis(1));
    let cells = vec![
        pipeline_cell(setup),
        ingest_cell(setup, n, 1, "off", None),
        ingest_cell(setup, n, 4, "off", None),
        ingest_cell(setup, n, 4, "uniform@0.25+lat", Some(faulty)),
        replication_cell(setup, n),
    ];
    trace::set_enabled(trace_was);
    trace::reset();
    cells
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Render the overhead comparison.
pub fn overhead_table(o: &Overhead) -> Table {
    let mut t = Table::new(
        format!(
            "Tracing: on/off overhead on {} ({} interleaved rounds/mode)",
            nebula_obs::names::PIPELINE,
            o.rounds
        ),
        &["mode", "annotations", "mean (us)", "overhead"],
    );
    t.row(vec![
        "tracing off".to_string(),
        o.annotations_off.to_string(),
        format!("{:.2}", o.mean_off_ns / 1e3),
        "-".to_string(),
    ]);
    t.row(vec![
        "tracing on".to_string(),
        o.annotations_on.to_string(),
        format!("{:.2}", o.mean_on_ns / 1e3),
        format!("{:+.1}%", o.overhead_pct()),
    ]);
    t
}

/// Render the attribution grid.
pub fn attribution_table(cells: &[AttributionCell]) -> Table {
    let mut t = Table::new(
        format!("Tracing: commit critical-path attribution (seed={:#x})", fault_seed()),
        &["scenario", "traces", "total (ms)", "dominant segment", "share", "runners-up"],
    );
    for c in cells {
        let runners: Vec<String> = c
            .segments
            .iter()
            .skip(1)
            .take(2)
            .map(|(label, ns)| format!("{label} {}ms", ms(*ns)))
            .collect();
        t.row(vec![
            c.scenario.clone(),
            c.traces.to_string(),
            ms(c.total_ns),
            c.dominant.clone(),
            format!("{:.0}%", c.dominant_share * 100.0),
            runners.join(", "),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn overhead_and_attribution_produce_data() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let o = run_overhead(&setup, 2);
        assert!(o.annotations_off > 0 && o.annotations_on > 0, "{o:?}");
        assert!(o.mean_off_ns > 0.0 && o.mean_on_ns > 0.0, "{o:?}");
        let rendered = overhead_table(&o).render();
        assert!(rendered.contains("tracing on"), "{rendered}");

        let cells = run_attribution(&setup, 24);
        assert_eq!(cells.len(), 5);
        for c in &cells {
            assert!(c.traces > 0, "every scenario commits traced work: {c:?}");
            assert!(!c.dominant.is_empty(), "{c:?}");
            assert!(c.total_ns > 0, "{c:?}");
        }
        // The replicated cell's critical path must include shipping work.
        let repl = cells.last().unwrap();
        assert!(
            repl.segments.iter().any(|(label, _)| label.starts_with("repl.")),
            "replication segments present: {repl:?}"
        );
        let rendered = attribution_table(&cells).render();
        assert!(rendered.contains("ack-quorum"), "{rendered}");
    }
}

//! The hop-profile histogram of Figure 7 — the metadata profile that
//! guides the selection of K for focal-spreading search.
//!
//! The profile is built the way the paper describes: for every discovered
//! attachment, record the shortest ACG distance from the discovered tuple
//! to the annotation's focal *before* the new edges are added.

use crate::setup::{Setup, SEED};
use crate::table::{fmt_pct, Table};
use nebula_core::{distort, HopProfile};
use nebula_workload::{build_workload, WorkloadSpec};

/// Build a hop profile the way §6.3 describes: for *new* annotations
/// (not part of the ACG), measure the shortest ACG distance from each
/// discovered attachment to the annotation's focal before the new edges
/// are added. Unreachable attachments do not contribute (they could not
/// have been found by any spreading radius).
pub fn build_profile(setup: &Setup, sample: usize) -> HopProfile {
    let spec = WorkloadSpec { sizes: vec![500], per_subset: (sample / 3).max(1) };
    let fresh = build_workload(&setup.bundle, &spec, SEED ^ 0x0f11e);
    let mut profile = HopProfile::new();
    for wa in &fresh[0].annotations {
        if wa.ideal.len() < 2 {
            continue;
        }
        let (focal, discovered) = distort(&wa.ideal, 1);
        for t in discovered {
            if let Some(hops) = setup.acg.shortest_hops(t, &focal, 16) {
                if hops > 0 {
                    profile.record(hops);
                }
            }
        }
    }
    profile
}

/// Render the Figure 7-style profile with cumulative coverage per K.
pub fn table(profile: &HopProfile) -> Table {
    let mut t = Table::new(
        "Figure 7: hop-profile histogram for K selection",
        &["hops", "count", "coverage(K=hops)"],
    );
    for (hops, count) in profile.iter() {
        t.row(vec![hops.to_string(), count.to_string(), fmt_pct(profile.coverage(hops))]);
    }
    t
}

/// Render the automatic K choices for a few coverage targets.
pub fn k_selection_table(profile: &HopProfile) -> Table {
    let mut t =
        Table::new("Automatic K selection from the profile", &["target coverage", "selected K"]);
    for target in [0.5, 0.7, 0.9, 0.95, 0.99] {
        t.row(vec![
            fmt_pct(target),
            profile.select_k(target).map(|k| k.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

//! End-to-end pipeline experiment: drive the full proactive engine
//! (`Nebula::process_annotation`) over a workload group, exactly as the
//! shell's `ANNOTATE` does, stage spans and all.
//!
//! The figure experiments call the stage functions directly to time them
//! in isolation; this experiment is the complement — the whole pipeline,
//! per annotation, with routing through the verification bounds. It is
//! also the telemetry showcase: run `reproduce --metrics pipeline` and
//! the sidecar JSON carries per-stage latency histograms and the recent
//! pipeline events alongside the per-layer work counters.

use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, NebulaConfig, SessionReport, StabilityConfig, VerificationBounds};

/// Process every annotation of the `L^m` workload group end-to-end.
/// Returns the aggregated session report.
pub fn run(setup: &Setup, max_bytes: usize) -> SessionReport {
    // The store must absorb the workload annotations; clone it through a
    // snapshot round-trip so the shared setup stays pristine.
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = setup.engine(NebulaConfig {
        bounds: VerificationBounds::new(0.4, 0.85),
        stability: StabilityConfig::default(),
        ..Default::default()
    });
    let mut report = SessionReport::new();
    for wa in &setup.set(max_bytes).annotations {
        let (focal, _) = distort(&wa.ideal, 1);
        let outcome = nebula
            .process_annotation(&setup.bundle.db, &mut store, &wa.annotation, &focal)
            .expect("pipeline run");
        report.record(&outcome);
    }
    report
}

/// Render the session report as a one-row-per-stat table.
pub fn table(name: &str, max_bytes: usize, report: &SessionReport) -> Table {
    let mut t = Table::new(
        format!("End-to-end pipeline over {name} (L^{max_bytes})"),
        &["stat", "min / mean / max"],
    );
    t.row(vec!["annotations".into(), report.annotations.to_string()]);
    t.row(vec!["queries/annotation".into(), report.queries.to_string()]);
    t.row(vec!["candidates/annotation".into(), report.candidates.to_string()]);
    t.row(vec!["auto-accepted".into(), report.accepted.to_string()]);
    t.row(vec!["pending (expert)".into(), report.pending.to_string()]);
    t.row(vec!["auto-rejected".into(), report.rejected.to_string()]);
    t.row(vec!["automation ratio".into(), format!("{:.0}%", report.automation_ratio() * 100.0)]);
    t.row(vec![
        "focal spreading used".into(),
        format!("{}/{}", report.focal_spread_used, report.annotations),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn pipeline_processes_the_whole_group() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let report = run(&setup, 100);
        assert_eq!(report.annotations as usize, setup.set(100).annotations.len());
        assert!(report.queries.mean() > 0.0, "every annotation generates queries");
        let rendered = table("test", 100, &report).render();
        assert!(rendered.contains("automation ratio"));
    }
}

//! Degradation experiment: batch ingest under execution budgets and
//! injected faults.
//!
//! Each scenario runs the same workload group through
//! [`Nebula::process_batch`] with a different `(budget, fault plan)`
//! combination and reports where every annotation landed — accepted,
//! pending, rejected, degraded, or quarantined — plus the retry and
//! recovery activity of the fault harness. The invariant under test is
//! the tentpole robustness claim: no combination panics the batch or
//! loses annotations; hostile plans shift the distribution toward
//! degraded/quarantined, never toward aborts.
//!
//! The fault seed is `NEBULA_FAULT_SEED` (hex or decimal; default
//! `0xF00D`) so CI can sweep seeds without recompiling.

use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, Nebula, NebulaConfig, VerificationBounds};
use nebula_govern::{ExecutionBudget, FaultPlan, FaultStats};
use std::time::Duration;

/// One scenario's outcome tallies.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Budget label.
    pub budget: String,
    /// Fault-plan label.
    pub faults: String,
    /// Annotations in the batch.
    pub total: usize,
    /// Per-status tallies.
    pub accepted: usize,
    /// Annotations with only pending tasks.
    pub pending: usize,
    /// Annotations with every candidate rejected.
    pub rejected: usize,
    /// Annotations that degraded to fit the budget.
    pub degraded: usize,
    /// Annotations quarantined by the containment harness.
    pub quarantined: usize,
    /// Fault-harness activity during the batch.
    pub stats: FaultStats,
}

/// The fault seed: `NEBULA_FAULT_SEED` env (hex with `0x` prefix, or
/// decimal), default `0xF00D`.
pub fn fault_seed() -> u64 {
    std::env::var("NEBULA_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xF00D)
}

fn engine(setup: &Setup, budget: ExecutionBudget) -> Nebula {
    setup.engine(NebulaConfig {
        bounds: VerificationBounds::new(0.4, 0.85),
        budget,
        ..Default::default()
    })
}

/// Run one `(budget, plan)` scenario over the workload group.
fn scenario(
    setup: &Setup,
    max_bytes: usize,
    budget_label: &str,
    budget: ExecutionBudget,
    fault_label: &str,
    plan: Option<FaultPlan>,
) -> Cell {
    // Fresh store per scenario so earlier runs don't seed the ACG.
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = engine(setup, budget);
    let items: Vec<_> = setup
        .set(max_bytes)
        .annotations
        .iter()
        .map(|wa| (wa.annotation.clone(), distort(&wa.ideal, 1).0))
        .collect();
    nebula_govern::set_fault_plan(plan);
    let report = nebula.process_batch(&setup.bundle.db, &mut store, &items);
    let stats = nebula_govern::fault_stats();
    nebula_govern::set_fault_plan(None);
    Cell {
        budget: budget_label.to_string(),
        faults: fault_label.to_string(),
        total: report.total(),
        accepted: report.accepted,
        pending: report.pending,
        rejected: report.rejected,
        degraded: report.degraded,
        quarantined: report.quarantined,
        stats,
    }
}

/// Run the scenario grid: unbounded/mid/tight budgets crossed with no
/// faults, a uniform plan, and the hostile always-firing plan.
pub fn run(setup: &Setup, max_bytes: usize) -> Vec<Cell> {
    let seed = fault_seed();
    let mid = ExecutionBudget::unbounded()
        .with_deadline(Duration::from_millis(250))
        .with_max_tuples(20_000)
        .with_max_configurations(64)
        .with_max_candidates(32);
    let tight = ExecutionBudget::unbounded()
        .with_max_tuples(200)
        .with_max_configurations(4)
        .with_max_candidates(4);
    vec![
        scenario(setup, max_bytes, "unbounded", ExecutionBudget::unbounded(), "off", None),
        scenario(setup, max_bytes, "mid", mid, "off", None),
        scenario(setup, max_bytes, "tight", tight.clone(), "off", None),
        scenario(
            setup,
            max_bytes,
            "tight",
            tight.clone(),
            "uniform@0.25",
            Some(FaultPlan::uniform(seed, 0.25)),
        ),
        scenario(setup, max_bytes, "tight", tight, "hostile", Some(FaultPlan::hostile(seed))),
    ]
}

/// Render the scenario grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        format!("Degradation: batch ingest under budgets and faults (seed={:#x})", fault_seed()),
        &[
            "budget",
            "faults",
            "total",
            "accepted",
            "pending",
            "rejected",
            "degraded",
            "quarantined",
            "retries",
            "recovered",
        ],
    );
    for c in cells {
        t.row(vec![
            c.budget.clone(),
            c.faults.clone(),
            c.total.to_string(),
            c.accepted.to_string(),
            c.pending.to_string(),
            c.rejected.to_string(),
            c.degraded.to_string(),
            c.quarantined.to_string(),
            c.stats.retries.to_string(),
            c.stats.recovered.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn every_scenario_accounts_for_every_annotation() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let cells = run(&setup, 100);
        assert_eq!(cells.len(), 5);
        for c in &cells {
            assert_eq!(
                c.accepted + c.pending + c.rejected + c.degraded + c.quarantined,
                c.total,
                "{} / {}: every annotation ends in exactly one state",
                c.budget,
                c.faults
            );
        }
        // The unbounded/no-fault row is clean.
        assert_eq!(cells[0].degraded, 0);
        assert_eq!(cells[0].quarantined, 0);
        // The tight budget forces degradations without faults.
        assert!(cells[2].degraded > 0, "tight budget degrades: {:?}", cells[2]);
        assert_eq!(cells[2].quarantined, 0, "budget trips never quarantine");
        // The hostile plan drives retries; nothing panics out of the batch.
        assert!(cells[4].stats.retries > 0);
        let rendered = table(&cells).render();
        assert!(rendered.contains("quarantined"));
    }
}

//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - **ACG focal adjustment** on/off (§6.2),
//! - **context-based weight adjustment** on/off (§5.2.2),
//! - **backward-concept search** on/off (§5.2.3 special case),
//! - **stability gating** — how μ and B control when spreading engages.

use crate::fig11::query_quality;
use crate::setup::Setup;
use crate::table::{fmt_pct, Table};
use nebula_core::{
    assess_predictions, distort, generate_queries, identify_related_tuples, AssessmentReport,
    ExecutionConfig, QueryGenConfig, VerificationBounds,
};
use textsearch::{ExecutionMode, KeywordSearch, SearchOptions};

/// Average assessment of the `L^100` set under a query-gen config and an
/// execution config.
fn assess(
    setup: &Setup,
    qconfig: &QueryGenConfig,
    exec: &ExecutionConfig,
    bounds: &VerificationBounds,
) -> AssessmentReport {
    let set = setup.set(100);
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let reports: Vec<AssessmentReport> = set
        .annotations
        .iter()
        .map(|wa| {
            let (focal, _) = distort(&wa.ideal, 1);
            let queries = generate_queries(
                &setup.bundle.db,
                &setup.bundle.meta,
                &wa.annotation.text,
                qconfig,
            );
            let (cands, _) = identify_related_tuples(
                &setup.bundle.db,
                &engine,
                &queries,
                &focal,
                Some(&setup.acg),
                exec,
            )
            .expect("ungoverned search cannot fail");
            assess_predictions(&cands, bounds, &wa.ideal, &focal).1
        })
        .collect();
    AssessmentReport::average(&reports)
}

/// ACG focal-adjustment ablation, including the §6.2 shortest-path
/// extension the paper declined ("semantically weaker and may cause
/// model overfitting") — measured rather than assumed.
pub fn acg_ablation(setup: &Setup, bounds: &VerificationBounds) -> Table {
    use nebula_core::AcgRewardMode;
    let qconfig = QueryGenConfig::default();
    let mut t = Table::new(
        "Ablation: ACG focal-based confidence adjustment (§6.2)",
        &["variant", "F_N", "F_P", "M_F", "M_H", "MRR", "P@|refs|"],
    );
    let variants: [(&str, bool, AcgRewardMode); 4] = [
        ("direct edges (paper default)", true, AcgRewardMode::Direct),
        ("shortest path ≤ 2 hops", true, AcgRewardMode::Path { max_hops: 2 }),
        ("shortest path ≤ 4 hops", true, AcgRewardMode::Path { max_hops: 4 }),
        ("no ACG adjustment", false, AcgRewardMode::Direct),
    ];
    for (label, adj, reward) in variants {
        let exec = ExecutionConfig { mode: ExecutionMode::Shared, acg_adjustment: adj, reward };
        let r = assess(setup, &qconfig, &exec, bounds);
        let (mrr, p_at_k) = ranking_quality(setup, &qconfig, &exec);
        t.row(vec![
            label.into(),
            fmt_pct(r.f_n),
            fmt_pct(r.f_p),
            format!("{:.1}", r.m_f),
            format!("{:.2}", r.m_h),
            format!("{mrr:.3}"),
            format!("{p_at_k:.3}"),
        ]);
    }
    t
}

/// Ranking quality of the candidate ordering: mean reciprocal rank of the
/// true missing references, and precision@k with k = |missing| — the
/// metrics the ACG reward actually moves (routing aggregates can mask
/// ranking changes).
fn ranking_quality(setup: &Setup, qconfig: &QueryGenConfig, exec: &ExecutionConfig) -> (f64, f64) {
    let set = setup.set(100);
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let mut total = 0.0;
    let mut n = 0usize;
    let mut precision_sum = 0.0;
    let mut annotations = 0usize;
    for wa in &set.annotations {
        let (focal, missing) = distort(&wa.ideal, 1);
        if missing.is_empty() {
            continue;
        }
        let queries =
            generate_queries(&setup.bundle.db, &setup.bundle.meta, &wa.annotation.text, qconfig);
        let (cands, _) = identify_related_tuples(
            &setup.bundle.db,
            &engine,
            &queries,
            &focal,
            Some(&setup.acg),
            exec,
        )
        .expect("ungoverned search cannot fail");
        for m in &missing {
            n += 1;
            if let Some(rank) = cands.iter().position(|c| c.tuple == *m) {
                total += 1.0 / (rank + 1) as f64;
            }
        }
        let k = missing.len();
        let hits = cands.iter().take(k).filter(|c| missing.contains(&c.tuple)).count();
        precision_sum += hits as f64 / k as f64;
        annotations += 1;
    }
    let mrr = if n > 0 { total / n as f64 } else { 0.0 };
    let p = if annotations > 0 { precision_sum / annotations as f64 } else { 0.0 };
    (mrr, p)
}

/// Concept-learning extension (§5.1 footnote 2): does a ConceptRefs table
/// *learned* from the dataset's own annotations match the curated one and
/// drive comparable discovery?
pub fn learn_ablation(setup: &Setup, bounds: &VerificationBounds) -> Table {
    use nebula_core::{learn_concept_refs, LearnConfig};
    let (mut learned_meta, learned) = learn_concept_refs(
        &setup.bundle.db,
        &setup.bundle.annotations,
        &LearnConfig { min_support: 10, min_coverage: 0.05, sample: 2000 },
    );
    // The learner recovers referencing columns; patterns/samples still
    // come from the curator (learning syntactic descriptions is the [8]
    // line of work).
    learned_meta.set_pattern(
        "gene",
        "gid",
        nebula_core::Pattern::compile("JW[0-9]{4}").expect("static pattern"),
    );
    learned_meta.set_pattern(
        "gene",
        "name",
        nebula_core::Pattern::compile("[a-z]{3}[A-Z]").expect("static pattern"),
    );

    let mut t = Table::new(
        "Extension: learned ConceptRefs (§5.1 footnote 2) vs curated",
        &["meta", "concepts", "ref columns", "F_N", "F_P", "M_F"],
    );
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    for (label, meta) in [("curated", &setup.bundle.meta), ("learned", &learned_meta)] {
        let set = setup.set(100);
        let reports: Vec<nebula_core::AssessmentReport> = set
            .annotations
            .iter()
            .map(|wa| {
                let (focal, _) = distort(&wa.ideal, 1);
                let queries = generate_queries(
                    &setup.bundle.db,
                    meta,
                    &wa.annotation.text,
                    &QueryGenConfig::default(),
                );
                let (cands, _) = identify_related_tuples(
                    &setup.bundle.db,
                    &engine,
                    &queries,
                    &focal,
                    Some(&setup.acg),
                    &ExecutionConfig::default(),
                )
                .expect("ungoverned search cannot fail");
                nebula_core::assess_predictions(&cands, bounds, &wa.ideal, &focal).1
            })
            .collect();
        let avg = AssessmentReport::average(&reports);
        let ref_cols: usize = meta.concepts().iter().map(|c| c.referenced_by.len()).sum();
        t.row(vec![
            label.into(),
            meta.concepts().len().to_string(),
            ref_cols.to_string(),
            fmt_pct(avg.f_n),
            fmt_pct(avg.f_p),
            format!("{:.1}", avg.m_f),
        ]);
    }
    // Report what was learned as a footnote row.
    let summary = learned
        .iter()
        .take(4)
        .map(|l| format!("{}.{} ({})", l.table, l.column, l.support))
        .collect::<Vec<_>>()
        .join(", ");
    t.row(vec!["learned columns".into(), "-".into(), summary, "-".into(), "-".into(), "-".into()]);
    t
}

/// Context-adjustment and backward-search ablations measured on query
/// quality (the stage they affect).
pub fn querygen_ablation(setup: &Setup) -> Table {
    let variants: [(&str, QueryGenConfig); 4] = [
        ("full (context + backward)", QueryGenConfig::default()),
        (
            "no context adjustment",
            QueryGenConfig { context_adjustment: false, ..Default::default() },
        ),
        ("no backward search", QueryGenConfig { backward_search: false, ..Default::default() }),
        (
            "neither",
            QueryGenConfig {
                context_adjustment: false,
                backward_search: false,
                ..Default::default()
            },
        ),
    ];
    let mut t = Table::new(
        "Ablation: query-generation features (§5.2.2 / §5.2.3) on L^500",
        &["variant", "queries (avg)", "query FP%", "query FN%"],
    );
    let set = setup.set(500);
    for (label, config) in variants {
        let mut nq = 0.0;
        let mut fp = 0.0;
        let mut fn_ = 0.0;
        let n = set.annotations.len() as f64;
        for wa in &set.annotations {
            let queries = generate_queries(
                &setup.bundle.db,
                &setup.bundle.meta,
                &wa.annotation.text,
                &config,
            );
            nq += queries.len() as f64 / n;
            let (p, m) = query_quality(setup, wa, &queries);
            fp += p / n;
            fn_ += m / n;
        }
        t.row(vec![label.into(), format!("{nq:.1}"), fmt_pct(fp), fmt_pct(fn_)]);
    }
    t
}

/// Stability-gate ablation: how many annotations until the ACG stabilizes
/// under different μ values, processing an annotation stream in order.
///
/// Uses a deliberately *dense* dataset (many publications per entity) so
/// the co-citation pair space saturates within the stream — the regime
/// Definition 6.1 is about. On sparse streams the graph keeps growing and
/// correctly never stabilizes.
pub fn stability_ablation(_setup: &Setup) -> Table {
    use annostore::{AnnotationStore, AttachmentTarget};
    use nebula_core::{Acg, StabilityConfig};
    use nebula_workload::{generate_dataset, DatasetSpec};

    let dense = generate_dataset(
        &DatasetSpec {
            genes: 60,
            proteins: 90,
            publications: 4_000,
            links_per_publication: (2, 4),
            locality_window: 5,
            ..DatasetSpec::tiny()
        },
        crate::setup::SEED,
    );

    let mut t = Table::new(
        "Ablation: ACG stability gate (Definition 6.1), B = 25, dense stream",
        &["μ", "annotations until stable", "edges at that point"],
    );
    for mu in [0.05, 0.1, 0.2, 0.4] {
        let mut store = AnnotationStore::new();
        let mut acg = Acg::new(StabilityConfig { batch_size: 25, mu });
        let mut stable_at: Option<(usize, usize)> = None;
        for (i, (aid_src, ann)) in dense.annotations.iter_annotations().enumerate() {
            let links = dense.annotations.focal(aid_src);
            let aid = store.add_annotation(ann.clone());
            for l in &links {
                store.attach(aid, AttachmentTarget::tuple(*l)).expect("valid link");
                acg.add_attachment(&store, aid, *l);
            }
            acg.record_annotation();
            if acg.is_stable() && stable_at.is_none() {
                stable_at = Some((i + 1, acg.edge_count()));
                break;
            }
        }
        t.row(vec![
            format!("{mu:.2}"),
            stable_at.map(|(n, _)| n.to_string()).unwrap_or_else(|| "never".into()),
            stable_at.map(|(_, e)| e.to_string()).unwrap_or_else(|| acg.edge_count().to_string()),
        ]);
    }
    t
}

//! Figure 13 — multi-query shared execution.
//!
//! Repeats the Figure 12(a) execution experiment with Nebula-0.6 /
//! Nebula-0.8, comparing isolated execution against the shared-execution
//! variant; the paper reports 40–50% speedup with identical output
//! tuples.

use crate::setup::Setup;
use crate::table::{fmt_duration, fmt_pct, Table};
use nebula_core::{generate_queries, identify_related_tuples, ExecutionConfig, QueryGenConfig};
use std::time::Instant;
use textsearch::{ExecutionMode, KeywordSearch, SearchOptions};

/// One measured cell of Figure 13.
#[derive(Debug, Clone)]
pub struct SharingCell {
    /// Dataset name.
    pub dataset: &'static str,
    /// ε of the Nebula variant.
    pub epsilon: f64,
    /// Size group.
    pub max_bytes: usize,
    /// Average seconds per annotation, isolated execution.
    pub isolated: f64,
    /// Average seconds per annotation, shared execution.
    pub shared: f64,
    /// Whether both modes produced identical tuple sets everywhere.
    pub outputs_match: bool,
}

impl SharingCell {
    /// Fractional time saved by sharing.
    pub fn speedup(&self) -> f64 {
        if self.isolated > 0.0 {
            1.0 - self.shared / self.isolated
        } else {
            0.0
        }
    }
}

/// Run Figure 13 over one dataset.
pub fn run_dataset(setup: &Setup) -> Vec<SharingCell> {
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let mut cells = Vec::new();
    for &epsilon in &[0.6, 0.8] {
        for set in &setup.workload {
            let config = QueryGenConfig { epsilon, ..Default::default() };
            let mut isolated = 0.0;
            let mut shared = 0.0;
            let mut outputs_match = true;
            let n = set.annotations.len() as f64;
            for wa in &set.annotations {
                let queries = generate_queries(
                    &setup.bundle.db,
                    &setup.bundle.meta,
                    &wa.annotation.text,
                    &config,
                );
                let focal: Vec<relstore::TupleId> = wa.ideal.iter().take(1).copied().collect();
                let run = |mode: ExecutionMode| {
                    let t0 = Instant::now();
                    let (cands, _) = identify_related_tuples(
                        &setup.bundle.db,
                        &engine,
                        &queries,
                        &focal,
                        Some(&setup.acg),
                        &ExecutionConfig { mode, acg_adjustment: true, ..Default::default() },
                    )
                    .expect("ungoverned search cannot fail");
                    (t0.elapsed().as_secs_f64(), cands)
                };
                let (ti, ci) = run(ExecutionMode::Isolated);
                let (ts, cs) = run(ExecutionMode::Shared);
                isolated += ti / n;
                shared += ts / n;
                let ids =
                    |v: &[nebula_core::Candidate]| v.iter().map(|c| c.tuple).collect::<Vec<_>>();
                if ids(&ci) != ids(&cs) {
                    outputs_match = false;
                }
            }
            cells.push(SharingCell {
                dataset: setup.name,
                epsilon,
                max_bytes: set.max_bytes,
                isolated,
                shared,
                outputs_match,
            });
        }
    }
    cells
}

/// Render Figure 13.
pub fn table(cells: &[SharingCell]) -> Table {
    let mut t = Table::new(
        "Figure 13: multi-query shared execution",
        &["dataset", "ε", "L^m", "isolated", "shared", "speedup", "same output"],
    );
    for c in cells {
        t.row(vec![
            c.dataset.to_string(),
            format!("{:.1}", c.epsilon),
            format!("L^{}", c.max_bytes),
            fmt_duration(c.isolated),
            fmt_duration(c.shared),
            fmt_pct(c.speedup()),
            if c.outputs_match { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}
